"""Unit tests for the CompressDB engine facade."""

import pytest

from repro.core.engine import FileExistsInEngine, FileNotFoundInEngine


class TestNamespace:
    def test_create_and_exists(self, engine):
        engine.create("/a")
        assert engine.exists("/a")
        assert not engine.exists("/b")

    def test_create_duplicate_raises(self, engine):
        engine.create("/a")
        with pytest.raises(FileExistsInEngine):
            engine.create("/a")

    def test_unlink(self, engine):
        engine.create("/a")
        engine.unlink("/a")
        assert not engine.exists("/a")

    def test_unlink_missing_raises(self, engine):
        with pytest.raises(FileNotFoundInEngine):
            engine.unlink("/missing")

    def test_unlink_releases_blocks(self, engine):
        engine.create("/a")
        engine.ops.append("/a", b"x" * 300)
        assert engine.physical_data_blocks() > 0
        engine.unlink("/a")
        assert engine.physical_data_blocks() == 0

    def test_rename(self, engine):
        engine.create("/a")
        engine.ops.append("/a", b"payload")
        engine.rename("/a", "/b")
        assert not engine.exists("/a")
        assert engine.read_file("/b") == b"payload"

    def test_rename_over_existing_raises(self, engine):
        engine.create("/a")
        engine.create("/b")
        with pytest.raises(FileExistsInEngine):
            engine.rename("/a", "/b")

    def test_list_files_with_prefix(self, engine):
        for path in ("/x/1", "/x/2", "/y/1"):
            engine.create(path)
        assert engine.list_files("/x/") == ["/x/1", "/x/2"]


class TestPosixReadWrite:
    def test_write_then_read(self, engine):
        engine.create("/f")
        engine.write("/f", 0, b"hello world")
        assert engine.read("/f", 0, 100) == b"hello world"

    def test_overwrite_middle(self, engine):
        engine.create("/f")
        engine.write("/f", 0, b"aaaaaaaaaa")
        engine.write("/f", 3, b"BBB")
        assert engine.read_file("/f") == b"aaaBBBaaaa"

    def test_write_past_end_extends(self, engine):
        engine.create("/f")
        engine.write("/f", 0, b"ab")
        engine.write("/f", 5, b"cd")
        assert engine.read_file("/f") == b"ab\x00\x00\x00cd"

    def test_read_past_end_is_short(self, engine):
        engine.create("/f")
        engine.write("/f", 0, b"abc")
        assert engine.read("/f", 2, 100) == b"c"
        assert engine.read("/f", 3, 100) == b""

    def test_write_spanning_many_blocks(self, engine):
        engine.create("/f")
        payload = bytes(range(256)) * 4  # 1024 bytes over 64-byte blocks
        engine.write("/f", 0, payload)
        assert engine.read_file("/f") == payload
        engine.check_invariants()

    def test_truncate_shrink(self, engine):
        engine.create("/f")
        engine.write("/f", 0, b"0123456789")
        engine.truncate("/f", 4)
        assert engine.read_file("/f") == b"0123"

    def test_truncate_grow_zero_fills(self, engine):
        engine.create("/f")
        engine.write("/f", 0, b"ab")
        engine.truncate("/f", 5)
        assert engine.read_file("/f") == b"ab\x00\x00\x00"

    def test_write_file_replaces(self, engine):
        engine.write_file("/f", b"first")
        engine.write_file("/f", b"second")
        assert engine.read_file("/f") == b"second"


class TestSpaceAccounting:
    def test_dedup_across_files(self, engine):
        block = b"R" * engine.block_size
        engine.write_file("/a", block * 4)
        engine.write_file("/b", block * 4)
        assert engine.physical_data_blocks() == 1
        assert engine.compression_ratio() == pytest.approx(8.0)

    def test_ratio_of_unique_data_is_about_one(self, engine):
        payload = bytes(range(256))[: engine.block_size]
        engine.write_file("/a", payload)
        assert engine.compression_ratio() == pytest.approx(1.0)

    def test_empty_engine_ratio_is_one(self, engine):
        assert engine.compression_ratio() == 1.0

    def test_memory_report_keys(self, engine):
        engine.write_file("/a", b"data" * 50)
        report = engine.memory_report()
        assert report["blockHashTable_bytes"] > 0
        assert report["total_bytes"] >= report["blockHole_bytes"]


class TestRemount:
    def test_remount_preserves_data(self, engine):
        engine.write_file("/a", b"survives remount " * 20)
        engine.ops.insert("/a", 5, b"HOLE!")  # create holes + shared blocks
        before = engine.read_file("/a")
        scanned = engine.remount()
        assert scanned == engine.physical_data_blocks()
        assert engine.read_file("/a") == before
        engine.check_invariants()

    def test_remount_rebuilds_dedup_lookup(self, engine):
        block = b"Z" * engine.block_size
        engine.write_file("/a", block)
        engine.remount()
        engine.write_file("/b", block)
        assert engine.physical_data_blocks() == 1

    def test_operations_work_after_remount(self, engine):
        engine.write_file("/a", b"before remount")
        engine.remount()
        engine.ops.append("/a", b" and after")
        assert engine.read_file("/a") == b"before remount and after"
        engine.check_invariants()


class TestInvariantChecker:
    def test_detects_refcount_corruption(self, engine):
        engine.write_file("/a", b"x" * 100)
        block = engine.inode("/a").slot_at(0).block_no
        engine.refcount.set(block, 99)
        with pytest.raises(AssertionError):
            engine.check_invariants()

    def test_clean_engine_passes(self, engine):
        for i in range(5):
            engine.write_file(f"/f{i}", b"common content " * 10)
        engine.check_invariants()


class TestReflinkCopy:
    def test_copy_shares_all_blocks(self, engine):
        engine.write_file("/src", bytes(range(256)))
        blocks_before = engine.physical_data_blocks()
        writes_before = engine.device.stats.block_writes
        engine.copy_file("/src", "/dst")
        assert engine.read_file("/dst") == bytes(range(256))
        assert engine.physical_data_blocks() == blocks_before
        assert engine.device.stats.block_writes == writes_before  # zero data I/O
        engine.check_invariants()

    def test_copies_diverge_on_write(self, engine):
        engine.write_file("/src", b"shared content " * 20)
        engine.copy_file("/src", "/dst")
        engine.ops.replace("/dst", 0, b"CHANGED")
        assert engine.read_file("/src").startswith(b"shared ")
        assert engine.read_file("/dst").startswith(b"CHANGED")
        engine.check_invariants()

    def test_copy_preserves_holes(self, engine):
        engine.write_file("/src", b"x" * 200)
        engine.ops.insert("/src", 10, b"hole-maker")
        engine.copy_file("/src", "/dst")
        assert engine.read_file("/dst") == engine.read_file("/src")
        assert engine.inode("/dst").hole_bytes == engine.inode("/src").hole_bytes

    def test_copy_over_existing_rejected(self, engine):
        engine.write_file("/src", b"a")
        engine.write_file("/dst", b"b")
        with pytest.raises(FileExistsInEngine):
            engine.copy_file("/src", "/dst")

    def test_unlink_original_keeps_copy(self, engine):
        engine.write_file("/src", b"survives " * 30)
        engine.copy_file("/src", "/dst")
        engine.unlink("/src")
        assert engine.read_file("/dst") == b"survives " * 30
        engine.check_invariants()


class TestDescribe:
    def test_describe_fields(self, engine):
        engine.write_file("/f", b"x" * 300)
        engine.ops.insert("/f", 10, b"hole")
        info = engine.describe("/f")
        assert info["size"] == 304
        assert info["depth"] == 2
        assert info["hole_slots"] >= 1
        assert info["slots"] >= info["distinct_blocks"]

    def test_describe_empty_file(self, engine):
        engine.create("/empty")
        info = engine.describe("/empty")
        assert info["size"] == 0 and info["slots"] == 0 and info["depth"] == 1

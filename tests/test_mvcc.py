"""MVCC sessions: snapshot isolation, conflicts, group commit.

The tentpole contract under test (DESIGN.md §13): read transactions see
a frozen point-in-time image of every inode they touch (repeatable
reads, no dirty reads), writers buffer privately and commit
first-committer-wins under per-inode locks, and concurrent committers
share one journal commit sequence (group commit).  The independent
snapshot-isolation checker is itself under test here — it must accept
every recorded real history and provably reject injected dirty-read
and lost-update histories.
"""

import pytest

from repro.analysis.sanitizer import (
    LockOrderSanitizer,
    LockOrderViolation,
    TrackedLock,
    check_agreement,
    install_sanitizer,
    rank_of,
    uninstall_sanitizer,
)
from repro.core.engine import CompressDB, FileExistsInEngine, FileNotFoundInEngine
from repro.distributed.interleave import run_mvcc_sessions
from repro.fs import fd as fdmod
from repro.fs.compressfs import CompressFS
from repro.fs.errors import BadFileDescriptor, InvalidArgument
from repro.mvcc import (
    HistoryEvent,
    SessionClosed,
    WriteConflict,
    check_history,
)
from repro.storage.block_device import MemoryBlockDevice


def _engine(journal_blocks=None, block_size=512):
    return CompressDB.mount(
        MemoryBlockDevice(block_size=block_size), journal_blocks=journal_blocks
    )


class TestSessionBasics:
    def test_commit_publishes_buffered_writes(self):
        engine = _engine()
        session = engine.mvcc.begin()
        session.create("/a")
        session.write("/a", 0, b"hello")
        assert not engine.exists("/a")  # buffered, not yet visible
        ticket = session.commit()
        assert engine.read_file("/a") == b"hello"
        assert ticket.csn >= 1 and not ticket.read_only

    def test_repeatable_reads_under_concurrent_overwrite(self):
        engine = _engine()
        engine.write_file("/shared", b"original content")
        reader = engine.mvcc.begin()
        assert reader.read("/shared", 0, 8) == b"original"
        writer = engine.mvcc.begin()
        writer.write_file("/shared", b"REPLACED content")
        writer.commit()
        assert engine.read_file("/shared") == b"REPLACED content"
        # The reader's view is pinned at its snapshot.
        assert reader.read("/shared", 0, 8) == b"original"
        assert reader.read_file("/shared") == b"original content"
        reader.commit()

    def test_read_your_writes(self):
        engine = _engine()
        engine.write_file("/f", b"0123456789")
        session = engine.mvcc.begin()
        session.write("/f", 2, b"XX")
        assert session.read("/f", 0, 10) == b"01XX456789"
        session.truncate("/f", 4)
        assert session.read_file("/f") == b"01XX"
        session.append("/f", b"!")
        assert session.file_size("/f") == 5
        session.abort()
        assert engine.read_file("/f") == b"0123456789"

    def test_namespace_ops_are_snapshot_scoped(self):
        engine = _engine()
        engine.write_file("/old", b"data")
        session = engine.mvcc.begin()
        session.rename("/old", "/new")
        assert session.exists("/new") and not session.exists("/old")
        assert sorted(session.list_files()) == ["/new"]
        assert engine.exists("/old")  # engine unchanged until commit
        session.commit()
        assert engine.list_files() == ["/new"]
        assert engine.read_file("/new") == b"data"

    def test_create_of_existing_and_unlink_of_absent_raise(self):
        engine = _engine()
        engine.write_file("/f", b"x")
        session = engine.mvcc.begin()
        with pytest.raises(FileExistsInEngine):
            session.create("/f")
        with pytest.raises(FileNotFoundInEngine):
            session.unlink("/missing")
        session.abort()

    def test_closed_session_rejects_operations(self):
        engine = _engine()
        session = engine.mvcc.begin()
        session.commit()
        with pytest.raises(SessionClosed):
            session.read("/f", 0, 1)
        with pytest.raises(SessionClosed):
            session.commit()

    def test_engine_session_context_commits_and_aborts(self):
        engine = _engine()
        with engine.session() as session:
            session.create("/ctx")
            session.write("/ctx", 0, b"committed")
        assert engine.read_file("/ctx") == b"committed"
        with pytest.raises(RuntimeError, match="boom"):
            with engine.session() as session:
                session.write_file("/ctx", b"never lands")
                raise RuntimeError("boom")
        assert engine.read_file("/ctx") == b"committed"

    def test_engine_mutators_accept_session_kwarg(self):
        engine = _engine()
        with engine.session() as session:
            engine.create("/via-kwarg", session=session)
            engine.write("/via-kwarg", 0, b"routed", session=session)
            assert engine.read("/via-kwarg", 0, 6, session=session) == b"routed"
            assert not engine.exists("/via-kwarg")
        assert engine.read_file("/via-kwarg") == b"routed"


class TestConflicts:
    def test_first_committer_wins(self):
        engine = _engine()
        engine.write_file("/contested", b"base")
        first = engine.mvcc.begin()
        second = engine.mvcc.begin()
        first.write_file("/contested", b"first")
        second.write_file("/contested", b"second")
        first.commit()
        before = engine.metrics().counter("mvcc.conflicts")
        with pytest.raises(WriteConflict, match="/contested"):
            second.commit()
        assert engine.metrics().counter("mvcc.conflicts") == before + 1
        assert not second.active
        assert engine.read_file("/contested") == b"first"

    def test_disjoint_write_sets_do_not_conflict(self):
        engine = _engine()
        a, b = engine.mvcc.begin(), engine.mvcc.begin()
        a.create("/a")
        a.write("/a", 0, b"A")
        b.create("/b")
        b.write("/b", 0, b"B")
        a.commit()
        b.commit()  # no overlap: both win
        assert engine.read_file("/a") == b"A"
        assert engine.read_file("/b") == b"B"

    def test_read_only_sessions_never_conflict(self):
        engine = _engine()
        engine.write_file("/f", b"data")
        reader = engine.mvcc.begin()
        reader.read("/f", 0, 4)
        writer = engine.mvcc.begin()
        writer.write_file("/f", b"new!")
        writer.commit()
        ticket = reader.commit()  # read-only: durable by construction
        assert ticket.read_only and ticket.durable


class TestVersionRetention:
    def test_pre_image_retained_for_active_reader_then_pruned(self):
        engine = _engine()
        engine.write_file("/doc", b"version one " * 40)
        reader = engine.mvcc.begin()
        assert reader.read("/doc", 0, 11) == b"version one"
        writer = engine.mvcc.begin()
        writer.write_file("/doc", b"version two " * 40)
        writer.commit()
        assert engine.mvcc.versions.retained_count() >= 0
        assert engine.refcount.total_pins() > 0
        assert reader.read_file("/doc") == b"version one " * 40
        reader.commit()
        # Last interested session gone: pins off, orphans freed.
        assert engine.refcount.total_pins() == 0
        assert engine.mvcc.versions.retained_count() == 0
        report = engine.fsck(repair=False)
        assert report["refcounts_fixed"] == 0
        assert report["blocks_reclaimed"] == 0

    def test_reader_after_commit_sees_new_version(self):
        engine = _engine()
        engine.write_file("/doc", b"old")
        early = engine.mvcc.begin()
        writer = engine.mvcc.begin()
        writer.write_file("/doc", b"new")
        writer.commit()
        late = engine.mvcc.begin()
        assert early.read_file("/doc") == b"old"
        assert late.read_file("/doc") == b"new"
        early.commit()
        late.commit()

    def test_unlinked_file_stays_readable_in_old_snapshot(self):
        engine = _engine()
        engine.write_file("/doomed", b"still here " * 30)
        reader = engine.mvcc.begin()
        assert reader.exists("/doomed")
        with engine.session() as killer:
            killer.unlink("/doomed")
        assert not engine.exists("/doomed")
        assert reader.read_file("/doomed") == b"still here " * 30
        reader.commit()
        assert engine.refcount.total_pins() == 0

    def test_fsck_and_invariants_clean_with_active_pins(self):
        engine = _engine()
        engine.write_file("/pinned", b"pinned bytes " * 50)
        reader = engine.mvcc.begin()
        reader.read("/pinned", 0, 6)
        with engine.session() as writer:
            writer.write_file("/pinned", b"overwritten " * 50)
        assert engine.refcount.total_pins() > 0
        report = engine.fsck(repair=False)
        assert report["refcounts_fixed"] == 0
        assert report["blocks_reclaimed"] == 0
        engine.check_invariants()
        reader.commit()

    def test_pins_survive_remount_in_process(self):
        engine = _engine(journal_blocks=32)
        engine.write_file("/stable", b"pre-remount " * 40)
        engine.fsync()
        reader = engine.mvcc.begin()
        assert reader.read("/stable", 0, 11) == b"pre-remount"
        with engine.session() as writer:
            writer.write_file("/stable", b"post-commit " * 40)
        engine.fsync()
        engine.remount()
        # The rebuilt index must still cover pinned-only blocks, and the
        # snapshot read must keep serving the pre-image.
        assert reader.read_file("/stable") == b"pre-remount " * 40
        engine.check_invariants()
        reader.commit()
        assert engine.refcount.total_pins() == 0


class TestGroupCommit:
    def test_sixteen_writers_two_journal_sequences(self):
        engine = _engine(journal_blocks=64)
        device = engine.device
        lsn_before = device.lsn
        sessions = []
        for index in range(16):
            session = engine.mvcc.begin()
            session.create(f"/w{index:02d}")
            session.write(f"/w{index:02d}", 0, b"x" * 64)
            sessions.append(session)
        tickets = [session.commit() for session in sessions]
        # group_size=8 auto-flushes twice; nothing left pending.
        assert engine.mvcc.pending_group == 0
        assert device.lsn - lsn_before == 2
        assert all(ticket.durable for ticket in tickets)
        assert len({ticket.lsn for ticket in tickets}) == 2
        snap = engine.metrics()
        assert snap.counter("mvcc.group_commit.batches") == 2
        assert snap.counter("mvcc.group_commit.sessions") == 16
        hist = snap.histograms["mvcc.group_commit.batch_size"]
        assert hist.count == 2 and hist.sum == 16

    def test_explicit_flush_below_group_size(self):
        engine = _engine(journal_blocks=64)
        lsn_before = engine.device.lsn
        tickets = []
        for index in range(3):
            with engine.session() as session:
                session.create(f"/small{index}")
                session.write(f"/small{index}", 0, b"y")
                tickets.append(session)
        tickets = [session.ticket for session in tickets]
        assert engine.mvcc.pending_group == 3
        assert not any(ticket.durable for ticket in tickets)
        batch = engine.mvcc.flush_group()
        assert batch == 3
        assert engine.device.lsn - lsn_before == 1
        assert all(ticket.durable for ticket in tickets)
        assert len({ticket.lsn for ticket in tickets}) == 1

    def test_group_commit_without_journal_still_acks(self):
        engine = _engine()  # plain device: no enqueue_ack
        with engine.session() as session:
            session.create("/plain")
            session.write("/plain", 0, b"z")
        assert engine.mvcc.flush_group() == 1
        assert session.ticket.durable


class TestSanitizerInodeTier:
    def test_inode_rank_resolution(self):
        assert rank_of("mvcc.inode.lock[/a]") == 3
        assert rank_of("master.lock") == 0

    def test_master_under_inode_is_an_inversion(self):
        sanitizer = install_sanitizer(LockOrderSanitizer())
        try:
            inode = TrackedLock(
                "mvcc.inode.lock[/x]", rank=3, order_key="mvcc.inode.lock"
            )
            master = TrackedLock("master.lock", rank=0)
            with pytest.raises(LockOrderViolation, match="inversion"):
                with inode:
                    with master:
                        pass
        finally:
            uninstall_sanitizer()

    def test_sibling_inode_locks_share_order_key(self):
        sanitizer = install_sanitizer(LockOrderSanitizer())
        try:
            locks = [
                TrackedLock(
                    f"mvcc.inode.lock[/p{i}]", rank=3, order_key="mvcc.inode.lock"
                )
                for i in range(3)
            ]
            with locks[0], locks[1], locks[2]:
                pass  # sorted sibling acquisition is not an inversion
            assert sanitizer.violations == []
        finally:
            uninstall_sanitizer()

    def test_session_contexts_key_by_session_identity(self):
        engine = _engine()
        s1, s2 = engine.mvcc.begin(), engine.mvcc.begin()
        sanitizer = LockOrderSanitizer()
        with sanitizer.session(s1):
            key1 = sanitizer.context_key()
        with sanitizer.session(s2):
            key2 = sanitizer.context_key()
        assert key1 != key2
        assert key1[1] == s1.session_key
        s1.abort()
        s2.abort()

    def test_driver_under_sanitizer_agrees_with_declared_order(self):
        sanitizer = install_sanitizer(LockOrderSanitizer())
        try:
            run_mvcc_sessions(sessions=4, steps=48, seed=11, sanitizer=sanitizer)
        finally:
            uninstall_sanitizer()
        assert sanitizer.violations == []
        assert check_agreement([], sorted(sanitizer.observed_edges())) == []


class TestSessionDescriptors:
    def test_fd_io_routes_through_the_session(self):
        engine = _engine()
        engine.write_file("/doc", b"committed state")
        fs = CompressFS(engine=engine)
        session = engine.mvcc.begin()
        fd = fs.open("/doc", fdmod.O_RDWR, session=session)
        assert fs.read(fd, 9) == b"committed"
        fs.pwrite(fd, b"SESSION", 0)
        assert fs.pread(fd, 7, 0) == b"SESSION"
        assert engine.read_file("/doc") == b"committed state"
        fs.close(fd)
        session.commit()
        assert engine.read_file("/doc") == b"SESSIONed state"

    def test_session_finish_force_closes_descriptors(self):
        engine = _engine()
        engine.write_file("/doc", b"data")
        fs = CompressFS(engine=engine)
        session = engine.mvcc.begin()
        fd = fs.open("/doc", fdmod.O_RDONLY, session=session)
        session.commit()
        with pytest.raises(BadFileDescriptor):
            fs.read(fd, 1)

    def test_conflict_abort_releases_fds_and_pins(self):
        engine = _engine()
        engine.write_file("/contested", b"base " * 40)
        fs = CompressFS(engine=engine)
        loser = engine.mvcc.begin()
        fd = fs.open("/contested", fdmod.O_RDWR, session=loser)
        fs.pwrite(fd, b"loser", 0)
        with engine.session() as winner:
            winner.write_file("/contested", b"winner " * 40)
        with pytest.raises(WriteConflict):
            loser.commit()
        assert fs._fds.open_fds() == []
        assert engine.refcount.total_pins() == 0

    def test_failed_sync_on_close_does_not_leak_the_fd(self):
        class ExplodingSyncFS(CompressFS):
            def _sync(self, path):
                raise InvalidArgument("sync exploded")

        engine = _engine()
        engine.write_file("/doc", b"data")
        fs = ExplodingSyncFS(engine=engine)
        fd = fs.open("/doc", fdmod.O_RDWR)
        fs.write(fd, b"dirty")
        with pytest.raises(InvalidArgument, match="sync exploded"):
            fs.close(fd)
        # Regression: the slot must be reclaimed even when sync fails.
        with pytest.raises(BadFileDescriptor):
            fs.read(fd, 1)
        assert fs._fds.open_fds() == []
        assert fs.open("/doc", fdmod.O_RDONLY) == fd  # slot recycled

    def test_snapshot_and_session_open_are_exclusive(self):
        engine = _engine()
        engine.write_file("/doc", b"data")
        fs = CompressFS(engine=engine)
        session = engine.mvcc.begin()
        with pytest.raises(InvalidArgument):
            fs.open("/doc", fdmod.O_RDONLY, snapshot="snap", session=session)
        session.abort()


class TestDatabasesOnSessions:
    def test_minisql_transaction_is_atomic(self):
        from repro.databases.minisql import MiniSQL

        engine = _engine()
        fs = CompressFS(engine=engine)
        with engine.session() as session:
            db = MiniSQL(fs, page_size=512, session=session)
            db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
            assert engine.list_files() == []  # everything buffered
        reopened = MiniSQL(fs, page_size=512)
        rows = reopened.execute("SELECT id, v FROM t")
        assert rows == [{"id": 1, "v": 10}, {"id": 2, "v": 20}]

    def test_minisql_conflict_rolls_back_every_page(self):
        from repro.databases.minisql import MiniSQL

        engine = _engine()
        fs = CompressFS(engine=engine)
        with engine.session() as setup:
            db = MiniSQL(fs, page_size=512, session=setup)
            db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            db.execute("INSERT INTO t VALUES (1, 10)")
        loser = engine.mvcc.begin()
        loser_db = MiniSQL(fs, page_size=512, session=loser)
        loser_db.execute("UPDATE t SET v = 99 WHERE id = 1")
        with engine.session() as winner:
            MiniSQL(fs, page_size=512, session=winner).execute(
                "UPDATE t SET v = 42 WHERE id = 1"
            )
        with pytest.raises(WriteConflict):
            loser.commit()
        assert MiniSQL(fs, page_size=512).execute("SELECT v FROM t") == [{"v": 42}]

    def test_minicolumn_on_a_session(self):
        from repro.databases.minicolumn import MiniColumn

        engine = _engine()
        fs = CompressFS(engine=engine)
        with engine.session() as session:
            db = MiniColumn(fs, session=session)
            db.execute("CREATE TABLE t (id INT, name TEXT)")
            db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        rows = MiniColumn(fs).execute("SELECT id FROM t")
        assert [row["id"] for row in rows] == [1, 2]

    def test_minileveldb_on_a_session(self):
        from repro.databases.minileveldb import MiniLevelDB

        engine = _engine()
        fs = CompressFS(engine=engine)
        with engine.session() as session:
            db = MiniLevelDB(fs, session=session, memtable_limit=1 << 20)
            db.put(b"k1", b"v1")
            db.put(b"k2", b"v2")
            db.close()
        reopened = MiniLevelDB(fs, memtable_limit=1 << 20)
        assert reopened.get(b"k1") == b"v1"
        assert reopened.get(b"k2") == b"v2"


class TestHistoryChecker:
    def _begin(self, seq, session, snapshot=0):
        return HistoryEvent(
            seq=seq, kind="begin", session=session, snapshot_csn=snapshot
        )

    def test_rejects_injected_dirty_read(self):
        events = [
            self._begin(1, 1),
            self._begin(2, 2),
            HistoryEvent(
                seq=3, kind="mutate", session=2,
                op=("write_file", "/f", b"BBBB"),
            ),
            # Session 1 observes session 2's *uncommitted* bytes.
            HistoryEvent(
                seq=4, kind="read", session=1, path="/f",
                offset=0, size=4, data=b"BBBB",
            ),
        ]
        anomalies = check_history(events, initial={"/f": b"AAAA"})
        assert any("dirty or non-repeatable read" in a for a in anomalies)

    def test_rejects_injected_lost_update(self):
        events = [
            self._begin(1, 1),
            self._begin(2, 2),
            HistoryEvent(
                seq=3, kind="mutate", session=1,
                op=("write_file", "/f", b"B"),
            ),
            HistoryEvent(
                seq=4, kind="commit", session=1, csn=1, writes={"/f": b"B"},
            ),
            HistoryEvent(
                seq=5, kind="mutate", session=2,
                op=("write_file", "/f", b"C"),
            ),
            # Session 2 commits over a version created after its
            # snapshot: first-committer-wins should have aborted it.
            HistoryEvent(
                seq=6, kind="commit", session=2, csn=2, writes={"/f": b"C"},
            ),
        ]
        anomalies = check_history(events, initial={"/f": b"A"})
        assert any("lost update" in a for a in anomalies)

    def test_rejects_non_monotone_commit_csns(self):
        events = [
            self._begin(1, 1),
            HistoryEvent(
                seq=2, kind="mutate", session=1, op=("create", "/a"),
            ),
            HistoryEvent(
                seq=3, kind="commit", session=1, csn=5, writes={"/a": b""},
            ),
            self._begin(4, 2, snapshot=5),
            HistoryEvent(
                seq=5, kind="mutate", session=2, op=("create", "/b"),
            ),
            HistoryEvent(
                seq=6, kind="commit", session=2, csn=3, writes={"/b": b""},
            ),
        ]
        anomalies = check_history(events)
        assert any("not strictly greater" in a for a in anomalies)

    def test_rejects_future_snapshot_and_orphan_ops(self):
        events = [
            self._begin(1, 1, snapshot=7),
            HistoryEvent(
                seq=2, kind="read", session=9, path="/f",
                offset=0, size=1, data=b"x",
            ),
        ]
        anomalies = check_history(events)
        assert any("in the future" in a for a in anomalies)
        assert any("without an active begin" in a for a in anomalies)

    def test_accepts_a_recorded_real_history(self):
        result = run_mvcc_sessions(sessions=4, steps=64, seed=1)
        assert result["history"], "driver must record events"
        assert check_history(result["history"], initial=result["initial"]) == []


class TestRandomInterleavings:
    def test_five_hundred_seeded_interleavings_have_zero_anomalies(self):
        """Acceptance criterion: >= 500 seeds x 4 concurrent sessions."""
        failures = []
        for seed in range(500):
            result = run_mvcc_sessions(sessions=4, steps=32, seed=seed)
            anomalies = check_history(result["history"], initial=result["initial"])
            if anomalies:
                failures.append((seed, anomalies[:3]))
        assert failures == []

    def test_aftermath_of_every_run_is_clean(self):
        result = run_mvcc_sessions(sessions=6, steps=96, seed=42)
        engine = result["engine"]
        assert engine.refcount.total_pins() == 0
        assert engine.mvcc.pending_group == 0
        report = engine.fsck(repair=False)
        assert report["refcounts_fixed"] == 0
        assert report["blocks_reclaimed"] == 0
        engine.check_invariants()
        assert result["committed"] + result["aborted"] > 0


try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - baked-in in CI
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    class TestHistoryProperty:
        @settings(
            max_examples=30,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(
            seed=st.integers(0, 2**32 - 1),
            sessions=st.integers(2, 6),
            steps=st.integers(8, 48),
            shared_paths=st.integers(1, 3),
        )
        def test_random_histories_satisfy_snapshot_isolation(
            self, seed, sessions, steps, shared_paths
        ):
            result = run_mvcc_sessions(
                sessions=sessions,
                steps=steps,
                seed=seed,
                shared_paths=shared_paths,
            )
            anomalies = check_history(result["history"], initial=result["initial"])
            assert anomalies == []
            assert result["engine"].refcount.total_pins() == 0

"""Tests for MiniMongo secondary field indexes."""

import pytest

from repro.databases.common import DatabaseError
from repro.databases.minimongo import MiniMongo
from repro.fs import CompressFS, PassthroughFS


@pytest.fixture
def collection():
    db = MiniMongo(PassthroughFS(block_size=256))
    col = db["people"]
    for i in range(60):
        col.insert_one({"_id": f"p{i}", "city": ["oslo", "lima", "kyiv"][i % 3], "age": i % 20})
    return col


class TestIndexManagement:
    def test_create_and_list(self, collection):
        collection.create_index("city")
        assert collection.index_information() == ["city"]

    def test_id_index_rejected(self, collection):
        with pytest.raises(DatabaseError):
            collection.create_index("_id")

    def test_create_twice_is_idempotent(self, collection):
        collection.create_index("city")
        collection.create_index("city")
        assert collection.index_information() == ["city"]

    def test_drop(self, collection):
        collection.create_index("city")
        collection.drop_index("city")
        assert collection.index_information() == []
        with pytest.raises(DatabaseError):
            collection.drop_index("city")

    def test_definitions_survive_reopen(self, collection):
        collection.create_index("city")
        reopened = MiniMongo(collection.fs)["people"]
        assert reopened.index_information() == ["city"]
        assert len(list(reopened.find({"city": "oslo"}))) == 20


class TestIndexedQueries:
    def test_results_match_scan(self, collection):
        before = sorted(doc["_id"] for doc in collection.find({"city": "lima"}))
        collection.create_index("city")
        after = sorted(doc["_id"] for doc in collection.find({"city": "lima"}))
        assert before == after

    def test_find_one_uses_index(self, collection):
        collection.create_index("age")
        doc = collection.find_one({"age": 7})
        assert doc is not None and doc["age"] == 7

    def test_compound_query_filters_exactly(self, collection):
        collection.create_index("city")
        docs = list(collection.find({"city": "oslo", "age": {"$lt": 5}}))
        assert docs and all(d["city"] == "oslo" and d["age"] < 5 for d in docs)

    def test_operator_query_skips_index(self, collection):
        collection.create_index("age")
        docs = list(collection.find({"age": {"$gte": 18}}))
        assert len(docs) == sum(1 for i in range(60) if i % 20 >= 18)

    def test_count_documents(self, collection):
        collection.create_index("city")
        assert collection.count_documents({"city": "kyiv"}) == 20


class TestIndexMaintenance:
    def test_insert_updates_index(self, collection):
        collection.create_index("city")
        collection.insert_one({"_id": "new", "city": "quito"})
        assert collection.find_one({"city": "quito"})["_id"] == "new"

    def test_update_moves_index_entry(self, collection):
        collection.create_index("city")
        collection.update_one({"_id": "p0"}, {"$set": {"city": "milan"}})
        assert collection.find_one({"city": "milan"})["_id"] == "p0"
        assert all(d["_id"] != "p0" for d in collection.find({"city": "oslo"}))

    def test_replace_moves_index_entry(self, collection):
        collection.create_index("city")
        collection.replace_one({"_id": "p1"}, {"city": "tunis"})
        assert collection.find_one({"city": "tunis"})["_id"] == "p1"

    def test_delete_removes_index_entry(self, collection):
        collection.create_index("city")
        collection.delete_one({"_id": "p2"})
        assert all(d["_id"] != "p2" for d in collection.find({"city": "kyiv"}))

    def test_works_on_compressfs(self):
        col = MiniMongo(CompressFS(block_size=256))["c"]
        for i in range(30):
            col.insert_one({"_id": f"d{i}", "tag": f"t{i % 4}"})
        col.create_index("tag")
        assert len(list(col.find({"tag": "t2"}))) == 7  # i = 2, 6, ..., 26

"""Tests for the SSTable file format."""

import pytest

from repro.compression import SnappyCodec
from repro.databases.common import CorruptRecord
from repro.databases.sstable import SSTableReader, SSTableWriter
from repro.fs import PassthroughFS


@pytest.fixture
def fs():
    return PassthroughFS(block_size=256)


def build_table(fs, entries, codec=None, block_target=64):
    writer = SSTableWriter(fs, "/t.sst", codec=codec, block_target=block_target)
    for key, value in entries:
        writer.add(key, value)
    writer.finish()
    return SSTableReader(fs, "/t.sst", codec=codec)


class TestWriter:
    def test_keys_must_ascend(self, fs):
        writer = SSTableWriter(fs, "/t.sst")
        writer.add(b"b", b"1")
        with pytest.raises(ValueError):
            writer.add(b"a", b"2")
        with pytest.raises(ValueError):
            writer.add(b"b", b"2")

    def test_entry_count(self, fs):
        writer = SSTableWriter(fs, "/t.sst")
        writer.add(b"a", b"1")
        writer.add(b"b", None)
        assert writer.entry_count == 2

    def test_finish_returns_file_size(self, fs):
        writer = SSTableWriter(fs, "/t.sst")
        writer.add(b"a", b"1")
        size = writer.finish()
        assert size == fs.stat("/t.sst").size


class TestReader:
    def test_get_existing_keys(self, fs):
        entries = [(b"k%03d" % i, b"v%03d" % i) for i in range(100)]
        reader = build_table(fs, entries)
        assert reader.block_count > 1
        for key, value in entries:
            assert reader.get(key) == (True, value)

    def test_get_missing_key(self, fs):
        reader = build_table(fs, [(b"a", b"1"), (b"c", b"3")])
        assert reader.get(b"b") == (False, None)
        assert reader.get(b"z") == (False, None)
        assert reader.get(b"0") == (False, None)

    def test_tombstones_are_found(self, fs):
        reader = build_table(fs, [(b"a", b"1"), (b"b", None)])
        assert reader.get(b"b") == (True, None)

    def test_first_last_key(self, fs):
        reader = build_table(fs, [(b"aa", b"1"), (b"zz", b"2")])
        assert reader.first_key == b"aa"
        assert reader.last_key == b"zz"

    def test_iterate_all(self, fs):
        entries = [(b"k%02d" % i, b"v" * i) for i in range(30)]
        reader = build_table(fs, entries)
        assert list(reader.iterate()) == entries

    def test_iterate_range(self, fs):
        entries = [(b"k%02d" % i, b"v") for i in range(30)]
        reader = build_table(fs, entries)
        got = list(reader.iterate(b"k05", b"k10"))
        assert got == entries[5:10]

    def test_iterate_start_in_gap(self, fs):
        reader = build_table(fs, [(b"a", b"1"), (b"m", b"2"), (b"z", b"3")])
        assert list(reader.iterate(b"b")) == [(b"m", b"2"), (b"z", b"3")]

    def test_not_an_sstable(self, fs):
        fs.write_file("/junk", b"short")
        with pytest.raises(CorruptRecord):
            SSTableReader(fs, "/junk")

    def test_bad_magic(self, fs):
        reader_path = "/t.sst"
        writer = SSTableWriter(fs, reader_path)
        writer.add(b"a", b"1")
        size = writer.finish()
        fs._pwrite(reader_path, size - 1, b"\xff")
        with pytest.raises(CorruptRecord):
            SSTableReader(fs, reader_path)


class TestCompression:
    def test_snappy_blocks_roundtrip(self, fs):
        entries = [(b"key%04d" % i, b"the same value " * 5) for i in range(200)]
        reader = build_table(fs, entries, codec=SnappyCodec(), block_target=512)
        for key, value in entries[::17]:
            assert reader.get(key) == (True, value)
        assert list(reader.iterate()) == entries

    def test_compression_shrinks_file(self, fs):
        entries = [(b"key%04d" % i, b"repetitive value " * 8) for i in range(100)]
        build_table(fs, entries, block_target=512)
        plain_size = fs.stat("/t.sst").size
        fs2 = PassthroughFS(block_size=256)
        writer = SSTableWriter(fs2, "/t.sst", codec=SnappyCodec(), block_target=512)
        for key, value in entries:
            writer.add(key, value)
        compressed_size = writer.finish()
        assert compressed_size < plain_size / 2

    def test_incompressible_blocks_stored_raw(self, fs):
        import random

        rng = random.Random(0)
        entries = [
            (b"k%03d" % i, bytes(rng.randrange(256) for __ in range(50)))
            for i in range(20)
        ]
        reader = build_table(fs, entries, codec=SnappyCodec(), block_target=256)
        assert list(reader.iterate()) == entries


class TestRecordAlignment:
    def test_alignment_roundtrip(self, fs):
        writer = SSTableWriter(fs, "/t.sst", block_target=1024, align_records=256)
        entries = [(b"key%03d" % i, b"V" * 300) for i in range(40)]
        for key, value in entries:
            writer.add(key, value)
        writer.finish()
        reader = SSTableReader(fs, "/t.sst")
        assert list(reader.iterate()) == entries
        for key, value in entries[::7]:
            assert reader.get(key) == (True, value)

    def test_alignment_with_codec_rejected(self, fs):
        with pytest.raises(ValueError):
            SSTableWriter(fs, "/t.sst", codec=SnappyCodec(), align_records=256)

    def test_tiny_alignment_rejected(self, fs):
        with pytest.raises(ValueError):
            SSTableWriter(fs, "/t.sst", align_records=4)

    def test_small_records_not_padded(self, fs):
        aligned = SSTableWriter(fs, "/a.sst", align_records=256)
        for i in range(50):
            aligned.add(b"k%02d" % i, b"small")
        size_aligned = aligned.finish()
        plain = SSTableWriter(fs, "/p.sst")
        for i in range(50):
            plain.add(b"k%02d" % i, b"small")
        size_plain = plain.finish()
        assert size_aligned <= size_plain + 256  # no per-record blow-up

    def test_duplicate_values_dedup_on_compressfs(self):
        """The point of alignment: same value under different keys
        occupies the same storage blocks on a dedup file system."""
        import random

        from repro.fs import CompressFS

        # A non-self-similar value (random bytes) spanning several
        # blocks: only alignment can make its copies dedup.
        rng = random.Random(1)
        value = bytes(rng.randrange(256) for __ in range(1300))
        aligned_fs = CompressFS(block_size=256)
        writer = SSTableWriter(aligned_fs, "/t.sst", block_target=1 << 16, align_records=256)
        for i in range(30):
            writer.add(b"key%04d" % i, value)
        writer.finish()
        unaligned_fs = CompressFS(block_size=256)
        writer = SSTableWriter(unaligned_fs, "/t.sst", block_target=1 << 16)
        for i in range(30):
            writer.add(b"key%04d" % i, value)
        writer.finish()
        assert aligned_fs.physical_bytes() < unaligned_fs.physical_bytes() / 2

"""Call graph, summaries, and DOT rendering (reprolint interprocedural).

Covers the resolver's contract: module-qualified resolution, ``self``
dispatch over the class hierarchy, typed-attribute chains, bounded
recursion in the transitive summaries, and byte-stable DOT output.
"""

from __future__ import annotations

import textwrap

from repro.analysis import Analyzer
from repro.analysis.callgraph import build_program, program_dot
from repro.analysis.summaries import find_lock_cycles


def program_for(*items):
    """Build a ProgramContext from (path, source) pairs."""
    analyzer = Analyzer(rules=())
    contexts = [
        analyzer.build_context(textwrap.dedent(source), path)
        for path, source in items
    ]
    return build_program(contexts)


def edges_of(program, caller):
    return sorted(
        edge.callee for edge, __ in program.calls_from.get(caller, ())
    )


class TestCallResolution:
    def test_module_level_call(self):
        program = program_for(
            (
                "src/repro/core/a.py",
                """
                def helper():
                    pass

                def entry():
                    helper()
                """,
            )
        )
        assert edges_of(program, "repro.core.a.entry") == ["repro.core.a.helper"]

    def test_imported_function_call(self):
        program = program_for(
            (
                "src/repro/core/a.py",
                """
                def shared():
                    pass
                """,
            ),
            (
                "src/repro/core/b.py",
                """
                from repro.core.a import shared

                def entry():
                    shared()
                """,
            ),
        )
        assert edges_of(program, "repro.core.b.entry") == ["repro.core.a.shared"]

    def test_self_method_dispatch(self):
        program = program_for(
            (
                "src/repro/core/a.py",
                """
                class Engine:
                    def flush(self):
                        pass

                    def sync(self):
                        self.flush()
                """,
            )
        )
        assert edges_of(program, "repro.core.a.Engine.sync") == [
            "repro.core.a.Engine.flush"
        ]

    def test_inherited_method_resolves_through_base(self):
        program = program_for(
            (
                "src/repro/core/a.py",
                """
                class Base:
                    def ping(self):
                        pass

                class Derived(Base):
                    def go(self):
                        self.ping()
                """,
            )
        )
        assert edges_of(program, "repro.core.a.Derived.go") == [
            "repro.core.a.Base.ping"
        ]

    def test_typed_attribute_chain(self):
        program = program_for(
            (
                "src/repro/core/a.py",
                """
                class Master:
                    def unlink(self, path):
                        pass

                class Client:
                    def __init__(self, master: Master):
                        self.master = master

                    def remove(self, path):
                        self.master.unlink(path)
                """,
            )
        )
        assert edges_of(program, "repro.core.a.Client.remove") == [
            "repro.core.a.Master.unlink"
        ]

    def test_container_element_dispatch(self):
        program = program_for(
            (
                "src/repro/core/a.py",
                """
                class Server:
                    def write(self, data):
                        pass

                class Client:
                    def __init__(self, servers: dict[str, Server]):
                        self.servers = servers

                    def push(self, name, data):
                        self.servers[name].write(data)

                    def broadcast(self, data):
                        for server in self.servers.values():
                            server.write(data)
                """,
            )
        )
        assert edges_of(program, "repro.core.a.Client.push") == [
            "repro.core.a.Server.write"
        ]
        assert edges_of(program, "repro.core.a.Client.broadcast") == [
            "repro.core.a.Server.write"
        ]

    def test_unresolvable_call_carries_no_edge(self):
        program = program_for(
            (
                "src/repro/core/a.py",
                """
                def entry(thing):
                    thing.mystery()
                """,
            )
        )
        assert edges_of(program, "repro.core.a.entry") == []

    def test_constructor_call_edges_to_init(self):
        program = program_for(
            (
                "src/repro/core/a.py",
                """
                class Widget:
                    def __init__(self):
                        pass

                def make():
                    return Widget()
                """,
            )
        )
        assert edges_of(program, "repro.core.a.make") == [
            "repro.core.a.Widget.__init__"
        ]


class TestSummaries:
    def test_transitive_locks_compose_across_calls(self):
        program = program_for(
            (
                "src/repro/distributed/a.py",
                """
                class Master:
                    def __init__(self):
                        self.lock = object()

                    def mutate(self):
                        with self.lock:
                            pass

                class Client:
                    def __init__(self, master: Master):
                        self.master = master

                    def outer(self):
                        self.step()

                    def step(self):
                        self.master.mutate()
                """,
            )
        )
        locks = program.summaries.transitive_locks(
            "repro.distributed.a.Client.outer"
        )
        assert "repro.distributed.a.Master.lock" in locks
        chain = locks["repro.distributed.a.Master.lock"]
        assert chain == (
            "repro.distributed.a.Client.outer",
            "repro.distributed.a.Client.step",
            "repro.distributed.a.Master.mutate",
        )

    def test_recursion_is_bounded_not_infinite(self):
        program = program_for(
            (
                "src/repro/core/a.py",
                """
                class Node:
                    def __init__(self):
                        self.node_lock = object()

                    def ping(self):
                        self.pong()

                    def pong(self):
                        with self.node_lock:
                            self.ping()
                """,
            )
        )
        locks = program.summaries.transitive_locks("repro.core.a.Node.ping")
        assert "repro.core.a.Node.node_lock" in locks

    def test_counted_return_propagates_through_wrappers(self):
        program = program_for(
            (
                "src/repro/core/a.py",
                """
                def take(refcount, block_no):
                    refcount.incref(block_no)
                    return block_no

                def wrap(refcount, block_no):
                    return take(refcount, block_no)
                """,
            )
        )
        summaries = program.summaries
        assert summaries.counted_return("repro.core.a.take")
        assert summaries.counted_return("repro.core.a.wrap")
        assert not summaries.counted_return("repro.core.a.missing")

    def test_lock_order_edges_and_cycles(self):
        program = program_for(
            (
                "src/repro/distributed/a.py",
                """
                class Pair:
                    def __init__(self):
                        self.a_lock = object()
                        self.b_lock = object()

                    def ab(self):
                        with self.a_lock:
                            with self.b_lock:
                                pass

                    def ba(self):
                        with self.b_lock:
                            with self.a_lock:
                                pass
                """,
            )
        )
        edges = program.summaries.lock_order_edges()
        pairs = {(edge.outer, edge.inner) for edge in edges}
        assert (
            "repro.distributed.a.Pair.a_lock",
            "repro.distributed.a.Pair.b_lock",
        ) in pairs
        cycles = find_lock_cycles(edges)
        assert cycles, "the a->b / b->a pair must form a cycle"


class TestProgramDot:
    SOURCE = (
        "src/repro/distributed/a.py",
        """
        class Master:
            def __init__(self):
                self.lock = object()

            def mutate(self):
                with self.lock:
                    pass

        class Client:
            def __init__(self, master: Master):
                self.master = master

            def go(self):
                self.master.mutate()
        """,
    )

    def test_dot_contains_both_clusters(self):
        text = program_dot(program_for(self.SOURCE))
        assert "cluster_calls" in text
        assert "cluster_locks" in text
        assert '"distributed.a.Client.go" -> "distributed.a.Master.mutate";' in text

    def test_dot_is_byte_stable(self):
        first = program_dot(program_for(self.SOURCE))
        second = program_dot(program_for(self.SOURCE))
        assert first == second
        assert first.endswith("\n")

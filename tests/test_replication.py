"""Tests for chunk replication and node-failure handling."""

import pytest

from repro.distributed import (
    Master,
    NoLiveReplica,
    ServerDown,
    build_cluster,
)


class TestMasterReplication:
    def test_replication_bounds_validated(self):
        with pytest.raises(ValueError):
            Master(["a", "b"], replication=3)
        with pytest.raises(ValueError):
            Master(["a", "b"], replication=0)

    def test_replicas_are_distinct_servers(self):
        master = Master(["a", "b", "c"], replication=2)
        master.create("/f")
        for __ in range(6):
            chunk = master.allocate_chunk("/f")
            assert len(set(chunk.servers)) == 2

    def test_primary_accessor(self):
        master = Master(["a", "b"], replication=2)
        master.create("/f")
        chunk = master.allocate_chunk("/f")
        assert chunk.server == chunk.servers[0]

    def test_rotation_spreads_primaries(self):
        master = Master(["a", "b", "c"], replication=2)
        master.create("/f")
        primaries = [master.allocate_chunk("/f").server for __ in range(6)]
        assert set(primaries) == {"a", "b", "c"}


class TestServerFailure:
    def test_offline_server_rejects_requests(self):
        cluster = build_cluster(nodes=2)
        cluster.client.write_file("/f", b"data")
        server = next(iter(cluster.servers.values()))
        server.fail()
        with pytest.raises(ServerDown):
            server.read("c00000000", 0, 1)
        server.recover()

    def test_recovered_server_serves_again(self):
        cluster = build_cluster(nodes=1)
        cluster.client.write_file("/f", b"payload")
        server = cluster.servers["node0"]
        server.fail()
        server.recover()
        assert cluster.client.read_file("/f") == b"payload"


class TestReplicatedCluster:
    def test_data_written_to_all_replicas(self):
        cluster = build_cluster(nodes=3, replication=2, chunk_capacity=64)
        cluster.client.write_file("/f", b"replicated " * 20)
        for chunk in cluster.master.lookup("/f").chunks:
            contents = {
                cluster.servers[name].read(chunk.chunk_id, 0, chunk.length)
                for name in chunk.servers
            }
            assert len(contents) == 1  # replicas agree

    def test_read_survives_primary_failure(self):
        cluster = build_cluster(nodes=3, replication=2, chunk_capacity=64)
        data = b"failover payload " * 30
        cluster.client.write_file("/f", data)
        # Kill the primary of the first chunk.
        primary = cluster.master.lookup("/f").chunks[0].server
        cluster.servers[primary].fail()
        assert cluster.client.read_file("/f") == data

    def test_search_survives_failure(self):
        cluster = build_cluster(nodes=3, replication=2, chunk_capacity=48)
        data = b"find the needle in here, the needle " * 10
        cluster.client.write_file("/f", data)
        cluster.servers["node0"].fail()
        expected = []
        index = data.find(b"needle")
        while index != -1:
            expected.append(index)
            index = data.find(b"needle", index + 1)
        assert cluster.client.search("/f", b"needle") == expected

    def test_manipulation_survives_failure(self):
        cluster = build_cluster(nodes=3, replication=2, chunk_capacity=64)
        cluster.client.write_file("/f", b"0123456789" * 20)
        cluster.servers["node1"].fail()
        cluster.client.insert("/f", 5, b"INS")
        cluster.client.delete("/f", 0, 2)
        assert cluster.client.read_file("/f").startswith(b"234INS56789")

    def test_unreplicated_chunk_fails_hard(self):
        cluster = build_cluster(nodes=2, replication=1, chunk_capacity=64)
        cluster.client.write_file("/f", b"x" * 200)
        for server in cluster.servers.values():
            server.fail()
        with pytest.raises(NoLiveReplica):
            cluster.client.read_file("/f")

    def test_replication_doubles_storage(self):
        # Baseline (non-dedup) servers so replica copies are visible;
        # on CompressDB servers identical replicas dedup away locally.
        single = build_cluster(nodes=3, replication=1, chunk_capacity=64, compressed=False)
        double = build_cluster(nodes=3, replication=2, chunk_capacity=64, compressed=False)
        data = bytes(range(256)) * 4
        single.client.write_file("/f", data)
        double.client.write_file("/f", data)
        assert double.physical_bytes() == 2 * single.physical_bytes()

    def test_compressdb_absorbs_replica_overhead_per_node(self):
        """On CompressDB servers, a replica that lands on a node already
        holding identical blocks costs no extra data blocks — dedup and
        replication compose."""
        cluster = build_cluster(nodes=2, replication=2, chunk_capacity=1024)
        block = b"R" * 1024
        cluster.client.write_file("/f", block * 8)
        for server in cluster.servers.values():
            assert server.physical_bytes() == 1024  # one unique block each

    def test_write_after_failure_updates_survivors(self):
        cluster = build_cluster(nodes=2, replication=2, chunk_capacity=1024)
        cluster.client.write_file("/f", b"a" * 100)
        cluster.servers["node0"].fail()
        cluster.client.write("/f", 0, b"B" * 10)
        assert cluster.client.read_file("/f") == b"B" * 10 + b"a" * 90
        # The failed node keeps its stale copy until an explicit resync.
        cluster.servers["node0"].recover()
        chunk = cluster.master.lookup("/f").chunks[0]
        replicas = {
            name: cluster.servers[name].read(chunk.chunk_id, 0, 10)
            for name in chunk.servers
        }
        assert replicas["node1"] == b"B" * 10


class TestResync:
    def test_resync_repairs_stale_replica(self):
        cluster = build_cluster(nodes=2, replication=2, chunk_capacity=1024)
        cluster.client.write_file("/f", b"a" * 100)
        cluster.servers["node0"].fail()
        cluster.client.write("/f", 0, b"B" * 50)  # node0 misses this
        cluster.servers["node0"].recover()
        repaired = cluster.client.resync("node0")
        assert repaired == 1
        # node0 now serves the current bytes even if node1 dies.
        cluster.servers["node1"].fail()
        assert cluster.client.read_file("/f") == b"B" * 50 + b"a" * 50

    def test_resync_noop_when_consistent(self):
        cluster = build_cluster(nodes=3, replication=2, chunk_capacity=256)
        cluster.client.write_file("/f", b"consistent " * 40)
        assert cluster.client.resync("node0") == 0
        assert cluster.client.resync("node1") == 0

    def test_resync_recreates_missing_chunks(self):
        cluster = build_cluster(nodes=2, replication=2, chunk_capacity=64)
        cluster.client.write_file("/f", b"x" * 200)
        # Wipe node0's chunks entirely (disk loss, then recovery).
        node0 = cluster.servers["node0"]
        for chunk_id in node0.chunk_ids():
            node0.delete_chunk(chunk_id)
        repaired = cluster.client.resync("node0")
        assert repaired >= 1
        cluster.servers["node1"].fail()
        assert cluster.client.read_file("/f") == b"x" * 200

    def test_resync_offline_server_rejected(self):
        import pytest as _pytest

        cluster = build_cluster(nodes=2, replication=2)
        cluster.servers["node0"].fail()
        with _pytest.raises(ValueError):
            cluster.client.resync("node0")

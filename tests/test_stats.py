"""Unit tests for I/O statistics counters."""

import pytest

from repro.storage.stats import IOStats, StatsRegistry


class TestIOStats:
    def test_record_read(self):
        stats = IOStats()
        stats.record_read(1024)
        assert stats.block_reads == 1
        assert stats.bytes_read == 1024

    def test_record_write(self):
        stats = IOStats()
        stats.record_write(512)
        assert stats.block_writes == 1
        assert stats.bytes_written == 512

    def test_totals(self):
        stats = IOStats()
        stats.record_read(10)
        stats.record_write(20)
        stats.record_metadata_read()
        stats.record_metadata_write()
        assert stats.total_ops == 4
        assert stats.total_bytes == 30

    def test_reset_zeroes_everything(self):
        stats = IOStats()
        stats.record_read(10)
        stats.allocations = 3
        stats.reset()
        assert stats.total_ops == 0
        assert stats.allocations == 0

    def test_snapshot_is_independent(self):
        stats = IOStats()
        stats.record_read(10)
        snap = stats.snapshot()
        stats.record_read(10)
        assert snap.block_reads == 1
        assert stats.block_reads == 2

    def test_delta(self):
        stats = IOStats()
        stats.record_read(10)
        earlier = stats.snapshot()
        stats.record_read(10)
        stats.record_write(5)
        diff = stats.delta(earlier)
        assert diff.block_reads == 1
        assert diff.block_writes == 1
        assert diff.bytes_written == 5


class TestStatsRegistry:
    def test_register_and_get(self):
        registry = StatsRegistry()
        stats = registry.register("node0")
        assert registry.get("node0") is stats

    def test_duplicate_registration_rejected(self):
        registry = StatsRegistry()
        registry.register("node0")
        with pytest.raises(ValueError):
            registry.register("node0")

    def test_aggregate_sums_components(self):
        registry = StatsRegistry()
        registry.register("a").record_read(10)
        registry.register("b").record_read(20)
        registry.get("b").record_write(5)
        total = registry.aggregate()
        assert total.block_reads == 2
        assert total.bytes_read == 30
        assert total.bytes_written == 5

    def test_reset_all(self):
        registry = StatsRegistry()
        registry.register("a").record_read(10)
        registry.reset_all()
        assert registry.aggregate().total_ops == 0

"""Tests for reprolint, the engine's AST-based invariant analyzer.

Each rule gets a positive fixture (the violation is found), a negative
fixture (idiomatic code passes), and a suppression fixture.  On top of
that: suppression hygiene (SUP001), stable JSON output, the CLI
``lint`` subcommand, and — the point of the exercise — the shipped
source tree linting clean.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    Analyzer,
    CHECKER_REGISTRY,
    default_target,
    run_paths,
)
from repro.analysis.framework import module_name_for
from repro.cli import main
from repro.core.engine import CompressDB
from repro.storage.inode import Inode


def lint(source: str, path: str, rules=None):
    """Run the analyzer over one synthetic file."""
    return Analyzer(rules=rules).run_source(textwrap.dedent(source), path)


def active(findings):
    return [f for f in findings if not f.suppressed]


def rule_ids(findings):
    return sorted({f.rule_id for f in active(findings)})


# ---------------------------------------------------------------------------
# RC001 — refcount pairing
# ---------------------------------------------------------------------------

class TestRefcountRule:
    PATH = "src/repro/core/fixture.py"

    def test_raise_between_incref_and_discharge(self):
        findings = lint(
            """
            def leak(refcount, device, block):
                refcount.incref(block)
                device.write_block(block, b"x")
                return None
            """,
            self.PATH,
            rules=["RC001"],
        )
        assert rule_ids(findings) == ["RC001"]
        assert "leak" in active(findings)[0].message

    def test_transfer_discharges_obligation(self):
        findings = lint(
            """
            def balanced(refcount, inode, block):
                refcount.incref(block)
                inode.append_slot(Slot(block_no=block, used=1))
            """,
            self.PATH,
            rules=["RC001"],
        )
        assert findings == []

    def test_try_finally_decref_is_balanced(self):
        findings = lint(
            """
            def guarded(refcount, device, block):
                refcount.incref(block)
                try:
                    device.write_block(block, b"x")
                finally:
                    refcount.decref(block)
            """,
            self.PATH,
            rules=["RC001"],
        )
        assert findings == []

    def test_loop_carried_obligations_flagged(self):
        findings = lint(
            """
            def clone_all(refcount, source, clone):
                for slot in source.iter_slots():
                    refcount.incref(slot.block_no)
                    clone.append_slot(Slot(block_no=slot.block_no, used=slot.used))
                publish(clone)
            """,
            self.PATH,
            rules=["RC001"],
        )
        assert len(active(findings)) == 1
        assert "loop" in active(findings)[0].message

    def test_loop_with_decref_rollback_passes(self):
        findings = lint(
            """
            def clone_safe(refcount, source, clone):
                added = []
                try:
                    for slot in source.iter_slots():
                        refcount.incref(slot.block_no)
                        added.append(slot.block_no)
                        clone.append_slot(Slot(block_no=slot.block_no, used=slot.used))
                except Exception:
                    for block_no in added:
                        refcount.decref(block_no)
                    raise
            """,
            self.PATH,
            rules=["RC001"],
        )
        assert findings == []

    def test_rule_scoped_to_core_and_fs(self):
        findings = lint(
            """
            def leak(refcount, device, block):
                refcount.incref(block)
                device.write_block(block, b"x")
                return None
            """,
            "src/repro/workloads/fixture.py",
            rules=["RC001"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# IO001 — batched block I/O
# ---------------------------------------------------------------------------

class TestBatchedIORule:
    PATH = "src/repro/core/iofixture.py"

    def test_per_block_read_in_loop_flagged(self):
        findings = lint(
            """
            def gather(device, block_nos):
                out = []
                for no in block_nos:
                    out.append(device.read_block(no))
                return out
            """,
            self.PATH,
            rules=["IO001"],
        )
        assert len(active(findings)) == 1
        assert "read_blocks" in active(findings)[0].message

    def test_comprehension_counts_as_loop(self):
        findings = lint(
            """
            def gather(device, block_nos):
                return [device.read_block(no) for no in block_nos]
            """,
            self.PATH,
            rules=["IO001"],
        )
        assert len(active(findings)) == 1

    def test_batched_call_passes(self):
        findings = lint(
            """
            def gather(device, block_nos):
                return device.read_blocks(block_nos)
            """,
            self.PATH,
            rules=["IO001"],
        )
        assert findings == []

    def test_bare_function_with_same_name_not_claimed(self):
        findings = lint(
            """
            def generate(count):
                return [write_block() for __ in range(count)]
            """,
            self.PATH,
            rules=["IO001"],
        )
        assert findings == []

    def test_storage_layer_exempt(self):
        findings = lint(
            """
            def flush(self):
                for no, payload in self._dirty.items():
                    self.backend.write_block(no, payload)
            """,
            "src/repro/storage/device_fixture.py",
            rules=["IO001"],
        )
        assert findings == []

    def test_suppression_with_justification(self):
        findings = lint(
            """
            def chase(device, head):
                while head != -1:
                    raw = device.read_block(head)  # reprolint: disable=IO001 -- pointer chase, reads are dependent
                    head = next_of(raw)
            """,
            self.PATH,
            rules=["IO001", "SUP001"],
        )
        assert active(findings) == []
        suppressed = [f for f in findings if f.suppressed]
        assert len(suppressed) == 1
        assert "pointer chase" in suppressed[0].justification


# ---------------------------------------------------------------------------
# LAYER001 — layer cake and boundary exceptions
# ---------------------------------------------------------------------------

class TestLayeringRule:
    def test_database_touching_block_device_flagged(self):
        findings = lint(
            """
            from repro.storage.block_device import MemoryBlockDevice
            """,
            "src/repro/databases/fixture.py",
            rules=["LAYER001"],
        )
        assert len(active(findings)) == 1
        assert "repro.core.api" in active(findings)[0].message

    def test_database_using_public_surface_passes(self):
        findings = lint(
            """
            from repro.core.api import SocketClient
            from repro.fs.vfs import PassthroughFS
            from repro.storage.simclock import SimClock
            """,
            "src/repro/databases/fixture.py",
            rules=["LAYER001"],
        )
        assert findings == []

    def test_lower_layer_importing_higher_flagged(self):
        findings = lint(
            """
            from repro.fs.vfs import PassthroughFS
            """,
            "src/repro/storage/fixture.py",
            rules=["LAYER001"],
        )
        assert len(active(findings)) == 1
        assert "lower layers" in active(findings)[0].message

    def test_builtin_exception_across_vfs_flagged(self):
        findings = lint(
            """
            class BrokenFS(FileSystem):
                def _pread(self, path, offset, size):
                    raise ValueError("nope")
            """,
            "src/repro/fs/fixture.py",
            rules=["LAYER001"],
        )
        assert len(active(findings)) == 1
        assert "ValueError" in active(findings)[0].message

    def test_engine_internal_exception_across_vfs_flagged(self):
        findings = lint(
            """
            from repro.core.engine import FileNotFoundInEngine

            class LeakyFS(FileSystem):
                def _size(self, path):
                    raise FileNotFoundInEngine(path)
            """,
            "src/repro/fs/fixture.py",
            rules=["LAYER001"],
        )
        assert len(active(findings)) == 1

    def test_fs_errors_types_cross_cleanly(self):
        findings = lint(
            """
            from repro.fs.errors import FileNotFound

            class GoodFS(FileSystem):
                def _size(self, path):
                    raise FileNotFound(path)

                def _pwritev(self, path, offset, chunks):
                    raise NotImplementedError
            """,
            "src/repro/fs/fixture.py",
            rules=["LAYER001"],
        )
        assert findings == []

    def test_helper_methods_may_raise_builtins(self):
        findings = lint(
            """
            class InternalFS(FileSystem):
                def _pick_strategy(self, hint):
                    raise ValueError(hint)
            """,
            "src/repro/fs/fixture.py",
            rules=["LAYER001"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# LOCK001 — cluster lock order
# ---------------------------------------------------------------------------

class TestLockOrderRule:
    PATH = "src/repro/distributed/fixture.py"

    def test_inverted_nesting_flagged(self):
        findings = lint(
            """
            def bad(self):
                with self.client_lock:
                    with self.master_lock:
                        pass
            """,
            self.PATH,
            rules=["LOCK001"],
        )
        assert len(active(findings)) == 1
        assert "inversion" in active(findings)[0].message

    def test_declared_order_passes(self):
        findings = lint(
            """
            def good(self):
                with self.master_lock:
                    with self.chunkserver_lock:
                        with self.client_lock:
                            pass
            """,
            self.PATH,
            rules=["LOCK001"],
        )
        assert findings == []

    def test_reacquisition_is_self_deadlock(self):
        findings = lint(
            """
            def twice(self):
                with self.state_lock:
                    with self.state_lock:
                        pass
            """,
            self.PATH,
            rules=["LOCK001"],
        )
        assert len(active(findings)) == 1
        assert "self-deadlock" in active(findings)[0].message

    def test_multi_item_with_checked_left_to_right(self):
        findings = lint(
            """
            def bad(self):
                with self.client_lock, self.master_lock:
                    pass
            """,
            self.PATH,
            rules=["LOCK001"],
        )
        assert len(active(findings)) == 1

    def test_rule_scoped_to_distributed(self):
        findings = lint(
            """
            def bad(self):
                with self.client_lock:
                    with self.master_lock:
                        pass
            """,
            "src/repro/core/fixture.py",
            rules=["LOCK001"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# MUT001 — raw block buffer mutation
# ---------------------------------------------------------------------------

class TestRawMutationRule:
    PATH = "src/repro/core/mutfixture.py"

    def test_subscript_store_into_raw_block_flagged(self):
        findings = lint(
            """
            def corrupt(device, no):
                raw = bytearray(device.read_block(no))
                raw[0] = 1
            """,
            self.PATH,
            rules=["MUT001"],
        )
        assert len(active(findings)) == 1
        assert "raw" in active(findings)[0].message

    def test_mutator_method_on_raw_block_flagged(self):
        findings = lint(
            """
            def corrupt(device, no):
                raw = bytearray(device.read_block(no))
                raw.extend(b"tail")
            """,
            self.PATH,
            rules=["MUT001"],
        )
        assert len(active(findings)) == 1

    def test_fresh_buffer_mutation_passes(self):
        findings = lint(
            """
            def fine(device, no):
                header = device.read_block(no)[:4]
                fresh = bytearray(64)
                fresh[0] = 1
                fresh.extend(header)
                return bytes(fresh)
            """,
            self.PATH,
            rules=["MUT001"],
        )
        assert findings == []

    def test_taint_does_not_cross_ordinary_calls(self):
        findings = lint(
            """
            def fine(self, device, no):
                raw = device.read_block(no)
                pieces = self._chunk(raw)
                pieces.append((b"tail", 4))
            """,
            self.PATH,
            rules=["MUT001"],
        )
        assert findings == []

    def test_hole_api_module_exempt(self):
        findings = lint(
            """
            def punch(device, no, start, length):
                raw = bytearray(device.read_block(no))
                raw[start : start + length] = b"\\x00" * length
            """,
            "src/repro/core/holes.py",
            rules=["MUT001"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# OBS001 — metric mutation outside repro.obs
# ---------------------------------------------------------------------------

class TestObsMutationRule:
    PATH = "src/repro/core/obsfixture.py"

    def test_stats_attribute_write_flagged(self):
        findings = lint(
            """
            def bump(self):
                self.stats.commits += 1
            """,
            self.PATH,
            rules=["OBS001"],
        )
        assert rule_ids(findings) == ["OBS001"]

    def test_bare_stats_name_write_flagged(self):
        findings = lint(
            """
            def bump(stats):
                stats.block_reads = 3
            """,
            self.PATH,
            rules=["OBS001"],
        )
        assert rule_ids(findings) == ["OBS001"]

    def test_instrument_value_write_flagged(self):
        findings = lint(
            """
            def bump(registry):
                c = registry.counter("engine.txn.commits")
                c.value += 1
            """,
            self.PATH,
            rules=["OBS001"],
        )
        assert rule_ids(findings) == ["OBS001"]

    def test_force_call_flagged(self):
        findings = lint(
            """
            def clear(counter):
                counter.force(0)
            """,
            self.PATH,
            rules=["OBS001"],
        )
        assert rule_ids(findings) == ["OBS001"]

    def test_registry_accessors_pass(self):
        findings = lint(
            """
            def bump(self, registry):
                self.stats.record("commits")
                self.stats.record_read(1024)
                registry.counter("engine.txn.commits").inc()
                registry.gauge("engine.space.files").set(3)
                registry.histogram("engine.txn.commit_ms").observe(1.5)
            """,
            self.PATH,
            rules=["OBS001"],
        )
        assert findings == []

    def test_obs_package_exempt(self):
        findings = lint(
            """
            def reset(self):
                self.value = 0
                self.stats.total = 0
            """,
            "src/repro/obs/metrics.py",
            rules=["OBS001"],
        )
        assert findings == []

    def test_suppression_with_justification(self):
        findings = lint(
            """
            def reset(counter):
                counter.force(0)  # reprolint: disable=OBS001 -- sanctioned reset path keeping the shared instrument object
            """,
            self.PATH,
            rules=["OBS001"],
        )
        assert active(findings) == []
        assert len(findings) == 1 and findings[0].suppressed


# ---------------------------------------------------------------------------
# Framework: suppressions, registry, module mapping, JSON
# ---------------------------------------------------------------------------

class TestEncodingRule:
    PATH = "src/repro/distributed/encfixture.py"

    def test_struct_unpack_of_col_payload_flagged(self):
        findings = lint(
            """
            import struct

            def peek_first_cell(fs):
                payload = fs.read_file("/columndb/t/id.col")
                return struct.unpack_from("<q", payload, 0)
            """,
            self.PATH,
            rules=["ENC001"],
        )
        assert len(active(findings)) == 1
        assert "struct-unpacks" in active(findings)[0].message

    def test_seg_directory_unpack_via_path_variable_flagged(self):
        findings = lint(
            """
            def block_directory(fs, table, column):
                path = "/columndb/" + table + "/" + column + ".seg"
                raw = bytearray(fs.read_file(path))
                return list(SEGMENT.iter_unpack(raw))
            """,
            self.PATH,
            rules=["ENC001"],
        )
        assert len(active(findings)) == 1

    def test_nested_read_unpack_flagged(self):
        findings = lint(
            """
            def zone(fs, offset):
                return ZONE.unpack_from(
                    fs._pread("/columndb/t/id.zmap", offset, 33), 0
                )
            """,
            self.PATH,
            rules=["ENC001"],
        )
        assert len(active(findings)) == 1

    def test_private_colcodec_import_flagged(self):
        findings = lint(
            """
            from repro.databases.colcodec import _INT_CELL

            def raw_cells(payload):
                return [cell for (cell,) in _INT_CELL.iter_unpack(payload)]
            """,
            self.PATH,
            rules=["ENC001"],
        )
        assert len(active(findings)) == 1
        assert "_INT_CELL" in active(findings)[0].message

    def test_public_codec_fold_passes(self):
        # The cluster pushdown ships .col bytes through the *public*
        # fold helpers — only direct struct decoding is a violation.
        findings = lint(
            """
            from repro.databases.colcodec import fold_int_cells

            def fold_column(fs, path):
                return fold_int_cells(fs.read_file(path + ".col"))
            """,
            self.PATH,
            rules=["ENC001"],
        )
        assert active(findings) == []

    def test_unpack_of_other_files_passes(self):
        findings = lint(
            """
            import struct

            def journal_header(fs):
                raw = fs.read_file("/journal/head.wal")
                return struct.unpack_from("<QQ", raw, 0)
            """,
            self.PATH,
            rules=["ENC001"],
        )
        assert active(findings) == []

    def test_databases_package_is_exempt(self):
        findings = lint(
            """
            import struct

            def segments(fs, path):
                raw = fs.read_file(path + ".seg")
                return list(struct.iter_unpack("<QQQQBB", raw))
            """,
            "src/repro/databases/colfixture.py",
            rules=["ENC001"],
        )
        assert active(findings) == []


# ---------------------------------------------------------------------------
# TXN001 — transaction scoping
# ---------------------------------------------------------------------------

class TestTransactionRule:
    PATH = "src/repro/core/txnfixture.py"

    def test_unscoped_metadata_mutation_flagged(self):
        findings = lint(
            """
            def sneaky_delete(self, path):
                inode = self.inode(path)
                self.refcount.decref(inode.slot_at(0).block_no)
                inode.remove_slot(0)
            """,
            self.PATH,
            rules=["TXN001"],
        )
        assert len(active(findings)) == 2
        assert "outside a transaction scope" in active(findings)[0].message

    def test_refcount_set_qualified_by_receiver(self):
        findings = lint(
            """
            def tune(self, options, block_no):
                options.set("verbose", True)
                self.refcount.set(block_no, 2)
            """,
            self.PATH,
            rules=["TXN001"],
        )
        # Only the refcount.set is a metadata mutation.
        assert len(active(findings)) == 1
        assert "refcount.set" in active(findings)[0].message

    def test_transactional_decorator_protects(self):
        findings = lint(
            """
            @transactional
            def insert(self, inode, slot):
                self.refcount.incref(slot.block_no)
                inode.insert_slot(0, slot)
            """,
            self.PATH,
            rules=["TXN001"],
        )
        assert active(findings) == []

    def test_require_transaction_guard_protects(self):
        findings = lint(
            """
            def _append_data(self, inode, slot):
                require_transaction(self.device)
                inode.append_slot(slot)
            """,
            self.PATH,
            rules=["TXN001"],
        )
        assert active(findings) == []

    def test_with_transaction_scope_protects(self):
        findings = lint(
            """
            def batch(self, engine, inode, slot):
                with engine.transaction():
                    inode.append_slot(slot)
                with self._txn_scope():
                    self.refcount.incref(slot.block_no)
            """,
            self.PATH,
            rules=["TXN001"],
        )
        assert active(findings) == []

    def test_mutation_after_with_block_still_flagged(self):
        findings = lint(
            """
            def leaky(self, engine, inode, slot):
                with engine.transaction():
                    inode.append_slot(slot)
                inode.remove_slot(0)
            """,
            self.PATH,
            rules=["TXN001"],
        )
        assert len(active(findings)) == 1
        assert "remove_slot" in active(findings)[0].message

    def test_structure_modules_exempt(self):
        findings = lint(
            """
            def persist(self):
                self.refcount.set(1, 2)
            """,
            "src/repro/core/refcount.py",
            rules=["TXN001"],
        )
        assert active(findings) == []

    def test_suppression_with_justification(self):
        findings = lint(
            """
            def rebuild(self, table, block_no, content):
                table.add_record(block_no, content)  # reprolint: disable=TXN001 -- memory-only index rebuild
            """,
            self.PATH,
            rules=["TXN001"],
        )
        assert active(findings) == []
        assert len(findings) == 1 and findings[0].suppressed


# ---------------------------------------------------------------------------
# DET001 — deterministic replicated apply paths
# ---------------------------------------------------------------------------

class TestDeterminismRule:
    PATH = "src/repro/raft/statemachine.py"

    def test_wall_clock_read_flagged(self):
        findings = lint(
            """
            import time

            def _apply_lease(self, path, holder):
                until = time.time() + 30.0
                return {"path": path, "until": until}
            """,
            self.PATH,
            rules=["DET001"],
        )
        assert rule_ids(findings) == ["DET001"]
        assert "wall-clock" in active(findings)[0].message

    def test_datetime_now_flagged(self):
        findings = lint(
            """
            from datetime import datetime

            def _apply_stamp(self):
                return datetime.now().isoformat()
            """,
            self.PATH,
            rules=["DET001"],
        )
        assert rule_ids(findings) == ["DET001"]

    def test_simclock_read_flagged(self):
        findings = lint(
            """
            def _apply_lease(self, path):
                return self.clock.now + 30.0
            """,
            self.PATH,
            rules=["DET001"],
        )
        assert rule_ids(findings) == ["DET001"]
        assert "SimClock" in active(findings)[0].message

    def test_module_level_random_flagged(self):
        findings = lint(
            """
            import random

            def _apply_alloc(self, servers):
                return random.choice(servers)
            """,
            self.PATH,
            rules=["DET001"],
        )
        assert rule_ids(findings) == ["DET001"]
        assert "random" in active(findings)[0].message

    def test_seeded_generator_instance_passes(self):
        findings = lint(
            """
            import random

            class M:
                def __init__(self, seed):
                    self.rng = random.Random(seed)

                def _apply_alloc(self, servers):
                    return self.rng.choice(servers)
            """,
            self.PATH,
            rules=["DET001"],
        )
        # random.Random(seed) is deterministic by construction, and the
        # instance's draws are replayed state, not environment reads.
        assert findings == []

    def test_dict_iteration_flagged(self):
        findings = lint(
            """
            def _apply_place(self, placements):
                out = []
                for name, load in placements.items():
                    out.append((name, load))
                return out
            """,
            self.PATH,
            rules=["DET001"],
        )
        assert rule_ids(findings) == ["DET001"]
        assert "insertion order" in active(findings)[0].message

    def test_dict_comprehension_iteration_flagged(self):
        findings = lint(
            """
            def _apply_digest(self, loads):
                return [name for name in loads.keys()]
            """,
            self.PATH,
            rules=["DET001"],
        )
        assert rule_ids(findings) == ["DET001"]

    def test_sorted_iteration_passes(self):
        findings = lint(
            """
            def _apply_place(self, placements):
                return [placements[name] for name in sorted(placements)]
            """,
            self.PATH,
            rules=["DET001"],
        )
        assert findings == []

    def test_out_of_scope_module_ignored(self):
        findings = lint(
            """
            import time

            def sample(self):
                return time.time()
            """,
            "src/repro/obs/fixture.py",
            rules=["DET001"],
        )
        assert findings == []

    def test_suppression_with_justification(self):
        findings = lint(
            """
            def _apply_scan(self, loads):
                for name in loads.keys():  # reprolint: disable=DET001 -- single-replica debug path, never replayed
                    print(name)
            """,
            self.PATH,
            rules=["DET001"],
        )
        assert active(findings) == []
        assert len(findings) == 1 and findings[0].suppressed

    def test_shipped_statemachine_is_deterministic(self):
        result = run_paths([default_target()], rules=["DET001"])
        assert [f for f in result.findings if not f.suppressed] == []


class TestFramework:
    def test_all_five_rules_registered(self):
        assert {
            "RC001", "IO001", "LAYER001", "LOCK001", "MUT001", "OBS001",
            "TXN001", "ENC001", "DET001",
        } <= set(
            CHECKER_REGISTRY
        )

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            Analyzer(rules=["NOPE42"])

    def test_bare_suppression_reported_by_sup001(self):
        findings = lint(
            """
            def gather(device, block_nos):
                return [device.read_block(no) for no in block_nos]  # reprolint: disable=IO001
            """,
            "src/repro/core/fixture.py",
        )
        assert rule_ids(findings) == ["SUP001"]

    def test_disable_all_covers_every_rule(self):
        findings = lint(
            """
            def gather(device, block_nos):
                return [device.read_block(no) for no in block_nos]  # reprolint: disable=all -- fixture exercising blanket suppression
            """,
            "src/repro/core/fixture.py",
        )
        assert active(findings) == []

    def test_module_name_anchored_at_repro(self):
        assert module_name_for("/x/y/src/repro/core/engine.py") == "repro.core.engine"
        assert module_name_for("src/repro/fs/vfs.py") == "repro.fs.vfs"
        assert module_name_for("/elsewhere/script.py") == "script"

    def test_findings_sorted_and_json_stable(self, tmp_path):
        target = tmp_path / "src" / "repro" / "core"
        target.mkdir(parents=True)
        (target / "b.py").write_text(
            textwrap.dedent(
                """
                def gather(device, block_nos):
                    return [device.read_block(no) for no in block_nos]
                """
            )
        )
        (target / "a.py").write_text(
            textwrap.dedent(
                """
                def scatter(device, pairs):
                    for no, payload in pairs:
                        device.write_block(no, payload)
                """
            )
        )
        first = run_paths([str(tmp_path)])
        second = run_paths([str(tmp_path)])
        assert first.render_json(root=str(tmp_path)) == second.render_json(
            root=str(tmp_path)
        )
        document = json.loads(first.render_json(root=str(tmp_path)))
        assert document["version"] == 1
        assert document["counts"]["active"] == 2
        paths = [finding["path"] for finding in document["findings"]]
        assert paths == sorted(paths)
        assert first.exit_code == 1

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        report = run_paths([str(bad)])
        assert report.exit_code == 2
        assert report.errors


# ---------------------------------------------------------------------------
# The CLI and the shipped tree
# ---------------------------------------------------------------------------

class TestLintCLI:
    def test_shipped_tree_is_clean(self):
        report = run_paths([default_target()])
        assert report.files_scanned > 50
        assert report.active == [], "\n" + report.render_text()
        for finding in report.suppressed:
            assert finding.justification, finding.render()

    def test_cli_lint_exits_zero_on_tree(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_cli_lint_flags_violations(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "core"
        target.mkdir(parents=True)
        (target / "bad.py").write_text(
            "def f(device, nos):\n"
            "    return [device.read_block(no) for no in nos]\n"
        )
        assert main(["lint", str(tmp_path)]) == 1
        assert "IO001" in capsys.readouterr().out

    def test_cli_json_output(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "core"
        target.mkdir(parents=True)
        (target / "bad.py").write_text(
            "def f(device, nos):\n"
            "    return [device.read_block(no) for no in nos]\n"
        )
        assert main(["lint", "--json", str(tmp_path)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["findings"][0]["rule"] == "IO001"

    def test_cli_rule_selection(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "core"
        target.mkdir(parents=True)
        (target / "bad.py").write_text(
            "def f(device, nos):\n"
            "    return [device.read_block(no) for no in nos]\n"
        )
        assert main(["lint", "--rule", "RC001", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["lint", "--rule", "IO001", str(tmp_path)]) == 1

    def test_cli_unknown_rule_is_cli_error(self, capsys):
        assert main(["lint", "--rule", "NOPE42"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_cli_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "RC001", "IO001", "LAYER001", "LOCK001", "MUT001", "OBS001", "SUP001"
        ):
            assert rule in out

    def test_cli_missing_target(self, capsys):
        assert main(["lint", "/no/such/tree"]) == 2


# ---------------------------------------------------------------------------
# Regression tests for the bugs the analyzer surfaced
# ---------------------------------------------------------------------------

class TestSurfacedBugs:
    def test_copy_file_failure_rolls_back_refcounts(self, monkeypatch):
        """RC001 on copy_file: a mid-copy failure used to leak one
        reference per already-cloned slot, pinning the blocks forever."""
        engine = CompressDB(block_size=64, page_capacity=4)
        engine.write_file("/a", bytes(range(256)) * 2)
        source = engine.inode("/a")
        baseline = {
            slot.block_no: engine.refcount.get(slot.block_no)
            for slot in source.iter_slots()
        }
        assert len(baseline) > 2

        original = Inode.append_slot
        calls = []

        def flaky(self, slot):
            calls.append(slot)
            if len(calls) == 3:
                raise RuntimeError("simulated mid-copy failure")
            return original(self, slot)

        monkeypatch.setattr(Inode, "append_slot", flaky)
        with pytest.raises(RuntimeError):
            engine.copy_file("/a", "/b")
        monkeypatch.setattr(Inode, "append_slot", original)

        assert "/b" not in engine.list_files()
        for block_no, count in baseline.items():
            assert engine.refcount.get(block_no) == count
        # The repair pass agrees nothing is dangling.
        report = engine.fsck()
        assert report["refcounts_fixed"] == 0

    def test_cli_reports_engine_errors_instead_of_traceback(self, tmp_path, capsys):
        """LAYER001's taxonomy: engine exceptions reaching the user as raw
        tracebacks.  ``get`` on a missing path must exit 2 with a
        message, not crash."""
        image = str(tmp_path / "store.img")
        assert main(["init", image, "--block-size", "256"]) == 0
        capsys.readouterr()
        assert main(["get", image, "/missing"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert main(["delete", image, "/missing", "0", "4"]) == 2
        assert main(["cp", image, "/missing", "/copy"]) == 2

    def test_nondefault_block_size_image_survives_remounts(self, tmp_path, capsys):
        """Images record their block size: commands used to remount with
        the 1024-byte default, see a 256-byte-block image as unformatted,
        and silently reformat it — destroying all data."""
        image = str(tmp_path / "store.img")
        corpus = tmp_path / "corpus.txt"
        corpus.write_bytes(b"payload that must survive " * 20)
        assert main(["init", image, "--block-size", "256"]) == 0
        assert main(["put", image, str(corpus), "/keep.txt"]) == 0
        # A failing command must not corrupt the image for later ones.
        assert main(["get", image, "/missing"]) == 2
        capsys.readouterr()
        out = str(tmp_path / "back.txt")
        assert main(["get", image, "/keep.txt", "-o", out]) == 0
        assert open(out, "rb").read() == corpus.read_bytes()

    def test_file_device_rejects_mismatched_geometry(self, tmp_path):
        from repro.storage.block_device import BlockDeviceError, FileBlockDevice

        image = str(tmp_path / "odd.img")
        with open(image, "wb") as handle:
            handle.write(b"\x00" * 768)  # three 256-byte blocks
        with pytest.raises(BlockDeviceError, match="geometry"):
            FileBlockDevice(image, block_size=1024)


# ---------------------------------------------------------------------------
# Interprocedural mode — call-graph passes and the concurrency rules
# ---------------------------------------------------------------------------

def lint_program(items, rules=None):
    """Run the analyzer over several synthetic files as one program."""
    analyzer = Analyzer(rules=rules, interprocedural=True)
    return analyzer.run_sources(
        [(path, textwrap.dedent(source)) for path, source in items]
    )


class TestInterproceduralLockRule:
    """LOCK001 across call edges: the per-file pass provably misses the
    violation, the program pass catches it."""

    CALLER = (
        "src/repro/distributed/node.py",
        """
        from repro.distributed.coord import Coordinator

        class Node:
            def __init__(self, coord: Coordinator):
                self.coord = coord
                self.server_lock = object()

            def promote(self):
                with self.server_lock:
                    self.coord.elect()
        """,
    )
    CALLEE = (
        "src/repro/distributed/coord.py",
        """
        class Coordinator:
            def __init__(self):
                self.lock = object()

            def elect(self):
                with self.lock:
                    pass
        """,
    )

    def test_intra_mode_is_silent(self):
        for path, source in (self.CALLER, self.CALLEE):
            assert active(lint(source, path, rules=["LOCK001"])) == []

    def test_unranked_callee_lock_nests_freely(self):
        # Coordinator's canonical lock carries no tier keyword -> unranked,
        # and unranked locks nest freely under ranked ones.
        assert active(lint_program([self.CALLER, self.CALLEE], rules=["LOCK001"])) == []

    def test_inter_mode_catches_cross_call_inversion(self):
        master_callee = (
            "src/repro/distributed/master2.py",
            """
            class Master2:
                def __init__(self):
                    self.master_lock = object()

                def elect(self):
                    with self.master_lock:
                        pass
            """,
        )
        caller = (
            "src/repro/distributed/node.py",
            """
            from repro.distributed.master2 import Master2

            class Node:
                def __init__(self, master: Master2):
                    self.master = master
                    self.server_lock = object()

                def promote(self):
                    with self.server_lock:
                        self.master.elect()
            """,
        )
        findings = active(lint_program([caller, master_callee], rules=["LOCK001"]))
        assert len(findings) == 1
        assert "inversion across calls" in findings[0].message
        assert "Node.promote" in findings[0].message
        assert "Master2.elect" in findings[0].message

    def test_inter_mode_self_deadlock_through_chain(self):
        helper = (
            "src/repro/distributed/helper.py",
            """
            class Box:
                def __init__(self):
                    self.state_lock = object()

                def outer(self):
                    with self.state_lock:
                        self.inner()

                def inner(self):
                    with self.state_lock:
                        pass
            """,
        )
        findings = active(lint_program([helper], rules=["LOCK001"]))
        assert len(findings) == 1
        assert "self-deadlock" in findings[0].message


class TestInterproceduralTxnRule:
    """TXN001 across call edges: calling a require_transaction declarer
    without establishing a scope."""

    DECLARER = (
        "src/repro/core/helpers.py",
        """
        from repro.storage.journal import require_transaction

        def bump(device, table, block_no):
            require_transaction(device)
            table.add_record(block_no, b"")
        """,
    )

    def test_intra_mode_is_silent_on_the_broken_caller(self):
        caller = """
            from repro.core.helpers import bump

            def entry(device, table, block_no):
                bump(device, table, block_no)
            """
        assert active(lint(caller, "src/repro/core/entry.py", rules=["TXN001"])) == []

    def test_inter_mode_catches_the_broken_edge(self):
        caller = (
            "src/repro/core/entry.py",
            """
            from repro.core.helpers import bump

            def entry(device, table, block_no):
                bump(device, table, block_no)
            """,
        )
        findings = active(lint_program([caller, self.DECLARER], rules=["TXN001"]))
        assert len(findings) == 1
        assert "requires an active transaction" in findings[0].message

    def test_transactional_caller_is_accepted(self):
        caller = (
            "src/repro/core/entry.py",
            """
            from repro.core.helpers import bump
            from repro.storage.journal import transactional

            class Engine:
                @transactional
                def entry(self, device, table, block_no):
                    bump(device, table, block_no)
            """,
        )
        assert active(lint_program([caller, self.DECLARER], rules=["TXN001"])) == []

    def test_declaring_caller_passes_obligation_up(self):
        caller = (
            "src/repro/core/entry.py",
            """
            from repro.core.helpers import bump
            from repro.storage.journal import require_transaction

            def entry(device, table, block_no):
                require_transaction(device)
                bump(device, table, block_no)
            """,
        )
        assert active(lint_program([caller, self.DECLARER], rules=["TXN001"])) == []


class TestInterproceduralRefcountRule:
    """RC001 across call edges: a counted return dropped by the caller."""

    PRODUCER = (
        "src/repro/core/producer.py",
        """
        def duplicate(refcount, block_no):
            refcount.incref(block_no)
            return block_no
        """,
    )

    def test_intra_mode_is_silent_on_both_sides(self):
        assert active(lint(self.PRODUCER[1], self.PRODUCER[0], rules=["RC001"])) == []
        caller = """
            from repro.core.producer import duplicate

            def entry(refcount, block_no):
                duplicate(refcount, block_no)
            """
        assert active(lint(caller, "src/repro/core/entry.py", rules=["RC001"])) == []

    def test_inter_mode_catches_dropped_counted_return(self):
        caller = (
            "src/repro/core/entry.py",
            """
            from repro.core.producer import duplicate

            def entry(refcount, block_no):
                duplicate(refcount, block_no)
            """,
        )
        findings = active(lint_program([caller, self.PRODUCER], rules=["RC001"]))
        assert len(findings) == 1
        assert "discards the counted return" in findings[0].message

    def test_inter_mode_tracks_bound_counted_return(self):
        caller = (
            "src/repro/core/entry.py",
            """
            from repro.core.producer import duplicate

            def leak(refcount, slots, block_no):
                dup = duplicate(refcount, block_no)
                slots.validate()
                slots.append_slot(dup)
            """,
        )
        findings = active(lint_program([caller, self.PRODUCER], rules=["RC001"]))
        assert len(findings) == 1
        assert "can raise" in findings[0].message

    def test_inter_mode_accepts_transferred_counted_return(self):
        caller = (
            "src/repro/core/entry.py",
            """
            from repro.core.producer import duplicate

            def entry(refcount, slots, block_no):
                dup = duplicate(refcount, block_no)
                slots.append_slot(dup)
            """,
        )
        assert active(lint_program([caller, self.PRODUCER], rules=["RC001"])) == []


class TestSharedStateRule:
    """CONC001 — shared mutable state outside lock/transaction scope."""

    def test_unscoped_instance_mutation_flagged(self):
        fixture = (
            "src/repro/distributed/reg.py",
            """
            class Registry:
                def __init__(self):
                    self.entries = {}

                def put(self, key, value):
                    self.entries[key] = value
            """,
        )
        findings = active(lint_program([fixture], rules=["CONC001"]))
        assert len(findings) == 1
        assert "self.entries" in findings[0].message

    def test_lock_scoped_mutation_accepted(self):
        fixture = (
            "src/repro/distributed/reg.py",
            """
            class Registry:
                def __init__(self):
                    self.entries = {}
                    self.reg_lock = object()

                def put(self, key, value):
                    with self.reg_lock:
                        self.entries[key] = value
            """,
        )
        assert active(lint_program([fixture], rules=["CONC001"])) == []

    def test_require_held_declarer_accepted(self):
        fixture = (
            "src/repro/distributed/reg.py",
            """
            class Registry:
                def __init__(self):
                    self.entries = {}
                    self.reg_lock = object()

                def put(self, key, value):
                    self.reg_lock.require_held()
                    self.entries[key] = value
            """,
        )
        assert active(lint_program([fixture], rules=["CONC001"])) == []

    def test_constructor_only_helper_accepted(self):
        fixture = (
            "src/repro/distributed/reg.py",
            """
            class Registry:
                def __init__(self):
                    self.entries = {}
                    self._seed()

                def _seed(self):
                    self.entries["root"] = None
            """,
        )
        assert active(lint_program([fixture], rules=["CONC001"])) == []

    def test_module_global_mutation_flagged(self):
        fixture = (
            "src/repro/storage/registry.py",
            """
            _CACHE = {}

            def remember(key, value):
                _CACHE[key] = value
            """,
        )
        findings = active(lint_program([fixture], rules=["CONC001"]))
        assert len(findings) == 1
        assert "_CACHE" in findings[0].message

    def test_suppression_with_justification(self):
        fixture = (
            "src/repro/distributed/reg.py",
            """
            class Registry:
                def __init__(self):
                    self.entries = {}

                def put(self, key, value):
                    self.entries[key] = value  # reprolint: disable=CONC001 -- single-writer by protocol until the MVCC arc lands
            """,
        )
        findings = lint_program([fixture], rules=["CONC001"])
        assert active(findings) == []
        assert len(findings) == 1 and findings[0].suppressed


class TestLockGraphRule:
    """CONC002 — cycles in the interprocedural lock-order graph."""

    CYCLE = (
        "src/repro/distributed/pair.py",
        """
        class Pair:
            def __init__(self):
                self.alpha_lock = object()
                self.beta_lock = object()

            def ab(self):
                with self.alpha_lock:
                    with self.beta_lock:
                        pass

            def ba(self):
                with self.beta_lock:
                    with self.alpha_lock:
                        pass
        """,
    )

    def test_cycle_detected_with_witness_chains(self):
        findings = active(lint_program([self.CYCLE], rules=["CONC002"]))
        assert len(findings) == 1
        assert "lock-order cycle" in findings[0].message
        assert "witness chains" in findings[0].message
        assert "Pair.ab" in findings[0].message
        assert "Pair.ba" in findings[0].message

    def test_consistent_order_has_no_cycle(self):
        fixture = (
            "src/repro/distributed/pair.py",
            """
            class Pair:
                def __init__(self):
                    self.alpha_lock = object()
                    self.beta_lock = object()

                def ab(self):
                    with self.alpha_lock:
                        with self.beta_lock:
                            pass

                def ab_again(self):
                    with self.alpha_lock:
                        self.tail()

                def tail(self):
                    with self.beta_lock:
                        pass
            """,
        )
        assert active(lint_program([fixture], rules=["CONC002"])) == []

    def test_cross_call_cycle_detected(self):
        fixture = (
            "src/repro/distributed/pair.py",
            """
            class Pair:
                def __init__(self):
                    self.alpha_lock = object()
                    self.beta_lock = object()

                def ab(self):
                    with self.alpha_lock:
                        self.grab_beta()

                def grab_beta(self):
                    with self.beta_lock:
                        pass

                def ba(self):
                    with self.beta_lock:
                        self.grab_alpha()

                def grab_alpha(self):
                    with self.alpha_lock:
                        pass
            """,
        )
        findings = active(lint_program([fixture], rules=["CONC002"]))
        assert len(findings) == 1
        assert "via" in findings[0].message

    def test_program_rules_auto_enable_interprocedural(self):
        # Selecting a program-only rule flips the analyzer into
        # interprocedural mode even without the explicit flag.
        findings = Analyzer(rules=["CONC002"]).run_source(
            textwrap.dedent(self.CYCLE[1]), self.CYCLE[0]
        )
        assert len(active(findings)) == 1

    def test_shipped_tree_is_clean_interprocedurally(self):
        report = run_paths([default_target()], interprocedural=True)
        assert report.active == [], "\n" + report.render_text()


class TestInterproceduralCLI:
    def test_cli_interprocedural_clean_on_tree(self, capsys):
        assert main(["lint", "--interprocedural"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_cli_callgraph_dot_stdout(self, capsys):
        assert main(["lint", "--callgraph-dot", "-"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph reprolint {")
        assert "cluster_calls" in out
        assert "cluster_locks" in out

    def test_cli_callgraph_dot_file_is_byte_stable(self, tmp_path, capsys):
        first = tmp_path / "a.dot"
        second = tmp_path / "b.dot"
        assert main(["lint", "--callgraph-dot", str(first)]) == 0
        assert main(["lint", "--callgraph-dot", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()
        text = first.read_text()
        # The protocol's signature static edge must be in the dump.
        assert "distributed.master.Master.lock" in text

    def test_cli_sanitize_smoke_agrees(self, capsys):
        assert main(["lint", "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "static and observed lock order agree" in out

"""Tests for SQL evaluation semantics (filter, group, project, order)."""

import pytest

from repro.databases.sql_executor import EvaluationError, evaluate, run_select
from repro.databases.sql_parser import parse


ROWS = [
    {"id": 1, "idx": 0, "cnt": 10, "dt": "d1"},
    {"id": 1, "idx": 1, "cnt": 20, "dt": "d2"},
    {"id": 2, "idx": 0, "cnt": 5, "dt": "d1"},
    {"id": 2, "idx": 9, "cnt": 50, "dt": None},
    {"id": 3, "idx": 2, "cnt": 7, "dt": "d3"},
]


def select(sql, rows=None):
    return run_select(parse(sql), ROWS if rows is None else rows)


class TestEvaluate:
    def row(self):
        return {"a": 2, "b": 3, "s": "x", "n": None}

    def test_arithmetic(self):
        statement = parse("SELECT a + b * 2 FROM t")
        assert evaluate(statement.items[0].expr, self.row()) == 8

    def test_division_by_zero_is_null(self):
        statement = parse("SELECT a / 0 FROM t")
        assert evaluate(statement.items[0].expr, self.row()) is None

    def test_comparisons(self):
        for sql, expected in [
            ("SELECT a < b FROM t", True),
            ("SELECT a >= b FROM t", False),
            ("SELECT a != b FROM t", True),
            ("SELECT s = 'x' FROM t", True),
        ]:
            statement = parse(sql)
            assert evaluate(statement.items[0].expr, self.row()) is expected

    def test_null_comparisons_are_false(self):
        statement = parse("SELECT n < 5 FROM t")
        assert evaluate(statement.items[0].expr, self.row()) is False

    def test_string_concat_with_plus(self):
        statement = parse("SELECT s + 'y' FROM t")
        assert evaluate(statement.items[0].expr, self.row()) == "xy"

    def test_unknown_column_raises(self):
        statement = parse("SELECT zzz FROM t")
        with pytest.raises(EvaluationError):
            evaluate(statement.items[0].expr, self.row())

    def test_unary_minus_and_not(self):
        statement = parse("SELECT -a FROM t")
        assert evaluate(statement.items[0].expr, self.row()) == -2
        statement = parse("SELECT * FROM t WHERE NOT a = 2")
        assert evaluate(statement.where, self.row()) is False

    def test_aggregate_outside_grouping_raises(self):
        statement = parse("SELECT * FROM t WHERE sum(a) = 1")
        with pytest.raises(EvaluationError):
            evaluate(statement.where, self.row())


class TestProjection:
    def test_star(self):
        assert select("SELECT * FROM t") == ROWS

    def test_column_projection(self):
        result = select("SELECT id FROM t LIMIT 2")
        assert result == [{"id": 1}, {"id": 1}]

    def test_computed_column_with_alias(self):
        result = select("SELECT cnt * 2 double FROM t LIMIT 1")
        assert result == [{"double": 20}]

    def test_unaliased_expression_gets_positional_name(self):
        result = select("SELECT cnt + 1 FROM t LIMIT 1")
        assert result == [{"column0": 11}]


class TestFilter:
    def test_where_filters(self):
        assert len(select("SELECT * FROM t WHERE idx = 0")) == 2

    def test_where_range(self):
        assert len(select("SELECT * FROM t WHERE idx >= 1 AND idx <= 2")) == 2

    def test_where_or(self):
        assert len(select("SELECT * FROM t WHERE id = 1 OR id = 3")) == 3


class TestAggregation:
    def test_global_aggregates(self):
        result = select("SELECT count(*) c, sum(cnt) s, min(cnt) lo, max(cnt) hi FROM t")
        assert result == [{"c": 5, "s": 92, "lo": 5, "hi": 50}]

    def test_avg(self):
        result = select("SELECT avg(cnt) a FROM t WHERE id = 1")
        assert result[0]["a"] == pytest.approx(15.0)

    def test_count_skips_nulls(self):
        result = select("SELECT count(dt) c FROM t")
        assert result == [{"c": 4}]

    def test_count_star_includes_nulls(self):
        assert select("SELECT count(*) c FROM t")[0]["c"] == 5

    def test_group_by(self):
        result = select("SELECT id, sum(cnt) s FROM t GROUP BY id ORDER BY id")
        assert [(row["id"], row["s"]) for row in result] == [(1, 30), (2, 55), (3, 7)]

    def test_aggregate_arithmetic(self):
        """The paper's sum(cnt)/count(dt) pattern."""
        result = select(
            "SELECT id, sum(cnt)/count(dt) r FROM t GROUP BY id ORDER BY id"
        )
        assert result[0]["r"] == pytest.approx(15.0)
        assert result[1]["r"] == pytest.approx(55.0)  # one NULL dt skipped

    def test_aggregate_over_empty_input_yields_one_row(self):
        result = run_select(parse("SELECT count(*) c, sum(cnt) s FROM t"), [])
        assert result == [{"c": 0, "s": None}]

    def test_group_by_empty_input_yields_no_rows(self):
        result = run_select(parse("SELECT id, count(*) c FROM t GROUP BY id"), [])
        assert result == []

    def test_order_by_aggregate_expression(self):
        result = select(
            "SELECT id, sum(cnt)/count(dt) r FROM t GROUP BY id ORDER BY sum(cnt)/count(dt) DESC"
        )
        values = [row["r"] for row in result]
        assert values == sorted(values, reverse=True)

    def test_star_in_grouped_projection_rejected(self):
        with pytest.raises(EvaluationError):
            select("SELECT * FROM t GROUP BY id")


class TestOrderLimit:
    def test_order_by_column(self):
        result = select("SELECT cnt FROM t ORDER BY cnt")
        assert [row["cnt"] for row in result] == [5, 7, 10, 20, 50]

    def test_order_by_desc(self):
        result = select("SELECT cnt FROM t ORDER BY cnt DESC")
        assert result[0]["cnt"] == 50

    def test_order_by_alias(self):
        result = select("SELECT cnt * 2 d FROM t ORDER BY d DESC LIMIT 1")
        assert result == [{"d": 100}]

    def test_multi_key_order(self):
        result = select("SELECT id, idx FROM t ORDER BY id DESC, idx ASC")
        assert [(row["id"], row["idx"]) for row in result] == [
            (3, 2), (2, 0), (2, 9), (1, 0), (1, 1),
        ]

    def test_nulls_sort_first(self):
        result = select("SELECT dt FROM t ORDER BY dt")
        assert result[0]["dt"] is None

    def test_limit_zero(self):
        assert select("SELECT * FROM t LIMIT 0") == []

"""Tests for the analytics pushdown: word_count on compressed files."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CompressDB
from repro.core.operations import _tokenize_block


class TestTokenizeBlock:
    def test_plain_words(self):
        solid, head, middle, tail = _tokenize_block(b" one two three ")
        assert (solid, head, tail) == (False, b"", b"")
        assert middle == Counter([b"one", b"two", b"three"])

    def test_fragments_on_both_ends(self):
        solid, head, middle, tail = _tokenize_block(b"ing middle wo")
        assert (solid, head, tail) == (False, b"ing", b"wo")
        assert middle == Counter([b"middle"])

    def test_solid_block(self):
        solid, head, middle, tail = _tokenize_block(b"unbroken")
        assert solid and head == b"unbroken"
        assert not middle and tail == b""

    def test_whitespace_only(self):
        assert _tokenize_block(b"   \n\t ") == (False, b"", Counter(), b"")

    def test_empty(self):
        assert _tokenize_block(b"") == (False, b"", Counter(), b"")


@pytest.fixture
def loaded_engine():
    engine = CompressDB(block_size=16, page_capacity=3)
    engine.write_file("/f", b"the cat sat on the mat and the cat ran away ")
    return engine


class TestWordCount:
    def test_matches_naive_split(self, loaded_engine):
        expected = Counter(loaded_engine.read_file("/f").split())
        assert loaded_engine.ops.word_count("/f") == expected

    def test_words_spanning_blocks(self):
        engine = CompressDB(block_size=4)
        engine.write_file("/f", b"supercalifragilistic word")
        counts = engine.ops.word_count("/f")
        assert counts == Counter([b"supercalifragilistic", b"word"])

    def test_holes_do_not_join_words(self, loaded_engine):
        loaded_engine.ops.insert("/f", 5, b" X ")
        expected = Counter(loaded_engine.read_file("/f").split())
        assert loaded_engine.ops.word_count("/f") == expected

    def test_empty_file(self):
        engine = CompressDB(block_size=16)
        engine.create("/f")
        assert engine.ops.word_count("/f") == Counter()

    def test_distinct_blocks_tokenised_once(self):
        engine = CompressDB(block_size=16)
        block = b"repeat phrase!! "  # exactly one block
        engine.create("/f")
        for __ in range(50):
            engine.ops.append("/f", block)
        reads_before = engine.device.stats.block_reads
        counts = engine.ops.word_count("/f")
        assert counts[b"repeat"] == 50
        # One device read for the single distinct block.
        assert engine.device.stats.block_reads - reads_before <= 2

    def test_stats_counter(self, loaded_engine):
        loaded_engine.ops.word_count("/f")
        assert loaded_engine.ops.stats.word_count == 1


class TestParallelSearch:
    def test_workers_match_sequential(self, loaded_engine):
        sequential = loaded_engine.ops.search("/f", b"at")
        parallel = loaded_engine.ops.search("/f", b"at", workers=3)
        assert sequential == parallel

    def test_single_worker_is_sequential_path(self, loaded_engine):
        assert loaded_engine.ops.search("/f", b"cat", workers=1) == loaded_engine.ops.search(
            "/f", b"cat"
        )


@given(st.text(alphabet=" abc\n", max_size=200))
@settings(max_examples=100, deadline=None)
def test_word_count_property(text):
    data = text.encode("ascii")
    engine = CompressDB(block_size=8, page_capacity=3)
    engine.write_file("/f", data)
    assert engine.ops.word_count("/f") == Counter(data.split())

"""Tests for the suffix array and the Succinct comparison store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.succinct import (
    SuccinctStore,
    UnsupportedOperation,
    build_lcp,
    build_suffix_array,
    count_occurrences,
    find_occurrences,
    longest_repeated_substring,
    suffix_range,
)


def naive_suffix_array(data: bytes) -> list[int]:
    return sorted(range(len(data)), key=lambda i: data[i:])


def naive_occurrences(data: bytes, pattern: bytes) -> list[int]:
    return [
        i for i in range(len(data)) if data[i : i + len(pattern)] == pattern
    ]


class TestSuffixArray:
    def test_empty(self):
        assert build_suffix_array(b"") == []

    def test_single_byte(self):
        assert build_suffix_array(b"z") == [0]

    def test_banana(self):
        assert build_suffix_array(b"banana") == naive_suffix_array(b"banana")

    def test_all_equal(self):
        assert build_suffix_array(b"aaaa") == [3, 2, 1, 0]

    def test_large_input_uses_doubling(self):
        data = (b"mississippi river " * 40)[:600]
        assert build_suffix_array(data) == naive_suffix_array(data)

    def test_lcp_kasai(self):
        data = b"banana"
        sa = build_suffix_array(data)
        lcp = build_lcp(data, sa)
        # Verify against the definition.
        for i in range(1, len(sa)):
            a, b = data[sa[i - 1] :], data[sa[i] :]
            common = 0
            while common < min(len(a), len(b)) and a[common] == b[common]:
                common += 1
            assert lcp[i] == common
        assert lcp[0] == 0

    def test_suffix_range_bounds(self):
        data = b"abracadabra"
        sa = build_suffix_array(data)
        lo, hi = suffix_range(data, sa, b"abra")
        assert hi - lo == 2

    def test_count_and_find(self):
        data = b"abracadabra"
        sa = build_suffix_array(data)
        assert count_occurrences(data, sa, b"a") == 5
        assert find_occurrences(data, sa, b"abra") == [0, 7]

    def test_longest_repeated_substring(self):
        assert longest_repeated_substring(b"abcabc") == b"abc"
        assert longest_repeated_substring(b"abcd") == b""
        assert longest_repeated_substring(b"") == b""


class TestSuccinctStore:
    @pytest.fixture
    def store(self):
        return SuccinctStore(b"to be or not to be, that is the question", chunk_size=8)

    def test_extract(self, store):
        assert store.extract(0, 5) == b"to be"
        assert store.extract(32, 8) == b"question"

    def test_extract_beyond_end(self, store):
        assert store.extract(store.size - 2, 100) == b"on"
        assert store.extract(store.size, 5) == b""

    def test_extract_validates(self, store):
        with pytest.raises(ValueError):
            store.extract(-1, 2)

    def test_count(self, store):
        assert store.count(b"to be") == 2
        assert store.count(b"zebra") == 0
        assert store.count(b"") == 0

    def test_search(self, store):
        assert store.search(b"to be") == [0, 13]
        assert store.search(b"") == []

    def test_manipulation_unsupported(self, store):
        with pytest.raises(UnsupportedOperation):
            store.insert(0, b"x")
        with pytest.raises(UnsupportedOperation):
            store.delete(0, 1)
        with pytest.raises(UnsupportedOperation):
            store.replace(0, b"x")

    def test_rebuild_is_the_update_path(self, store):
        new = SuccinctStore.rebuild(b"fresh content")
        assert new.extract(0, 5) == b"fresh"

    def test_compression_accounting(self):
        data = b"redundant redundant redundant " * 100
        store = SuccinctStore(data, chunk_size=1024)
        assert store.compressed_bytes() > 0
        assert store.compression_ratio() == pytest.approx(
            store.size / store.compressed_bytes()
        )

    def test_serialize_contains_everything(self, store):
        blob = store.serialize()
        assert len(blob) >= store.compressed_bytes()

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            SuccinctStore(b"x", chunk_size=0)


@given(st.binary(max_size=300))
@settings(max_examples=100, deadline=None)
def test_suffix_array_matches_naive(data):
    assert build_suffix_array(data) == naive_suffix_array(data)


@given(st.binary(min_size=1, max_size=200), st.data())
@settings(max_examples=100, deadline=None)
def test_store_queries_match_naive(data, draw):
    store = SuccinctStore(data, chunk_size=16)
    pattern_start = draw.draw(st.integers(0, len(data) - 1))
    pattern_len = draw.draw(st.integers(1, 5))
    pattern = data[pattern_start : pattern_start + pattern_len]
    assert store.search(pattern) == naive_occurrences(data, pattern)
    assert store.count(pattern) == len(naive_occurrences(data, pattern))
    offset = draw.draw(st.integers(0, len(data)))
    size = draw.draw(st.integers(0, len(data)))
    assert store.extract(offset, size) == data[offset : offset + size]

"""Unit tests for the bounded-depth inode pointer tree."""

import pytest

from repro.storage.inode import Inode, InodeError, Slot


def make_inode(block_size=64, page_capacity=4):
    return Inode(block_size=block_size, page_capacity=page_capacity)


class TestBasics:
    def test_empty_inode(self):
        inode = make_inode()
        assert inode.size == 0
        assert inode.num_slots == 0
        assert inode.depth == 1

    def test_append_slot_grows_size(self):
        inode = make_inode()
        inode.append_slot(Slot(block_no=0, used=64))
        inode.append_slot(Slot(block_no=1, used=10))
        assert inode.size == 74
        assert inode.num_slots == 2

    def test_depth_is_constant_two(self):
        inode = make_inode()
        for i in range(100):
            inode.append_slot(Slot(block_no=i, used=64))
        assert inode.depth == 2  # the paper's bounded-depth organisation

    def test_page_capacity_validation(self):
        with pytest.raises(ValueError):
            Inode(block_size=64, page_capacity=1)

    def test_slot_used_bounds_validated(self):
        inode = make_inode()
        with pytest.raises(InodeError):
            inode.append_slot(Slot(block_no=0, used=65))


class TestPages:
    def test_pages_split_at_capacity(self):
        inode = make_inode(page_capacity=4)
        for i in range(9):
            inode.append_slot(Slot(block_no=i, used=64))
        assert inode.num_pages >= 3
        inode.check_invariants()

    def test_mid_insert_splits_full_page(self):
        inode = make_inode(page_capacity=4)
        for i in range(4):
            inode.append_slot(Slot(block_no=i, used=64))
        for i in range(4, 8):
            inode.insert_slot(2, Slot(block_no=i, used=64))
        assert [slot.block_no for slot in inode.iter_slots()] == [0, 1, 7, 6, 5, 4, 2, 3]
        inode.check_invariants()

    def test_empty_page_removed(self):
        inode = make_inode(page_capacity=2)
        for i in range(4):
            inode.append_slot(Slot(block_no=i, used=64))
        pages_before = inode.num_pages
        inode.remove_slot(0)
        inode.remove_slot(0)
        assert inode.num_pages < pages_before
        inode.check_invariants()


class TestAddressing:
    def test_locate_maps_offsets(self):
        inode = make_inode()
        inode.append_slot(Slot(block_no=0, used=10))
        inode.append_slot(Slot(block_no=1, used=20))
        assert inode.locate(0) == (0, 0)
        assert inode.locate(9) == (0, 9)
        assert inode.locate(10) == (1, 0)
        assert inode.locate(29) == (1, 19)

    def test_locate_end_of_file(self):
        inode = make_inode()
        inode.append_slot(Slot(block_no=0, used=10))
        assert inode.locate(10) == (1, 0)

    def test_locate_out_of_range(self):
        inode = make_inode()
        with pytest.raises(InodeError):
            inode.locate(1)
        with pytest.raises(InodeError):
            inode.locate(-1)

    def test_locate_skips_holes(self):
        # Holes (used < block_size) must be invisible to logical offsets.
        inode = make_inode(block_size=64)
        inode.append_slot(Slot(block_no=0, used=5))
        inode.append_slot(Slot(block_no=1, used=64))
        assert inode.locate(5) == (1, 0)

    def test_offset_of_slot(self):
        inode = make_inode()
        inode.append_slot(Slot(block_no=0, used=7))
        inode.append_slot(Slot(block_no=1, used=13))
        assert inode.offset_of_slot(0) == 0
        assert inode.offset_of_slot(1) == 7
        assert inode.offset_of_slot(2) == 20

    def test_slot_at_out_of_range(self):
        inode = make_inode()
        with pytest.raises(InodeError):
            inode.slot_at(0)

    def test_iter_slots_from_start_index(self):
        inode = make_inode(page_capacity=2)
        for i in range(6):
            inode.append_slot(Slot(block_no=i, used=1))
        assert [slot.block_no for slot in inode.iter_slots(3)] == [3, 4, 5]


class TestMutation:
    def test_remove_slot_returns_it(self):
        inode = make_inode()
        inode.append_slot(Slot(block_no=9, used=3))
        removed = inode.remove_slot(0)
        assert removed.block_no == 9
        assert inode.size == 0

    def test_replace_slot_swaps_accounting(self):
        inode = make_inode()
        inode.append_slot(Slot(block_no=1, used=10))
        old = inode.replace_slot(0, Slot(block_no=2, used=30))
        assert old.block_no == 1
        assert inode.size == 30

    def test_set_used_adjusts_size_and_holes(self):
        inode = make_inode(block_size=64)
        inode.append_slot(Slot(block_no=0, used=64))
        inode.set_used(0, 40)
        assert inode.size == 40
        assert inode.hole_bytes == 24
        assert inode.hole_slots == 1

    def test_set_used_bounds(self):
        inode = make_inode(block_size=64)
        inode.append_slot(Slot(block_no=0, used=64))
        with pytest.raises(InodeError):
            inode.set_used(0, 65)


class TestHoleAccounting:
    def test_holes_counted_on_insert(self):
        inode = make_inode(block_size=64)
        inode.append_slot(Slot(block_no=0, used=64))
        inode.append_slot(Slot(block_no=1, used=10))
        assert inode.hole_slots == 1
        assert inode.hole_bytes == 54

    def test_holes_released_on_remove(self):
        inode = make_inode(block_size=64)
        inode.append_slot(Slot(block_no=0, used=10))
        inode.remove_slot(0)
        assert inode.hole_slots == 0
        assert inode.hole_bytes == 0

    def test_invariant_checker_detects_consistency(self):
        inode = make_inode(page_capacity=3)
        for i in range(10):
            inode.insert_slot(i // 2, Slot(block_no=i, used=1 + i % 3))
        inode.check_invariants()


class TestMetadataCharging:
    def test_mutations_charge_device_metadata(self, device):
        inode = Inode(block_size=device.block_size, page_capacity=4, device=device)
        inode.append_slot(Slot(block_no=0, used=1))
        assert device.stats.metadata_writes >= 1

    def test_reads_are_served_from_memory(self, device):
        inode = Inode(block_size=device.block_size, page_capacity=4, device=device)
        inode.append_slot(Slot(block_no=0, used=1))
        before = device.clock.now
        inode.slot_at(0)
        inode.locate(0)
        list(inode.iter_slots())
        assert device.clock.now == before

"""Equivalence of POSIX-emulated vs pushed-down operations.

The baseline implements the seven operations through read/write/
truncate (Figure 4b); CompressDB pushes them into the engine.  Both
sides must produce the same bytes — CompressDB is just cheaper.
"""

import random

import pytest

from repro.fs import CompressFS, PassthroughFS, PosixOperations, PushdownOperations


@pytest.fixture
def pair():
    base = PassthroughFS(block_size=32)
    comp = CompressFS(block_size=32, page_capacity=3)
    data = b"the quick brown fox jumps over the lazy dog " * 6
    base.write_file("/f", data)
    comp.write_file("/f", data)
    return PosixOperations(base, io_chunk=64), PushdownOperations(comp), base, comp


class TestOperationEquivalence:
    def test_insert(self, pair):
        posix, pushdown, base, comp = pair
        posix.insert("/f", 17, b"PAYLOAD")
        pushdown.insert("/f", 17, b"PAYLOAD")
        assert base.read_file("/f") == comp.read_file("/f")

    def test_delete(self, pair):
        posix, pushdown, base, comp = pair
        posix.delete("/f", 5, 40)
        pushdown.delete("/f", 5, 40)
        assert base.read_file("/f") == comp.read_file("/f")

    def test_replace(self, pair):
        posix, pushdown, base, comp = pair
        posix.replace("/f", 3, b"REPL")
        pushdown.replace("/f", 3, b"REPL")
        assert base.read_file("/f") == comp.read_file("/f")

    def test_append(self, pair):
        posix, pushdown, base, comp = pair
        posix.append("/f", b"tail bytes")
        pushdown.append("/f", b"tail bytes")
        assert base.read_file("/f") == comp.read_file("/f")

    def test_extract(self, pair):
        posix, pushdown, __, __ = pair
        assert posix.extract("/f", 10, 50) == pushdown.extract("/f", 10, 50)

    def test_search(self, pair):
        posix, pushdown, __, __ = pair
        assert posix.search("/f", b"the") == pushdown.search("/f", b"the")

    def test_count(self, pair):
        posix, pushdown, __, __ = pair
        assert posix.count("/f", b"o") == pushdown.count("/f", b"o")

    def test_random_script_equivalence(self, pair):
        posix, pushdown, base, comp = pair
        rng = random.Random(99)
        for step in range(30):
            size = base.stat("/f").size
            op = rng.randrange(4)
            if op == 0:
                offset = rng.randrange(size + 1)
                payload = bytes(rng.randrange(97, 123) for __ in range(rng.randrange(50)))
                posix.insert("/f", offset, payload)
                pushdown.insert("/f", offset, payload)
            elif op == 1 and size:
                offset = rng.randrange(size)
                length = rng.randrange(size - offset + 1)
                posix.delete("/f", offset, length)
                pushdown.delete("/f", offset, length)
            elif op == 2 and size:
                offset = rng.randrange(size)
                payload = bytes(rng.randrange(97, 123) for __ in range(rng.randrange(size - offset + 1)))
                posix.replace("/f", offset, payload)
                pushdown.replace("/f", offset, payload)
            else:
                payload = bytes(rng.randrange(97, 123) for __ in range(rng.randrange(40)))
                posix.append("/f", payload)
                pushdown.append("/f", payload)
            assert base.read_file("/f") == comp.read_file("/f"), f"diverged at step {step}"
        comp.engine.check_invariants()


class TestSearchChunking:
    def test_posix_search_across_chunk_boundaries(self):
        fs = PassthroughFS(block_size=32)
        ops = PosixOperations(fs, io_chunk=16)  # force many chunks
        data = b"x" * 15 + b"NEEDLE" + b"y" * 30 + b"NEEDLE"
        fs.write_file("/f", data)
        assert ops.search("/f", b"NEEDLE") == [15, 51]

    def test_posix_search_overlapping(self):
        fs = PassthroughFS(block_size=8)
        ops = PosixOperations(fs, io_chunk=8)
        fs.write_file("/f", b"aaaaaaaaaa")
        assert ops.search("/f", b"aaa") == list(range(8))


class TestCostAsymmetry:
    def test_pushdown_insert_moves_less_data(self):
        """The reason Figure 10's insert speedups exist."""
        base = PassthroughFS(block_size=64)
        comp = CompressFS(block_size=64)
        payload = bytes(range(256)) * 32  # 8 KiB
        base.write_file("/f", payload)
        comp.write_file("/f", payload)
        base.device.stats.reset()
        comp.device.stats.reset()
        PosixOperations(base).insert("/f", 10, b"tiny")
        PushdownOperations(comp).insert("/f", 10, b"tiny")
        assert (
            comp.device.stats.total_bytes < base.device.stats.total_bytes / 4
        ), "pushdown insert should move far fewer bytes than tail rewrite"

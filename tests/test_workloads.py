"""Tests for dataset generation, query mixes, metrics, and filebench."""

import pytest

from repro.fs import CompressFS, PassthroughFS
from repro.storage.simclock import SimClock
from repro.storage.block_device import MemoryBlockDevice
from repro.workloads import (
    DATASET_SPECS,
    LatencyRecorder,
    QueryMixGenerator,
    ReadOp,
    WriteOp,
    build_fileset,
    generate_dataset,
    generate_redundancy_sweep,
    percentile,
    run_fileserver,
    structured_rows,
    zipf_rank,
)


class TestDatasets:
    def test_all_six_specs_present(self):
        assert set(DATASET_SPECS) == set("ABCDEF")

    def test_generation_is_deterministic(self):
        first = generate_dataset("A", scale=0.05)
        second = generate_dataset("A", scale=0.05)
        assert first.files == second.files

    def test_different_seeds_differ(self):
        a = generate_dataset("A", scale=0.05, seed=1)
        b = generate_dataset("A", scale=0.05, seed=2)
        assert a.files != b.files

    def test_file_count_matches_spec(self):
        dataset = generate_dataset("E", scale=0.2)
        assert dataset.file_count == DATASET_SPECS["E"].file_count

    def test_scale_controls_size(self):
        small = generate_dataset("D", scale=0.1)
        large = generate_dataset("D", scale=0.3)
        assert large.total_bytes > small.total_bytes * 2

    def test_compressdb_ratio_ordering_matches_table2(self):
        """Table 2's ordering: E < A < D < B < C < F (approximately)."""
        ratios = {}
        for name in "ABCDEF":
            dataset = generate_dataset(name, scale=0.25)
            fs = CompressFS(block_size=1024)
            for path, data in dataset.files.items():
                fs.write_file(path, data)
            ratios[name] = fs.compression_ratio()
        assert ratios["E"] < ratios["A"]
        assert ratios["A"] < ratios["B"] < ratios["C"]
        assert ratios["F"] > ratios["B"]

    def test_blocks_are_block_sized(self):
        dataset = generate_dataset("A", block_size=512, scale=0.05)
        for data in dataset.files.values():
            assert len(data) % 512 == 0

    def test_redundancy_sweep_monotone(self):
        ratios = []
        for fraction in (0.0, 0.5, 0.9):
            dataset = generate_redundancy_sweep(fraction, total_bytes=128 * 1024)
            fs = CompressFS(block_size=1024)
            for path, data in dataset.files.items():
                fs.write_file(path, data)
            ratios.append(fs.compression_ratio())
        assert ratios[0] < ratios[1] < ratios[2]

    def test_structured_rows_schema(self):
        rows = structured_rows(10)
        assert len(rows) == 10
        assert set(rows[0]) == {"id", "idx", "cnt", "dt", "body"}


class TestQueryGen:
    @pytest.fixture
    def generator(self):
        return QueryMixGenerator(generate_dataset("E", scale=0.2), universe=50)

    def test_mix_is_roughly_half_writes(self, generator):
        ops = list(generator.operations(2000))
        writes = sum(1 for op in ops if isinstance(op, WriteOp))
        assert 0.45 < writes / len(ops) < 0.55

    def test_keys_within_universe(self, generator):
        for op in generator.operations(500):
            assert 0 <= int(op.key) < 50

    def test_payloads_come_from_corpus(self, generator):
        corpus = generator._corpus
        for op in generator.operations(200):
            if isinstance(op, WriteOp):
                assert op.value.encode("ascii", errors="replace") in corpus

    def test_preload_covers_universe(self, generator):
        keys = {op.key for op in generator.preload_operations(50)}
        assert keys == {str(i) for i in range(50)}

    def test_deterministic(self):
        dataset = generate_dataset("E", scale=0.2)
        first = [
            (type(op).__name__, op.key)
            for op in QueryMixGenerator(dataset, seed=3).operations(50)
        ]
        second = [
            (type(op).__name__, op.key)
            for op in QueryMixGenerator(dataset, seed=3).operations(50)
        ]
        assert first == second

    def test_write_fraction_zero(self):
        generator = QueryMixGenerator(
            generate_dataset("E", scale=0.2), write_fraction=0.0
        )
        assert all(isinstance(op, ReadOp) for op in generator.operations(100))

    def test_zipf_skews_to_small_ranks(self):
        import random

        rng = random.Random(0)
        ranks = [zipf_rank(rng, 1000) for __ in range(4000)]
        assert sum(1 for rank in ranks if rank == 0) > len(ranks) * 0.3


class TestMetrics:
    def test_percentile_nearest_rank(self):
        ordered = [1.0, 2.0, 3.0, 4.0]
        assert percentile(ordered, 0.5) == 2.0
        assert percentile(ordered, 0.9) == 4.0
        assert percentile(ordered, 0.0) == 1.0
        assert percentile([], 0.5) == 0.0

    def test_percentile_validates_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_latency_summary(self):
        recorder = LatencyRecorder()
        for value in (0.1, 0.2, 0.3, 0.4):
            recorder.record(value)
        summary = recorder.summary()
        assert summary.count == 4
        assert summary.mean == pytest.approx(0.25)
        assert summary.maximum == 0.4
        assert summary.p50 == 0.2

    def test_empty_summary(self):
        assert LatencyRecorder().summary().count == 0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_as_millis(self):
        recorder = LatencyRecorder()
        recorder.record(0.5)
        assert recorder.summary().as_millis().mean == pytest.approx(500.0)

    def test_extend(self):
        a = LatencyRecorder()
        a.record(1.0)
        b = LatencyRecorder()
        b.record(2.0)
        a.extend(b)
        assert len(a) == 2


class TestFilebench:
    def _fs(self, compressed):
        clock = SimClock()
        device = MemoryBlockDevice(block_size=512, clock=clock, cache_blocks=64)
        if compressed:
            return CompressFS(device=device), clock
        return PassthroughFS(device=device), clock

    def test_fileset_created(self):
        fs, __ = self._fs(False)
        paths = build_fileset(fs, files=8, file_bytes=2048)
        assert len(paths) == 8
        assert all(fs.exists(path) for path in paths)

    def test_run_reports_metrics(self):
        fs, clock = self._fs(False)
        result = run_fileserver(fs, clock, "baseline", operations=50, files=8, file_bytes=2048)
        assert result.operations == 50
        assert result.simulated_seconds > 0
        assert result.read_mb_per_s > 0
        assert result.write_mb_per_s > 0
        assert 0 <= result.bandwidth_utilisation <= 1

    def test_compressfs_not_slower_on_redundant_fileset(self):
        base_fs, base_clock = self._fs(False)
        comp_fs, comp_clock = self._fs(True)
        base = run_fileserver(base_fs, base_clock, "baseline", operations=120, files=8, file_bytes=4096)
        comp = run_fileserver(comp_fs, comp_clock, "compressdb", operations=120, files=8, file_bytes=4096)
        assert comp.simulated_seconds <= base.simulated_seconds * 1.1

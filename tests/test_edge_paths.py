"""Edge-path tests across modules: corners the main suites skip."""

import pytest

from repro.core.engine import CompressDB, FileNotFoundInEngine
from repro.core.operations import OperationError
from repro.fs import CompressFS, FileNotFound, PassthroughFS
from repro.fs.overlay_lz4 import CompressedOverlayFS
from repro.storage.inode import Inode, Slot


class TestEngineEdges:
    def test_ops_on_missing_file_raise(self, engine):
        with pytest.raises(FileNotFoundInEngine):
            engine.read("/missing", 0, 1)
        with pytest.raises(FileNotFoundInEngine):
            engine.write("/missing", 0, b"x")
        with pytest.raises(FileNotFoundInEngine):
            engine.ops.insert("/missing", 0, b"x")

    def test_write_negative_offset(self, engine):
        engine.create("/f")
        with pytest.raises(ValueError):
            engine.write("/f", -1, b"x")

    def test_truncate_negative(self, engine):
        engine.create("/f")
        with pytest.raises(ValueError):
            engine.truncate("/f", -1)

    def test_extract_zero_from_empty_file(self, engine):
        engine.create("/f")
        assert engine.ops.extract("/f", 0, 0) == b""
        assert engine.ops.extract("/f", 0, 10) == b""

    def test_search_empty_file(self, engine):
        engine.create("/f")
        assert engine.ops.search("/f", b"x") == []
        assert engine.ops.count("/f", b"x") == 0

    def test_replace_empty_data_is_noop(self, engine):
        engine.write_file("/f", b"abc")
        engine.ops.replace("/f", 1, b"")
        assert engine.read_file("/f") == b"abc"

    def test_delete_at_exact_eof_boundary(self, engine):
        engine.write_file("/f", b"x" * engine.block_size * 2)
        engine.ops.delete("/f", engine.block_size, engine.block_size)
        assert engine.file_size("/f") == engine.block_size
        engine.check_invariants()

    def test_insert_at_every_position_of_small_file(self, engine):
        base = b"ABCDEF"
        for position in range(len(base) + 1):
            path = f"/f{position}"
            engine.write_file(path, base)
            engine.ops.insert(path, position, b"++")
            expected = base[:position] + b"++" + base[position:]
            assert engine.read_file(path) == expected
        engine.check_invariants()

    def test_operation_error_is_not_engine_corruption(self, engine):
        engine.write_file("/f", b"data")
        with pytest.raises(OperationError):
            engine.ops.delete("/f", 2, 100)
        assert engine.read_file("/f") == b"data"
        engine.check_invariants()


class TestInodeEdges:
    def test_offset_of_last_slot_boundary(self):
        inode = Inode(block_size=16, page_capacity=2)
        inode.append_slot(Slot(block_no=0, used=5))
        assert inode.offset_of_slot(1) == 5  # one past the last slot

    def test_iter_from_beyond_end_is_empty(self):
        inode = Inode(block_size=16, page_capacity=2)
        inode.append_slot(Slot(block_no=0, used=5))
        assert list(inode.iter_slots(5)) == []


class TestOverlayEdges:
    def test_rename_through_default_path(self):
        overlay = CompressedOverlayFS(PassthroughFS(block_size=64), segment_bytes=128)
        overlay.write_file("/old", b"renamed content " * 20)
        overlay.rename("/old", "/new")
        assert not overlay.exists("/old")
        assert overlay.read_file("/new") == b"renamed content " * 20

    def test_read_missing_raises(self):
        overlay = CompressedOverlayFS(PassthroughFS(block_size=64))
        with pytest.raises(FileNotFound):
            overlay.read_file("/nope")

    def test_zero_length_file(self):
        overlay = CompressedOverlayFS(PassthroughFS(block_size=64))
        overlay.write_file("/empty", b"")
        assert overlay.read_file("/empty") == b""
        assert overlay.stat("/empty").size == 0


class TestFileSystemEdges:
    @pytest.mark.parametrize("cls", [PassthroughFS, CompressFS])
    def test_stat_block_counts(self, cls):
        fs = cls(block_size=64)
        fs.write_file("/f", b"x" * 65)
        assert fs.stat("/f").blocks == 2
        fs.write_file("/g", b"")
        assert fs.stat("/g").blocks == 0

    def test_write_file_shrinks_previous_content(self):
        fs = CompressFS(block_size=64)
        fs.write_file("/f", b"a much longer piece of content than the next")
        fs.write_file("/f", b"tiny")
        assert fs.read_file("/f") == b"tiny"
        fs.engine.check_invariants()

    def test_many_tiny_files(self):
        fs = CompressFS(block_size=64)
        for i in range(200):
            fs.write_file(f"/tiny/{i:03d}", b"%03d" % i)
        assert len(fs.listdir("/tiny/")) == 200
        assert fs.read_file("/tiny/123") == b"123"
        fs.engine.check_invariants()


class TestSuperblockEdges:
    def test_remount_empty_formatted_device(self):
        from repro.storage.block_device import MemoryBlockDevice

        device = MemoryBlockDevice(block_size=128)
        engine = CompressDB.mount(device)
        engine.flush()
        remounted = CompressDB.mount(device)
        assert remounted.list_files() == []

    def test_flush_without_format_only_persists_refcounts(self):
        engine = CompressDB(block_size=128)  # plain engine, not mounted
        engine.write_file("/f", b"x" * 300)
        engine.flush()  # must not raise even though no superblock exists
        assert engine.refcount.partition_block_count >= 1

"""Tests for the SQL inner equi-join."""

import pytest

from repro.databases.minisql import MiniSQL, TableError
from repro.databases.sql_parser import JoinClause, parse
from repro.fs import CompressFS, PassthroughFS


class TestParsing:
    def test_join_clause(self):
        statement = parse(
            "SELECT name, total FROM users JOIN orders ON users.id = orders.user_id"
        )
        assert statement.join == JoinClause("orders", "users.id", "orders.user_id")

    def test_qualified_columns_in_projection(self):
        statement = parse("SELECT users.name FROM users JOIN o ON users.id = o.uid")
        assert statement.items[0].expr.name == "users.name"

    def test_join_with_where_group_order(self):
        statement = parse(
            "SELECT city, sum(total) t FROM users JOIN orders ON users.id = orders.user_id "
            "WHERE total > 5 GROUP BY city ORDER BY t DESC"
        )
        assert statement.join is not None
        assert statement.where is not None
        assert statement.group_by


@pytest.fixture(params=["passthrough", "compress"])
def db(request):
    fs = PassthroughFS(block_size=256) if request.param == "passthrough" else CompressFS(block_size=256)
    database = MiniSQL(fs, page_size=512)
    database.execute("CREATE TABLE users (id INT PRIMARY KEY, name TEXT, city TEXT)")
    database.execute(
        "CREATE TABLE orders (oid INT PRIMARY KEY, user_id INT, total REAL)"
    )
    people = [(1, "ann", "oslo"), (2, "bo", "lima"), (3, "cy", "oslo"), (4, "di", "kyiv")]
    for uid, name, city in people:
        database.execute(f"INSERT INTO users VALUES ({uid}, '{name}', '{city}')")
    orders = [(10, 1, 5.0), (11, 1, 7.5), (12, 2, 2.0), (13, 3, 9.0), (14, 99, 1.0)]
    for oid, uid, total in orders:
        database.execute(f"INSERT INTO orders VALUES ({oid}, {uid}, {total})")
    return database


class TestExecution:
    def test_basic_join(self, db):
        rows = db.execute(
            "SELECT name, total FROM users JOIN orders ON users.id = orders.user_id "
            "ORDER BY total"
        )
        assert rows == [
            {"name": "bo", "total": 2.0},
            {"name": "ann", "total": 5.0},
            {"name": "ann", "total": 7.5},
            {"name": "cy", "total": 9.0},
        ]

    def test_unmatched_rows_excluded(self, db):
        rows = db.execute(
            "SELECT oid FROM orders JOIN users ON orders.user_id = users.id"
        )
        assert {row["oid"] for row in rows} == {10, 11, 12, 13}  # oid 14 dangles

    def test_join_condition_order_irrelevant(self, db):
        forward = db.execute(
            "SELECT oid FROM orders JOIN users ON orders.user_id = users.id ORDER BY oid"
        )
        swapped = db.execute(
            "SELECT oid FROM orders JOIN users ON users.id = orders.user_id ORDER BY oid"
        )
        assert forward == swapped

    def test_qualified_projection(self, db):
        rows = db.execute(
            "SELECT users.id, orders.oid FROM users JOIN orders "
            "ON users.id = orders.user_id ORDER BY orders.oid"
        )
        assert rows[0] == {"id": 1, "oid": 10}

    def test_join_with_where(self, db):
        rows = db.execute(
            "SELECT name FROM users JOIN orders ON users.id = orders.user_id "
            "WHERE total >= 7"
        )
        assert sorted(row["name"] for row in rows) == ["ann", "cy"]

    def test_join_with_group_by(self, db):
        rows = db.execute(
            "SELECT city, sum(total) t FROM users JOIN orders "
            "ON users.id = orders.user_id GROUP BY city ORDER BY t DESC"
        )
        assert rows == [{"city": "oslo", "t": 21.5}, {"city": "lima", "t": 2.0}]

    def test_bad_join_column_rejected(self, db):
        with pytest.raises(TableError):
            db.execute("SELECT * FROM users JOIN orders ON users.nope = orders.user_id")

    def test_join_wrong_tables_rejected(self, db):
        db.execute("CREATE TABLE other (x INT PRIMARY KEY)")
        with pytest.raises(TableError):
            db.execute("SELECT * FROM users JOIN orders ON other.x = orders.user_id")

    def test_many_to_many(self, db):
        db.execute("INSERT INTO orders VALUES (15, 1, 3.0)")
        rows = db.execute(
            "SELECT count(*) c FROM users JOIN orders ON users.id = orders.user_id "
            "WHERE users.id = 1"
        )
        assert rows[0]["c"] == 3

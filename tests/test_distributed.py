"""Tests for the MooseFS-like cluster: master, chunk servers, client."""

import random

import pytest

from repro.databases.colcodec import pack_int_cells
from repro.distributed import (
    ChunkServer,
    ClusterFileExists,
    ClusterFileNotFound,
    Master,
    build_cluster,
)
from repro.storage.simclock import SimClock


class TestMaster:
    @pytest.fixture
    def master(self):
        m = Master(["n0", "n1", "n2"], chunk_capacity=100)
        # Mutating metadata RPCs declare require_held(): the caller owns
        # the master lock (as ClusterClient does around composites).
        with m.lock:
            yield m

    def test_create_and_lookup(self, master):
        master.create("/f")
        assert master.exists("/f")
        assert master.lookup("/f").size == 0

    def test_duplicate_create(self, master):
        master.create("/f")
        with pytest.raises(ClusterFileExists):
            master.create("/f")

    def test_lookup_missing(self, master):
        with pytest.raises(ClusterFileNotFound):
            master.lookup("/missing")

    def test_round_robin_allocation(self, master):
        master.create("/f")
        servers = [master.allocate_chunk("/f").server for __ in range(6)]
        assert servers == ["n0", "n1", "n2", "n0", "n1", "n2"]

    def test_locate_within_chunks(self, master):
        master.create("/f")
        a = master.allocate_chunk("/f")
        b = master.allocate_chunk("/f")
        a.length = 100
        b.length = 50
        index, chunk, within = master.locate("/f", 120)
        assert (index, chunk.chunk_id, within) == (1, b.chunk_id, 20)

    def test_locate_at_end(self, master):
        master.create("/f")
        chunk = master.allocate_chunk("/f")
        chunk.length = 10
        index, located, within = master.locate("/f", 10)
        assert (index, within) == (0, 10)

    def test_chunks_in_range(self, master):
        master.create("/f")
        for __ in range(3):
            master.allocate_chunk("/f").length = 100
        covered = master.chunks_in_range("/f", 50, 200)
        assert [(c[2], c[3]) for c in covered] == [(50, 50), (0, 100), (0, 50)]

    def test_drop_chunk(self, master):
        master.create("/f")
        chunk = master.allocate_chunk("/f")
        master.drop_chunk("/f", chunk.chunk_id)
        assert master.lookup("/f").chunks == []

    def test_requires_servers(self):
        with pytest.raises(ValueError):
            Master([])


class TestChunkServer:
    @pytest.fixture(params=[True, False])
    def server(self, request):
        return ChunkServer("n0", clock=SimClock(), compressed=request.param)

    def test_chunk_lifecycle(self, server):
        server.create_chunk("c1")
        assert server.chunk_ids() == ["c1"]
        server.delete_chunk("c1")
        assert server.chunk_ids() == []

    def test_read_write(self, server):
        server.create_chunk("c1")
        server.write("c1", 0, b"hello chunk")
        assert server.read("c1", 0, 11) == b"hello chunk"
        assert server.chunk_length("c1") == 11

    def test_local_insert_delete(self, server):
        server.create_chunk("c1")
        server.write("c1", 0, b"abcdef")
        server.insert("c1", 3, b"XY")
        assert server.read("c1", 0, 8) == b"abcXYdef"
        server.delete_range("c1", 1, 4)
        assert server.read("c1", 0, 4) == b"adef"

    def test_local_search_count(self, server):
        server.create_chunk("c1")
        server.write("c1", 0, b"ab ab ab")
        assert server.search("c1", b"ab") == [0, 3, 6]
        assert server.count("c1", b"ab") == 3

    def test_append_and_replace(self, server):
        server.create_chunk("c1")
        server.append("c1", b"1234")
        server.replace("c1", 0, b"ab")
        assert server.read("c1", 0, 4) == b"ab34"


class TestCluster:
    def test_write_read_roundtrip(self):
        cluster = build_cluster(nodes=3, chunk_capacity=64)
        data = b"0123456789" * 30
        cluster.client.write_file("/f", data)
        assert cluster.client.read_file("/f") == data
        assert cluster.master.chunk_count() == -(-len(data) // 64)

    def test_chunks_spread_across_servers(self):
        cluster = build_cluster(nodes=3, chunk_capacity=32)
        cluster.client.write_file("/f", b"x" * 200)
        populated = [s for s in cluster.servers.values() if s.chunk_ids()]
        assert len(populated) == 3

    def test_unlink_removes_chunks(self):
        cluster = build_cluster(nodes=2, chunk_capacity=32)
        cluster.client.write_file("/f", b"x" * 100)
        cluster.client.unlink("/f")
        assert all(not s.chunk_ids() for s in cluster.servers.values())

    def test_overwrite_within_file(self):
        cluster = build_cluster(nodes=2, chunk_capacity=32)
        cluster.client.write_file("/f", b"a" * 100)
        cluster.client.write("/f", 30, b"BBBB")
        data = cluster.client.read_file("/f")
        assert data == b"a" * 30 + b"BBBB" + b"a" * 66

    @pytest.mark.parametrize("pushdown", [True, False])
    def test_insert_delete_equivalence(self, pushdown):
        cluster = build_cluster(nodes=3, pushdown=pushdown, chunk_capacity=48)
        reference = bytearray(b"The distributed quick brown fox. " * 20)
        cluster.client.write_file("/f", bytes(reference))
        rng = random.Random(5)
        for __ in range(10):
            if rng.random() < 0.5:
                offset = rng.randrange(len(reference) + 1)
                payload = bytes(rng.randrange(97, 123) for __ in range(rng.randrange(30)))
                cluster.client.insert("/f", offset, payload)
                reference[offset:offset] = payload
            else:
                offset = rng.randrange(len(reference))
                length = rng.randrange(min(60, len(reference) - offset))
                cluster.client.delete("/f", offset, length)
                del reference[offset : offset + length]
        assert cluster.client.read_file("/f") == bytes(reference)

    @pytest.mark.parametrize("pushdown", [True, False])
    def test_search_matches_naive(self, pushdown):
        cluster = build_cluster(nodes=3, pushdown=pushdown, chunk_capacity=40)
        data = b"needle in a haystack, needle again, neeneedle " * 8
        cluster.client.write_file("/f", data)
        expected = []
        index = data.find(b"needle")
        while index != -1:
            expected.append(index)
            index = data.find(b"needle", index + 1)
        assert cluster.client.search("/f", b"needle") == expected
        assert cluster.client.count("/f", b"needle") == len(expected)

    def test_search_finds_cross_chunk_match(self):
        cluster = build_cluster(nodes=2, chunk_capacity=32)
        data = b"a" * 30 + b"SPLIT" + b"b" * 30  # straddles the 32-byte chunk
        cluster.client.write_file("/f", data)
        assert cluster.client.search("/f", b"SPLIT") == [30]

    def test_pushdown_is_cheaper_than_rewrite(self):
        data = b"payload block " * 4000
        slow = build_cluster(nodes=3, compressed=False, pushdown=False)
        fast = build_cluster(nodes=3, compressed=True, pushdown=True)
        for cluster in (slow, fast):
            cluster.client.write_file("/f", data)
            cluster.clock.reset()
            cluster.client.insert("/f", 10, b"tiny")
            cluster.client.delete("/f", 100, 50)
        assert fast.clock.now < slow.clock.now / 5

    def test_compression_ratio_of_redundant_data(self):
        cluster = build_cluster(nodes=2, compressed=True, chunk_capacity=4096)
        block = b"Z" * 1024
        cluster.client.write_file("/f", block * 64)
        assert cluster.compression_ratio() > 10

    def test_stats_registry_tracks_all_nodes(self):
        cluster = build_cluster(nodes=4)
        cluster.client.write_file("/f", b"x" * 5000)
        assert cluster.stats.aggregate().block_writes > 0


class TestAggregatePushdown:
    """count/sum/min/max over packed int64 cells, folded on the servers."""

    @staticmethod
    def _cells(rng, count):
        values = [
            None if rng.random() < 0.1 else rng.randrange(-1000, 1000)
            for __ in range(count)
        ]
        return values, pack_int_cells(values)

    @staticmethod
    def _fold(values):
        live = [value for value in values if value is not None]
        if not live:
            return 0, 0, None, None
        return len(live), sum(live), min(live), max(live)

    @pytest.mark.parametrize("pushdown", [True, False])
    def test_matches_local_fold(self, pushdown):
        # chunk_capacity=100 is not a multiple of 8: every chunk boundary
        # splits a cell, exercising the client-side straddle handling.
        cluster = build_cluster(nodes=3, pushdown=pushdown, chunk_capacity=100)
        values, payload = self._cells(random.Random(11), 200)
        cluster.client.write_file("/cells", payload)
        assert cluster.client.aggregate("/cells") == self._fold(values)

    @pytest.mark.parametrize("pushdown", [True, False])
    def test_subrange(self, pushdown):
        cluster = build_cluster(nodes=2, pushdown=pushdown, chunk_capacity=96)
        values, payload = self._cells(random.Random(12), 150)
        cluster.client.write_file("/cells", payload)
        assert cluster.client.aggregate("/cells", 80, 400) == self._fold(
            values[10:60]
        )

    def test_empty_and_misaligned(self):
        cluster = build_cluster(nodes=1)
        cluster.client.write_file("/cells", b"")
        assert cluster.client.aggregate("/cells") == (0, 0, None, None)
        cluster.client.write_file("/cells", pack_int_cells([1, 2]))
        with pytest.raises(ValueError):
            cluster.client.aggregate("/cells", 4, 8)

    def test_pushdown_ships_fewer_bytes(self):
        values, payload = self._cells(random.Random(13), 4000)
        costs = {}
        for pushdown in (True, False):
            cluster = build_cluster(
                nodes=3, pushdown=pushdown, chunk_capacity=4096
            )
            cluster.client.write_file("/cells", payload)
            rpc_bytes = cluster.client.obs.registry.counter("cluster.rpc.bytes")
            before = rpc_bytes.value
            assert cluster.client.aggregate("/cells") == self._fold(values)
            costs[pushdown] = rpc_bytes.value - before
        # The operation ships instead of the data: a fold result per
        # chunk versus the full 32 000-byte column over the network.
        assert costs[True] * 10 < costs[False]

"""Tests for the benchmark harness (runner + report)."""

import pytest

from repro.bench import (
    VARIANTS,
    format_table,
    improvement_percent,
    load_dataset_into_fs,
    make_database,
    make_fs,
    reduction_percent,
    run_database_workload,
    speedup,
)
from repro.fs.compressfs import CompressFS
from repro.fs.overlay_lz4 import CompressedOverlayFS
from repro.fs.vfs import PassthroughFS
from repro.workloads import generate_dataset


class TestMakeFS:
    def test_all_variants_constructible(self):
        for variant in VARIANTS:
            mounted = make_fs(variant)
            mounted.fs.write_file("/probe", b"hello")
            assert mounted.fs.read_file("/probe") == b"hello"

    def test_variant_types(self):
        assert isinstance(make_fs("baseline").fs, PassthroughFS)
        assert isinstance(make_fs("compressdb").fs, CompressFS)
        assert isinstance(make_fs("baseline-lz4").fs, CompressedOverlayFS)
        overlay = make_fs("compressdb-lz4").fs
        assert isinstance(overlay, CompressedOverlayFS)
        assert isinstance(overlay.backing, CompressFS)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            make_fs("zram")

    def test_io_charges_shared_clock(self):
        mounted = make_fs("compressdb")
        before = mounted.clock.now
        mounted.fs.write_file("/f", b"x" * 8192)
        assert mounted.clock.now > before


class TestMakeDatabase:
    @pytest.mark.parametrize("name", ["sqlite", "leveldb", "mongodb", "clickhouse"])
    def test_databases_ready_for_bench_calls(self, name):
        mounted = make_fs("compressdb")
        db = make_database(name, mounted.fs)
        db.bench_write("1", "value one")
        assert db.bench_read("1") is not None

    def test_unknown_database_rejected(self):
        with pytest.raises(ValueError):
            make_database("oracle", make_fs("baseline").fs)


class TestWorkloadRunner:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_dataset("E", scale=0.2)

    def test_result_fields(self, dataset):
        result = run_database_workload(
            "leveldb", dataset, "baseline", operations=40, universe=20, preload=20
        )
        assert result.operations == 40
        assert result.simulated_seconds > 0
        assert result.ops_per_second > 0
        assert result.latency.count == 40

    def test_compressdb_beats_baseline_on_redundant_data(self, dataset):
        base = run_database_workload(
            "mongodb", dataset, "baseline", operations=80, universe=30, preload=30
        )
        comp = run_database_workload(
            "mongodb", dataset, "compressdb", operations=80, universe=30, preload=30
        )
        assert comp.ops_per_second > base.ops_per_second

    def test_compressdb_stores_fewer_bytes_under_resaves(self, dataset):
        """Re-saving documents (the common document-DB write) appends
        identical aligned records, which only CompressDB dedups."""
        physical = {}
        for variant in ("baseline", "compressdb"):
            mounted = make_fs(variant)
            db = make_database("mongodb", mounted.fs)
            body = dataset.concatenated()[:4096].decode("ascii", errors="replace")
            for round_no in range(3):
                for key in range(10):
                    db.bench_write(str(key), body)
            physical[variant] = mounted.fs.physical_bytes()
        assert physical["compressdb"] < physical["baseline"] / 2

    def test_load_dataset_into_fs(self, dataset):
        mounted = make_fs("compressdb")
        load_dataset_into_fs(mounted.fs, dataset)
        assert mounted.fs.logical_bytes() == dataset.total_bytes


class TestReportHelpers:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1.5], ["long-name", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        table = format_table(["v"], [[0.000123], [123456.0]])
        assert "1.230e-04" in table
        assert "1.235e+05" in table

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_improvement_and_reduction(self):
        assert improvement_percent(100.0, 140.0) == pytest.approx(40.0)
        assert reduction_percent(100.0, 56.0) == pytest.approx(44.0)
        assert improvement_percent(0.0, 5.0) == 0.0
        assert reduction_percent(0.0, 5.0) == 0.0


class TestPrintHelpers:
    def test_print_table_writes_stdout(self, capsys):
        from repro.bench import print_table

        print_table(["a"], [[1]], title="T")
        out = capsys.readouterr().out
        assert "T" in out and "a" in out and "1" in out

    def test_print_series(self, capsys):
        from repro.bench import print_series

        print_series("S", [(1, 2.0)], xlabel="x", ylabel="y")
        out = capsys.readouterr().out
        assert "S" in out and "x" in out

    def test_print_comparison_with_and_without_paper(self, capsys):
        from repro.bench import print_comparison

        print_comparison("t", "m", 1.5, paper=2.0, unit="x")
        print_comparison("t", "m", 1.5)
        out = capsys.readouterr().out
        assert "paper reports" in out

"""Tests for the column store's zone maps (sparse min/max index)."""

import random

import pytest

from repro.databases.minicolumn import MiniColumn, _range_constraints
from repro.databases.sql_parser import parse
from repro.fs import PassthroughFS


def where_of(sql):
    return parse(sql).where


class TestRangeExtraction:
    def test_simple_range(self):
        bounds = _range_constraints(where_of("SELECT * FROM t WHERE a >= 2 AND a <= 8"))
        assert bounds == {"a": (2.0, 8.0)}

    def test_equality_pins_both_bounds(self):
        bounds = _range_constraints(where_of("SELECT * FROM t WHERE a = 5"))
        assert bounds == {"a": (5.0, 5.0)}

    def test_multiple_columns(self):
        bounds = _range_constraints(
            where_of("SELECT * FROM t WHERE a > 1 AND b < 9 AND a < 4")
        )
        assert bounds == {"a": (1.0, 4.0), "b": (None, 9.0)}

    def test_or_is_ignored_not_extracted(self):
        bounds = _range_constraints(where_of("SELECT * FROM t WHERE a > 1 OR b < 2"))
        assert bounds is None

    def test_mixed_and_with_text_conjunct(self):
        bounds = _range_constraints(
            where_of("SELECT * FROM t WHERE a >= 3 AND s = 'x'")
        )
        assert bounds == {"a": (3.0, None)}

    def test_no_where(self):
        assert _range_constraints(None) is None


@pytest.fixture
def db():
    # Plain (fixed-width) blocks: the byte-ratio assertions below target
    # zone-map pruning in isolation; with block encodings on, a full scan
    # of delta-packed ids is already tiny and the ratios lose meaning.
    # Encoded-block pruning equivalence is covered in
    # tests/test_column_encodings.py.
    database = MiniColumn(PassthroughFS(block_size=256), encodings=False)
    database.execute("CREATE TABLE t (id INT, grp INT, score REAL, tag TEXT)")
    # Ten ordered batches of 50 rows each: ids 0..49, 50..99, ...
    for batch in range(10):
        rows = [
            {
                "id": batch * 50 + i,
                "grp": batch,
                "score": float(batch * 50 + i) / 2,
                "tag": f"t{batch}",
            }
            for i in range(50)
        ]
        database.table("t").insert_rows(rows)
    return database


class TestPruning:
    def test_zone_entries_recorded_per_batch(self, db):
        entries = db.table("t")._files["id"].zone_entries()
        assert len(entries) == 10
        assert entries[0][:4] == (0, 50, 0.0, 49.0)
        assert entries[9][:4] == (450, 50, 450.0, 499.0)

    def test_results_identical_with_pruning(self, db):
        narrow = db.execute("SELECT id FROM t WHERE id >= 120 AND id <= 180")
        assert [row["id"] for row in narrow] == list(range(120, 181))

    def test_selective_query_reads_fewer_bytes(self, db):
        fs = db.fs
        fs.device.stats.reset()
        db.execute("SELECT id FROM t WHERE id >= 100 AND id <= 120")
        selective = fs.device.stats.bytes_read
        fs.device.stats.reset()
        db.execute("SELECT id FROM t")
        full = fs.device.stats.bytes_read
        assert selective < full / 3

    def test_updates_widen_zone(self, db):
        db.execute("UPDATE t SET id = 9999 WHERE id = 10")  # batch 0 now spans to 9999
        rows = db.execute("SELECT id FROM t WHERE id >= 9000")
        assert [row["id"] for row in rows] == [9999]

    def test_update_to_lower_value_widens_too(self, db):
        db.execute("UPDATE t SET score = -500.0 WHERE id = 499")
        rows = db.execute("SELECT id FROM t WHERE score <= -100")
        assert [row["id"] for row in rows] == [499]

    def test_text_constraint_does_not_prune(self, db):
        rows = db.execute("SELECT id FROM t WHERE tag = 't3'")
        assert len(rows) == 50

    def test_empty_result_without_reading_data(self, db):
        fs = db.fs
        fs.device.stats.reset()
        rows = db.execute("SELECT id FROM t WHERE id > 100000")
        assert rows == []
        # Only zone maps (a few hundred bytes) were read, no column data.
        assert fs.device.stats.bytes_read < 2048

    def test_zone_maps_survive_reopen(self, db):
        reopened = MiniColumn(db.fs)
        fs = db.fs
        fs.device.stats.reset()
        rows = reopened.execute("SELECT id FROM t WHERE id >= 480")
        assert len(rows) == 20
        selective = fs.device.stats.bytes_read
        fs.device.stats.reset()
        reopened.execute("SELECT id FROM t")
        assert selective < fs.device.stats.bytes_read

    def test_random_equivalence_with_full_scan(self, db):
        rng = random.Random(4)
        for __ in range(20):
            low = rng.randrange(0, 500)
            high = rng.randrange(low, 500)
            pruned = db.execute(f"SELECT id FROM t WHERE id >= {low} AND id <= {high}")
            expected = list(range(low, high + 1))
            assert [row["id"] for row in pruned] == expected


class TestMetadataAggregates:
    def test_min_max_count_from_metadata(self, db):
        fs = db.fs
        fs.device.stats.reset()
        result = db.execute("SELECT min(id) lo, max(id) hi, count(*) c FROM t")
        assert result == [{"lo": 0, "hi": 499, "c": 500}]
        # Only the tiny zone-map files were read, no column data.
        assert fs.device.stats.bytes_read < 4096

    def test_matches_scan_answer(self, db):
        metadata = db.execute("SELECT min(score) lo, max(score) hi FROM t")
        # Force the scan path with a trivially-true WHERE.
        scanned = db.execute("SELECT min(score) lo, max(score) hi FROM t WHERE id >= 0")
        assert metadata == scanned

    def test_where_disables_metadata_path(self, db):
        result = db.execute("SELECT max(id) hi FROM t WHERE id <= 100")
        assert result == [{"hi": 100}]

    def test_deletions_disable_metadata_path(self, db):
        db.execute("DELETE FROM t WHERE id = 499")
        result = db.execute("SELECT max(id) hi, count(*) c FROM t")
        assert result == [{"hi": 498, "c": 499}]

    def test_updates_widen_metadata_answer(self, db):
        db.execute("UPDATE t SET id = 100000 WHERE id = 499")
        assert db.execute("SELECT max(id) hi FROM t") == [{"hi": 100000}]

    def test_text_column_falls_back_to_scan(self, db):
        result = db.execute("SELECT max(tag) m FROM t")
        assert result == [{"m": "t9"}]

    def test_empty_table(self):
        from repro.databases.minicolumn import MiniColumn
        from repro.fs import PassthroughFS

        empty = MiniColumn(PassthroughFS(block_size=256))
        empty.execute("CREATE TABLE e (a INT)")
        assert empty.execute("SELECT count(*) c, min(a) lo FROM e") == [
            {"c": 0, "lo": None}
        ]

    def test_null_only_batch_falls_back(self):
        from repro.databases.minicolumn import MiniColumn
        from repro.fs import PassthroughFS

        db2 = MiniColumn(PassthroughFS(block_size=256))
        db2.execute("CREATE TABLE n (a INT)")
        db2.execute("INSERT INTO n VALUES (NULL), (NULL)")
        db2.execute("INSERT INTO n VALUES (7)")
        assert db2.execute("SELECT min(a) lo, max(a) hi FROM n") == [
            {"lo": 7, "hi": 7}
        ]

    def test_unaliased_naming_matches_executor(self, db):
        metadata = db.execute("SELECT min(id) FROM t")
        scanned = db.execute("SELECT min(id) FROM t WHERE id >= 0")
        assert metadata == scanned == [{"column0": 0}]

"""Unit tests for Algorithm 1 (the real-time compression module)."""

import pytest

from repro.core.compressor import Compressor
from repro.core.hashtable import BlockHashTable
from repro.core.refcount import BlockRefCount
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.inode import Inode


@pytest.fixture
def setup():
    device = MemoryBlockDevice(block_size=16)
    hashtable = BlockHashTable(reader=device.read_block, length=32)
    refcount = BlockRefCount(device)
    compressor = Compressor(device=device, hashtable=hashtable, refcount=refcount)
    return device, hashtable, refcount, compressor


class TestStore:
    def test_fresh_content_allocates(self, setup):
        device, __, refcount, compressor = setup
        slot = compressor.store(b"unique-content!!", 16)
        assert refcount.get(slot.block_no) == 1
        assert device.read_block(slot.block_no) == b"unique-content!!"
        assert compressor.stats.fresh_allocations == 1

    def test_duplicate_content_shares_block(self, setup):
        __, __, refcount, compressor = setup
        first = compressor.store(b"same", 4)
        second = compressor.store(b"same", 4)
        assert first.block_no == second.block_no
        assert refcount.get(first.block_no) == 2
        assert compressor.stats.dedup_hits == 1

    def test_padding_makes_short_content_shareable(self, setup):
        """b'x' and b'x\\x00...' occupy the same padded block."""
        __, __, refcount, compressor = setup
        first = compressor.store(b"x", 1)
        second = compressor.store(b"x" + b"\x00" * 15, 16)
        assert first.block_no == second.block_no
        assert first.used == 1 and second.used == 16

    def test_oversized_content_rejected(self, setup):
        __, __, __, compressor = setup
        with pytest.raises(ValueError):
            compressor.store(b"y" * 17, 17)


class TestCommit:
    def _file_with(self, compressor, contents):
        inode = Inode(block_size=16, page_capacity=4)
        for content in contents:
            inode.append_slot(compressor.store(content, len(content)))
        return inode

    def test_in_place_update_when_sole_reference(self, setup):
        device, hashtable, refcount, compressor = setup
        inode = self._file_with(compressor, [b"old-content"])
        block = inode.slot_at(0).block_no
        compressor.commit(inode, 0, b"new-content", 11)
        assert inode.slot_at(0).block_no == block  # updated in place
        assert device.read_block(block).startswith(b"new-content")
        assert hashtable.find_duplicate(b"new-content" + b"\x00" * 5) == block
        assert compressor.stats.in_place_updates == 1

    def test_copy_on_write_when_shared(self, setup):
        device, __, refcount, compressor = setup
        inode = self._file_with(compressor, [b"shared", b"shared"])
        original = inode.slot_at(0).block_no
        compressor.commit(inode, 0, b"edited", 6)
        assert inode.slot_at(0).block_no != original
        assert refcount.get(original) == 1  # the other slot still points there
        assert compressor.stats.cow_allocations == 1

    def test_redirect_to_existing_duplicate(self, setup):
        device, __, refcount, compressor = setup
        inode = self._file_with(compressor, [b"aaa", b"bbb"])
        block_a = inode.slot_at(0).block_no
        # Rewriting slot 1's content to "aaa" should share slot 0's block.
        compressor.commit(inode, 1, b"aaa", 3)
        assert inode.slot_at(1).block_no == block_a
        assert refcount.get(block_a) == 2

    def test_redirect_frees_orphaned_block(self, setup):
        device, hashtable, refcount, compressor = setup
        inode = self._file_with(compressor, [b"aaa", b"bbb"])
        block_b = inode.slot_at(1).block_no
        compressor.commit(inode, 1, b"aaa", 3)
        assert refcount.get(block_b) == 0
        assert block_b not in hashtable
        assert compressor.stats.blocks_freed == 1

    def test_noop_commit_keeps_block(self, setup):
        device, __, __, compressor = setup
        inode = self._file_with(compressor, [b"stay"])
        block = inode.slot_at(0).block_no
        writes_before = device.stats.block_writes
        compressor.commit(inode, 0, b"stay", 4)
        assert inode.slot_at(0).block_no == block
        assert device.stats.block_writes == writes_before

    def test_commit_can_move_hole_boundary_only(self, setup):
        __, __, __, compressor = setup
        inode = self._file_with(compressor, [b"abcd"])
        compressor.commit(inode, 0, b"abcd", 2)  # same padded content, less used
        assert inode.slot_at(0).used == 2
        assert inode.hole_bytes == 14


class TestRelease:
    def test_release_frees_at_zero(self, setup):
        device, hashtable, refcount, compressor = setup
        slot = compressor.store(b"gone", 4)
        compressor.release(slot)
        assert refcount.get(slot.block_no) == 0
        assert slot.block_no not in hashtable

    def test_release_keeps_shared_block(self, setup):
        __, __, refcount, compressor = setup
        first = compressor.store(b"kept", 4)
        compressor.store(b"kept", 4)
        compressor.release(first)
        assert refcount.get(first.block_no) == 1


class TestRebuild:
    def test_rebuild_restores_lookup(self, setup):
        __, hashtable, __, compressor = setup
        inode = Inode(block_size=16, page_capacity=4)
        inode.append_slot(compressor.store(b"one", 3))
        inode.append_slot(compressor.store(b"two", 3))
        hashtable.clear()
        scanned = compressor.rebuild_hashtable([inode])
        assert scanned == 2
        assert hashtable.find_duplicate(b"one" + b"\x00" * 13) is not None

    def test_rebuild_scans_shared_blocks_once(self, setup):
        __, hashtable, __, compressor = setup
        inode = Inode(block_size=16, page_capacity=4)
        for __i in range(5):
            inode.append_slot(compressor.store(b"dup", 3))
        hashtable.clear()
        assert compressor.rebuild_hashtable([inode]) == 1


class TestDedupDisabled:
    def test_store_always_allocates(self):
        device = MemoryBlockDevice(block_size=16)
        compressor = Compressor(
            device=device,
            hashtable=BlockHashTable(reader=device.read_block, length=8),
            refcount=BlockRefCount(device),
            dedup=False,
        )
        first = compressor.store(b"same", 4)
        second = compressor.store(b"same", 4)
        assert first.block_no != second.block_no
        assert compressor.stats.dedup_hits == 0

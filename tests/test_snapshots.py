"""Tests for repro.snap: CoW snapshots, clones, diff, and replication.

The tentpole invariants: a snapshot is O(metadata) to take, its
time-travel reads return the exact pre-image forever, every mutator is
crash-atomic (see test_failure_injection.py for the crash matrix), the
table survives a remount through the superblock-v4 chain, and the
block-level diff is sound enough to drive incremental replication.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import superblock as sb
from repro.core.engine import CompressDB
from repro.distributed.cluster import build_cluster
from repro.fs import fd as fdmod
from repro.fs.compressfs import CompressFS
from repro.fs.errors import FileNotFound, InvalidArgument, PermissionDenied
from repro.fs.vfs import PassthroughFS
from repro.snap import Extent, SnapshotError, SnapshotExists, SnapshotNotFound
from repro.storage.block_device import MemoryBlockDevice


@pytest.fixture
def engine():
    return CompressDB(block_size=64, page_capacity=4)


def _mounted(block_size=256, journal_blocks=16):
    device = MemoryBlockDevice(block_size=block_size)
    return device, CompressDB.mount(device, journal_blocks=journal_blocks)


class TestLifecycle:
    def test_create_list_get_delete(self, engine):
        engine.write_file("/a", b"x" * 100)
        record = engine.snapshots.create("s1")
        assert record.name == "s1"
        assert "s1" in engine.snapshots
        assert engine.snapshots.names() == ["s1"]
        engine.snapshots.create("s2")
        assert engine.snapshots.names() == ["s1", "s2"]
        engine.snapshots.delete("s1")
        assert engine.snapshots.names() == ["s2"]
        engine.check_invariants()

    def test_create_duplicate_rejected(self, engine):
        engine.snapshots.create("s1")
        with pytest.raises(SnapshotExists):
            engine.snapshots.create("s1")

    def test_missing_snapshot_raises(self, engine):
        with pytest.raises(SnapshotNotFound):
            engine.snapshots.get("ghost")
        with pytest.raises(SnapshotNotFound):
            engine.snapshots.delete("ghost")
        with pytest.raises(SnapshotNotFound):
            engine.snapshots.rollback("ghost")

    @pytest.mark.parametrize("name", ["", "a/b", ".hidden"])
    def test_invalid_names_rejected(self, engine, name):
        with pytest.raises(SnapshotError):
            engine.snapshots.create(name)

    def test_delete_frees_unshared_blocks(self, engine):
        engine.write_file("/a", b"A" * 500)
        engine.snapshots.create("s1")
        engine.unlink("/a")
        held = engine.physical_bytes()
        assert held > 0  # the snapshot pins the data
        engine.snapshots.delete("s1")
        assert engine.physical_bytes() == 0
        engine.check_invariants()

    def test_create_is_metadata_only(self, engine):
        """Snapshot create writes no data blocks — only refcounts move."""
        engine.write_file("/big", bytes(range(256)) * 40)
        before = engine.metrics().counter("storage.device.block_writes")
        physical = engine.physical_bytes()
        engine.snapshots.create("s1")
        assert engine.metrics().counter("storage.device.block_writes") == before
        assert engine.physical_bytes() == physical


class TestTimeTravel:
    def test_read_returns_the_pre_image(self, engine):
        engine.write_file("/f", b"version one " * 20)
        engine.snapshots.create("s1")
        engine.write("/f", 0, b"VERSION TWO!")
        engine.ops.append("/f", b" plus a tail")
        assert engine.snapshots.read("s1", "/f") == b"version one " * 20
        assert engine.snapshots.read("s1", "/f", 8, 4) == b"one "

    def test_survives_truncate_and_unlink(self, engine):
        engine.write_file("/f", b"keep me around" * 10)
        engine.snapshots.create("s1")
        engine.truncate("/f", 3)
        assert engine.snapshots.read("s1", "/f") == b"keep me around" * 10
        engine.unlink("/f")
        assert engine.snapshots.read("s1", "/f") == b"keep me around" * 10
        engine.check_invariants()

    def test_missing_path_in_snapshot(self, engine):
        engine.write_file("/f", b"data")
        engine.snapshots.create("s1")
        engine.write_file("/later", b"created after")
        with pytest.raises(SnapshotNotFound):
            engine.snapshots.read("s1", "/later")


class TestRollback:
    def test_rollback_restores_the_namespace(self, engine):
        engine.write_file("/a", b"alpha " * 30)
        engine.write_file("/b", b"beta " * 30)
        engine.snapshots.create("s1")
        engine.write("/a", 0, b"MUTATED")
        engine.unlink("/b")
        engine.write_file("/c", b"new file")
        engine.snapshots.rollback("s1")
        assert engine.list_files() == ["/a", "/b"]
        assert engine.read_file("/a") == b"alpha " * 30
        assert engine.read_file("/b") == b"beta " * 30
        engine.check_invariants()

    def test_snapshot_survives_its_own_rollback(self, engine):
        engine.write_file("/a", b"original")
        engine.snapshots.create("s1")
        engine.write("/a", 0, b"changed!")
        engine.snapshots.rollback("s1")
        engine.write("/a", 0, b"again!!!")
        engine.snapshots.rollback("s1")
        assert engine.read_file("/a") == b"original"
        engine.check_invariants()

    def test_rollback_discards_pending_appends(self, engine):
        engine.write_file("/a", b"committed")
        engine.snapshots.create("s1")
        engine.ops.append("/a", b" buffered tail")
        engine.snapshots.rollback("s1")
        assert engine.read_file("/a") == b"committed"
        engine.check_invariants()


class TestClone:
    def test_clone_shares_every_block(self, engine):
        engine.write_file("/db/t1", b"table one " * 50)
        engine.write_file("/db/t2", b"table two " * 50)
        engine.snapshots.create("s1")
        physical = engine.physical_bytes()
        created = engine.snapshots.clone("s1", "/restore")
        assert sorted(created) == ["/restore/db/t1", "/restore/db/t2"]
        assert engine.physical_bytes() == physical  # zero data copied
        assert engine.read_file("/restore/db/t1") == b"table one " * 50
        engine.check_invariants()

    def test_clone_diverges_on_write(self, engine):
        engine.write_file("/f", b"shared " * 40)
        engine.snapshots.create("s1")
        engine.snapshots.clone("s1", "/clone")
        engine.write("/clone/f", 0, b"DIVERGED")
        assert engine.read_file("/f") == b"shared " * 40
        assert engine.read_file("/clone/f").startswith(b"DIVERGED")
        assert engine.snapshots.read("s1", "/f") == b"shared " * 40
        engine.check_invariants()

    def test_clone_collision_rolls_back_completely(self, engine):
        engine.write_file("/a", b"AAAA" * 30)
        engine.write_file("/z", b"ZZZZ" * 30)
        engine.snapshots.create("s1")
        # /restore/z exists, so the clone fails after /restore/a was
        # already built: nothing may survive and no refcount may leak.
        engine.write_file("/restore/z", b"in the way")
        files = sorted(engine.list_files())
        with pytest.raises(SnapshotExists):
            engine.snapshots.clone("s1", "/restore")
        assert sorted(engine.list_files()) == files
        engine.check_invariants()

    def test_clone_rejects_root_prefix(self, engine):
        engine.snapshots.create("s1")
        with pytest.raises(SnapshotError):
            engine.snapshots.clone("s1", "/")


class TestFaultInjection:
    """Satellite: a failure halfway through an incref loop must return
    every reference taken so far (same contract as copy_file)."""

    def _failing_incref(self, engine, fail_after):
        real = engine.refcount.incref
        calls = {"n": 0}

        def wrapped(block_no):
            calls["n"] += 1
            if calls["n"] > fail_after:
                raise RuntimeError("injected incref failure")
            return real(block_no)

        return wrapped

    def test_create_failure_leaks_nothing(self, engine, monkeypatch):
        engine.write_file("/a", b"A" * 300)
        engine.write_file("/b", b"B" * 300)
        monkeypatch.setattr(
            engine.refcount, "incref", self._failing_incref(engine, 3)
        )
        with pytest.raises(RuntimeError):
            engine.snapshots.create("s1")
        monkeypatch.undo()
        assert len(engine.snapshots) == 0
        engine.check_invariants()

    def test_rollback_failure_leaks_nothing(self, engine, monkeypatch):
        engine.write_file("/a", b"A" * 300)
        engine.write_file("/b", b"B" * 300)
        engine.snapshots.create("s1")
        engine.write("/a", 0, b"mutated!")
        before = {p: engine.read_file(p) for p in engine.list_files()}
        monkeypatch.setattr(
            engine.refcount, "incref", self._failing_incref(engine, 2)
        )
        with pytest.raises(RuntimeError):
            engine.snapshots.rollback("s1")
        monkeypatch.undo()
        assert {p: engine.read_file(p) for p in engine.list_files()} == before
        engine.check_invariants()

    def test_clone_failure_leaks_nothing(self, engine, monkeypatch):
        engine.write_file("/a", b"A" * 300)
        engine.write_file("/b", b"B" * 300)
        engine.snapshots.create("s1")
        monkeypatch.setattr(
            engine.refcount, "incref", self._failing_incref(engine, 2)
        )
        with pytest.raises(RuntimeError):
            engine.snapshots.clone("s1", "/restore")
        monkeypatch.undo()
        assert not [p for p in engine.list_files() if p.startswith("/restore")]
        engine.check_invariants()

    def test_copy_file_failure_leaks_nothing(self, engine, monkeypatch):
        """Regression guard for the audited reflink-cp path itself."""
        engine.write_file("/src", b"S" * 400)
        monkeypatch.setattr(
            engine.refcount, "incref", self._failing_incref(engine, 2)
        )
        with pytest.raises(RuntimeError):
            engine.copy_file("/src", "/dst")
        monkeypatch.undo()
        assert not engine.exists("/dst")
        engine.check_invariants()


class TestDiff:
    def test_unchanged_file_produces_no_entry(self, engine):
        engine.write_file("/f", b"stable " * 30)
        engine.snapshots.create("s1")
        assert engine.snapshots.diff("s1") == []

    def test_in_place_write_diffs_minimally(self, engine):
        engine.write_file("/f", b"\x01" * 64 * 8)  # 8 full blocks
        engine.snapshots.create("s1")
        engine.write("/f", 64 * 3, b"\x02" * 64)  # rewrite block 3 only
        (entry,) = engine.snapshots.diff("s1")
        assert entry.path == "/f"
        assert entry.change == "modified"
        assert entry.extents == [Extent(64 * 3, 64)]

    def test_added_and_deleted_files(self, engine):
        engine.write_file("/old", b"bye")
        engine.snapshots.create("s1")
        engine.unlink("/old")
        engine.write_file("/new", b"hi" * 50)
        entries = {e.path: e for e in engine.snapshots.diff("s1")}
        assert entries["/old"].change == "deleted"
        assert entries["/new"].change == "added"
        assert entries["/new"].extents == [Extent(0, 100)]

    def test_reverted_content_diffs_empty_via_dedup(self, engine):
        """Dedup re-shares the original block when content reverts, so
        slot equality correctly reports 'unchanged'."""
        original = b"\x07" * 64 * 4
        engine.write_file("/f", original)
        engine.snapshots.create("s1")
        engine.write("/f", 0, b"\x09" * 64)
        engine.write("/f", 0, original[:64])  # revert
        assert engine.snapshots.diff("s1") == []

    def test_snapshot_to_snapshot_diff(self, engine):
        engine.write_file("/f", b"\x01" * 64 * 4)
        engine.snapshots.create("s1")
        engine.write("/f", 64, b"\x02" * 64)
        engine.snapshots.create("s2")
        (entry,) = engine.snapshots.diff("s1", "s2")
        assert entry.extents == [Extent(64, 64)]
        # Symmetric direction exists too (extents in target coordinates).
        (entry,) = engine.snapshots.diff("s2", "s1")
        assert entry.extents == [Extent(64, 64)]

    def test_shrunk_file_reports_size_mismatch(self, engine):
        engine.write_file("/f", b"\x01" * 64 * 4)
        engine.snapshots.create("s1")
        engine.truncate("/f", 64)
        (entry,) = engine.snapshots.diff("s1")
        assert entry.change == "modified"
        assert entry.target_size == 64
        assert entry.extents == []  # receiver truncates, nothing ships

    def test_diff_inodes_positional_tail_shift_is_conservative(self, engine):
        # Distinct content per block, so dedup cannot re-align slots.
        engine.write_file("/f", bytes(range(256)))
        engine.snapshots.create("s1")
        engine.ops.insert("/f", 0, bytes(range(192, 256)))  # shifts every slot
        (entry,) = engine.snapshots.diff("s1")
        covered = sum(e.length for e in entry.extents)
        assert covered == engine.file_size("/f")  # everything marked


class TestPersistence:
    def test_snapshots_survive_remount(self):
        device, engine = _mounted()
        engine.write_file("/f", b"persisted " * 40)
        engine.snapshots.create("s1")
        engine.write("/f", 0, b"CHANGED!!!")
        engine.fsync()
        remounted = CompressDB.mount(device)
        assert remounted.snapshots.names() == ["s1"]
        assert remounted.snapshots.read("s1", "/f") == b"persisted " * 40
        assert remounted.read_file("/f").startswith(b"CHANGED!!!")
        report = remounted.fsck(repair=False)
        assert report["refcounts_fixed"] == 0
        assert report["blocks_reclaimed"] == 0
        remounted.check_invariants()

    def test_snapshot_only_blocks_rejoin_dedup_after_remount(self):
        """blockHashTable is rebuilt from frozen inodes too: writing the
        frozen content again must dedup against the snapshot's block."""
        device, engine = _mounted()
        payload = b"\x0a" * 256 * 3
        engine.write_file("/f", payload)
        engine.snapshots.create("s1")
        engine.unlink("/f")  # the blocks now live only in the snapshot
        engine.fsync()
        remounted = CompressDB.mount(device)
        physical = remounted.physical_bytes()
        remounted.write_file("/again", payload)
        remounted._flush_pending()
        assert remounted.physical_bytes() == physical  # full dedup
        remounted.check_invariants()

    def test_deleting_last_snapshot_clears_the_chain(self):
        device, engine = _mounted()
        engine.write_file("/f", b"x" * 300)
        engine.snapshots.create("s1")
        engine.fsync()
        assert sb.read_layout(device).snap_head != sb.NO_BLOCK
        engine.snapshots.delete("s1")
        engine.fsync()
        assert sb.read_layout(device).snap_head == sb.NO_BLOCK
        remounted = CompressDB.mount(device)
        assert len(remounted.snapshots) == 0
        remounted.check_invariants()

    def test_v3_image_mounts_and_migrates_to_v4(self):
        """A pre-snapshot (v3) superblock reads with no snapshots; the
        first publish rewrites it as v4."""
        device, engine = _mounted()
        engine.write_file("/f", b"legacy data " * 20)
        engine.fsync()
        layout = sb.read_layout(device)
        # Rewrite block 0 in the v3 layout (no snapshot head field).
        device.write_block(
            sb.SUPERBLOCK_NO,
            sb._SUPERBLOCK_V3.pack(
                sb._MAGIC,
                3,
                device.block_size,
                layout.meta_head,
                layout.journal_start,
                layout.journal_len,
            ),
        )
        remounted = CompressDB.mount(device)
        assert remounted.read_file("/f") == b"legacy data " * 20
        assert len(remounted.snapshots) == 0
        remounted.snapshots.create("s1")
        remounted.fsync()
        raw = device.read_block(sb.SUPERBLOCK_NO)
        __, version = sb._SUPERBLOCK_V3.unpack_from(raw, 0)[:2]
        assert version == 4
        again = CompressDB.mount(device)
        assert again.snapshots.names() == ["s1"]
        again.check_invariants()


class TestCompressFSView:
    @pytest.fixture
    def fs(self):
        fs = CompressFS(block_size=64, page_capacity=4)
        fs.write_file("/db/table", b"A" * 200)
        fs.engine.snapshots.create("s1")
        fs.write_file("/db/table", b"B" * 300)
        return fs

    def test_virtual_path_reads_the_frozen_image(self, fs):
        assert fs.read_file("/.snap/s1/db/table") == b"A" * 200
        assert fs.stat("/.snap/s1/db/table").size == 200

    def test_open_with_snapshot_kwarg(self, fs):
        fd = fs.open("/db/table", snapshot="s1")
        assert fs.read(fd, 999) == b"A" * 200
        fs.close(fd)

    def test_snapshot_open_rejects_write_flags(self, fs):
        with pytest.raises(PermissionDenied):
            fs.open("/db/table", fdmod.O_WRONLY, snapshot="s1")
        with pytest.raises(PermissionDenied):
            fs.open("/db/table", fdmod.O_RDWR, snapshot="s1")

    def test_snapshot_paths_reject_mutation(self, fs):
        with pytest.raises(PermissionDenied):
            fs.write_file("/.snap/s1/db/table", b"x")
        with pytest.raises(PermissionDenied):
            fs.truncate("/.snap/s1/db/table", 0)
        with pytest.raises(PermissionDenied):
            fs.unlink("/.snap/s1/db/table")
        with pytest.raises(PermissionDenied):
            fs.open("/.snap/s1/new", fdmod.O_CREAT | fdmod.O_WRONLY)

    def test_listdir_surfaces_snapshots_but_list_hides_them(self, fs):
        assert fs.listdir("/.snap") == ["/.snap/s1/db/table"]
        assert fs.listdir("/.snap/s1") == ["/.snap/s1/db/table"]
        assert "/.snap/s1/db/table" not in fs.listdir("")

    def test_missing_snapshot_or_path_raises_not_found(self, fs):
        with pytest.raises(FileNotFound):
            fs.read_file("/.snap/s1/nope")
        with pytest.raises(FileNotFound):
            fs.read_file("/.snap/ghost/db/table")

    def test_base_filesystem_rejects_snapshot_reads(self):
        fs = PassthroughFS(block_size=64)
        fs.write_file("/x", b"hi")
        with pytest.raises(InvalidArgument):
            fs.open("/x", snapshot="s1")


class TestCLI:
    def test_snap_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        image = str(tmp_path / "store.img")
        source = tmp_path / "data.bin"
        source.write_bytes(b"hello world " * 100)
        assert main(["init", image, "--block-size", "256",
                     "--journal-blocks", "16"]) == 0
        assert main(["put", image, str(source), "/data"]) == 0
        assert main(["snap", "create", image, "monday"]) == 0
        assert main(["replace", image, "/data", "0", "HELLO WORLD!"]) == 0
        assert main(["snap", "list", image]) == 0
        assert "monday" in capsys.readouterr().out
        assert main(["snap", "diff", image, "monday"]) == 0
        assert "modified" in capsys.readouterr().out
        assert main(["snap", "clone", image, "monday", "/restore"]) == 0
        assert main(["get", image, "/restore/data", "-o",
                     str(tmp_path / "out.bin")]) == 0
        assert (tmp_path / "out.bin").read_bytes() == b"hello world " * 100
        # Rollback resets the namespace to the snapshot — the clone,
        # created after it, disappears with the rest of the divergence.
        assert main(["snap", "rollback", image, "monday"]) == 0
        assert main(["snap", "delete", image, "monday"]) == 0
        assert main(["fsck", image]) == 0

    def test_snap_errors_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        image = str(tmp_path / "store.img")
        assert main(["init", image, "--block-size", "256"]) == 0
        assert main(["snap", "delete", image, "ghost"]) == 2
        assert main(["snap", "create", image, "bad/name"]) == 2
        capsys.readouterr()


class TestClusterReplication:
    def _changed_cluster(self):
        cluster = build_cluster(
            nodes=3, replication=2, chunk_capacity=4096, block_size=256
        )
        client = cluster.client
        data = bytes(range(256)) * 64  # 16 KiB across several chunks
        client.write_file("/db", data)
        client.snapshot("epoch0")
        cluster.servers["node0"].fail()
        client.write("/db", 1000, b"X" * 100)  # missed by node0
        cluster.servers["node0"].recover()
        expected = data[:1000] + b"X" * 100 + data[1100:]
        return cluster, client, expected

    def test_incremental_resync_repairs_the_replica(self):
        cluster, client, expected = self._changed_cluster()
        repaired, shipped = client.incremental_resync("node0", "epoch0")
        assert repaired == 1
        assert 0 < shipped < 1024  # two 256-byte blocks, not 16 KiB
        assert client.read_file("/db") == expected
        for chunk in client.master.chunks_on("node0"):
            replicas = {
                cluster.servers[s].read(chunk.chunk_id, 0, chunk.length)
                for s in chunk.servers
            }
            assert len(replicas) == 1

    def test_incremental_ships_fewer_bytes_than_full_copy(self):
        cluster, client, __ = self._changed_cluster()
        rpc_bytes = client.obs.registry.counter("cluster.rpc.bytes")
        before = rpc_bytes.value
        client.incremental_resync("node0", "epoch0")
        incremental_cost = rpc_bytes.value - before

        cluster2, client2, __ = self._changed_cluster()
        rpc_bytes2 = client2.obs.registry.counter("cluster.rpc.bytes")
        before2 = rpc_bytes2.value
        client2.resync("node0")
        full_cost = rpc_bytes2.value - before2
        assert incremental_cost < full_cost / 4

    def test_missing_snapshot_falls_back_to_full_copy(self):
        cluster, client, expected = self._changed_cluster()
        repaired, shipped = client.incremental_resync("node0", "no-such-epoch")
        assert repaired == 1
        assert shipped >= 4096  # whole-chunk copy
        assert client.read_file("/db") == expected

    def test_snapshot_refresh_replaces_the_old_epoch(self):
        cluster, client, __ = self._changed_cluster()
        took = client.snapshot("epoch0")  # refresh under the same name
        assert took  # every online compressed server re-froze
        # After the refresh nothing has changed since the epoch: resync
        # ships zero payload bytes.
        repaired, shipped = client.incremental_resync("node0", "epoch0")
        assert shipped == 0


class TestPropertyPreImage:
    """Hypothesis satellite: random ops, snapshot, more random ops —
    time-travel reads must equal the captured pre-image exactly."""

    @settings(max_examples=30, deadline=None)
    @given(
        before=st.lists(
            st.tuples(st.integers(0, 2), st.binary(min_size=1, max_size=120)),
            min_size=1,
            max_size=6,
        ),
        after=st.lists(
            st.tuples(st.integers(0, 3), st.binary(min_size=1, max_size=120)),
            max_size=6,
        ),
    )
    def test_snapshot_reads_equal_pre_image(self, before, after):
        engine = CompressDB(block_size=32, page_capacity=3)
        engine.create("/f")
        for kind, payload in before:
            self._apply(engine, kind, payload)
        pre_image = engine.read_file("/f")
        engine.snapshots.create("s")
        for kind, payload in after:
            self._apply(engine, kind, payload)
        assert engine.snapshots.read("s", "/f") == pre_image
        engine.check_invariants()

    @staticmethod
    def _apply(engine, kind, payload):
        size = engine.file_size("/f")
        offset = len(payload) % (size + 1)
        if kind == 0:
            engine.ops.append("/f", payload)
        elif kind == 1:
            engine.ops.insert("/f", offset, payload)
        elif kind == 2:
            engine.write("/f", offset, payload)
        else:
            length = min(len(payload), size - offset)
            if length:
                engine.ops.delete("/f", offset, length)

"""End-to-end integration tests across module boundaries.

The central adaptability claim of the paper (Section 4.1): databases
run *unchanged* on CompressDB and observe identical results — only the
storage behaviour (space, I/O) differs.
"""

import random

import pytest

from repro.compression import SnappyCodec
from repro.databases import MiniColumn, MiniLevelDB, MiniMongo, MiniSQL
from repro.fs import CompressFS, PassthroughFS
from repro.succinct import SuccinctStore
from repro.workloads import generate_dataset


def fs_pair(block_size=512):
    return PassthroughFS(block_size=block_size), CompressFS(block_size=block_size)


class TestIdenticalResultsOnBothFS:
    def test_minisql_same_answers(self):
        base_fs, comp_fs = fs_pair()
        results = []
        for fs in (base_fs, comp_fs):
            db = MiniSQL(fs)
            db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            for i in range(100):
                db.execute(f"INSERT INTO t VALUES ({i}, {i * i % 97})")
            db.execute("UPDATE t SET v = 0 WHERE v < 10")
            db.execute("DELETE FROM t WHERE id >= 90")
            results.append(db.execute("SELECT id, v FROM t ORDER BY v DESC, id"))
        assert results[0] == results[1]

    def test_leveldb_same_answers(self):
        base_fs, comp_fs = fs_pair()
        outputs = []
        for fs in (base_fs, comp_fs):
            db = MiniLevelDB(fs, memtable_limit=1024, l0_limit=2)
            rng = random.Random(8)
            for i in range(500):
                key = b"k%03d" % rng.randrange(100)
                if rng.random() < 0.8:
                    db.put(key, b"v%d" % i)
                else:
                    db.delete(key)
            outputs.append(list(db.scan()))
        assert outputs[0] == outputs[1]

    def test_minimongo_same_answers(self):
        base_fs, comp_fs = fs_pair()
        outputs = []
        for fs in (base_fs, comp_fs):
            db = MiniMongo(fs)
            for i in range(60):
                db["c"].insert_one({"_id": f"d{i}", "n": i % 7, "body": "x" * i})
            db["c"].update_one({"_id": "d5"}, {"$set": {"n": 100}})
            db["c"].delete_one({"_id": "d6"})
            outputs.append(sorted(db["c"].find({"n": {"$gte": 3}}), key=lambda d: d["_id"]))
        assert outputs[0] == outputs[1]

    def test_minicolumn_same_answers(self):
        base_fs, comp_fs = fs_pair()
        outputs = []
        for fs in (base_fs, comp_fs):
            db = MiniColumn(fs)
            db.execute("CREATE TABLE t (id INT, idx INT, cnt INT, dt TEXT)")
            values = ", ".join(
                f"({i}, {i % 10}, {i * 3 % 41}, 'd{i % 5}')" for i in range(120)
            )
            db.execute(f"INSERT INTO t VALUES {values}")
            db.execute("UPDATE t SET cnt = 0 WHERE idx = 9")
            outputs.append(
                db.execute(
                    "SELECT id, sum(cnt)/count(dt) avg_cnt FROM t "
                    "WHERE idx >= 0 AND idx <= 8 GROUP BY id ORDER BY avg_cnt DESC"
                )
            )
        assert outputs[0] == outputs[1]


class TestSpaceBenefitsEndToEnd:
    def test_mongo_on_compressdb_saves_space(self):
        """Document re-saves append identical versions; only the
        deduplicating storage layer stores them once."""
        base_fs, comp_fs = fs_pair(block_size=1024)
        dataset = generate_dataset("C", scale=0.1)
        corpus = dataset.concatenated()
        for fs in (base_fs, comp_fs):
            db = MiniMongo(fs)
            for i in range(40):
                start = (i % 37) * 1024
                body = corpus[start : start + 2048].decode("ascii")
                db["docs"].insert_one({"_id": f"d{i}", "body": body})
                # The application saves the document again unchanged —
                # an append-only store writes a second full version.
                db["docs"].replace_one({"_id": f"d{i}"}, {"body": body})
        assert comp_fs.physical_bytes() < base_fs.physical_bytes()

    def test_leveldb_snappy_stacks_with_compressdb(self):
        """Section 6.5: LevelDB's Snappy is orthogonal to CompressDB."""
        comp_fs = CompressFS(block_size=512)
        db = MiniLevelDB(comp_fs, codec=SnappyCodec(), memtable_limit=2048)
        for i in range(300):
            db.put(b"key%04d" % i, b"the same redundant value " * 4)
        db.close()
        assert db.get(b"key0042") == b"the same redundant value " * 4
        assert comp_fs.compression_ratio() > 0.5  # still readable + accounted


class TestSuccinctOnCompressDB:
    def test_succinct_store_layered_on_compressfs(self):
        """Section 6.5: CompressDB+Succinct — the serialised store is a
        file inside a CompressFS mount and stays queryable."""
        data = b"compressed query store " * 200
        store = SuccinctStore(data, chunk_size=512)
        fs = CompressFS(block_size=512)
        fs.write_file("/succinct.bin", store.serialize())
        assert fs.stat("/succinct.bin").size == len(store.serialize())
        # The store still answers queries; CompressDB holds its bytes.
        assert store.count(b"query") == 200
        assert fs.compression_ratio() > 0


class TestDatasetsThroughDatabases:
    @pytest.mark.parametrize("name", ["A", "E"])
    def test_dataset_content_roundtrips_through_mongo(self, name):
        dataset = generate_dataset(name, scale=0.05)
        fs = CompressFS(block_size=1024)
        db = MiniMongo(fs)
        items = list(dataset.files.items())[:20]
        for path, data in items:
            db["files"].insert_one(
                {"_id": path, "body": data.decode("ascii", errors="replace")}
            )
        for path, data in items:
            doc = db["files"].find_one({"_id": path})
            assert doc["body"] == data.decode("ascii", errors="replace")

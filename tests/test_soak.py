"""Soak tests: sustained mixed workloads with end-state verification.

Each test runs a few hundred operations against a full stack
(database → CompressFS → engine → device) and verifies both the
observable results and every internal invariant at the end — the kind
of longer-horizon consistency the short unit tests cannot see.
"""

import random

from repro.databases import MiniColumn, MiniLevelDB, MiniMongo, MiniSQL
from repro.fs import CompressFS
from repro.workloads import generate_dataset


class TestEngineSoak:
    def test_hundreds_of_mixed_ops_on_many_files(self):
        engine_fs = CompressFS(block_size=128, page_capacity=4)
        engine = engine_fs.engine
        rng = random.Random(77)
        references: dict[str, bytearray] = {}
        paths = [f"/f{i}" for i in range(6)]
        for path in paths:
            engine.create(path)
            references[path] = bytearray()
        corpus = generate_dataset("B", scale=0.02).concatenated()
        for step in range(600):
            path = rng.choice(paths)
            reference = references[path]
            op = rng.randrange(5)
            start = rng.randrange(max(1, len(corpus) - 200))
            payload = corpus[start : start + rng.randrange(1, 200)]
            if op == 0:
                engine.ops.append(path, payload)
                reference.extend(payload)
            elif op == 1 and reference:
                offset = rng.randrange(len(reference) + 1)
                engine.ops.insert(path, offset, payload)
                reference[offset:offset] = payload
            elif op == 2 and reference:
                offset = rng.randrange(len(reference))
                length = rng.randrange(len(reference) - offset + 1)
                engine.ops.delete(path, offset, length)
                del reference[offset : offset + length]
            elif op == 3 and reference:
                offset = rng.randrange(len(reference))
                piece = payload[: len(reference) - offset]
                engine.ops.replace(path, offset, piece)
                reference[offset : offset + len(piece)] = piece
            else:
                size = engine.file_size(path)
                if size:
                    offset = rng.randrange(size)
                    assert engine.ops.extract(path, offset, 64) == bytes(
                        reference[offset : offset + 64]
                    )
            if step % 150 == 0:
                engine.check_invariants()
        for path in paths:
            assert engine.read_file(path) == bytes(references[path])
        engine.check_invariants()
        # Sustained unaligned edits leave holes (ratio can drop below 1);
        # defragmentation recovers the density without changing content.
        ratio_before = engine.compression_ratio()
        for path in paths:
            engine.defragment(path)
        assert engine.compression_ratio() > ratio_before
        for path in paths:
            assert engine.read_file(path) == bytes(references[path])
        engine.check_invariants()

    def test_remount_mid_soak(self):
        engine = CompressFS(block_size=128).engine
        engine.create("/f")
        rng = random.Random(3)
        reference = bytearray()
        for round_no in range(6):
            for __ in range(50):
                payload = bytes(rng.randrange(97, 110) for __ in range(rng.randrange(1, 80)))
                offset = rng.randrange(len(reference) + 1)
                engine.ops.insert("/f", offset, payload)
                reference[offset:offset] = payload
            engine.remount()
            assert engine.read_file("/f") == bytes(reference)
            engine.check_invariants()


class TestDatabaseSoak:
    def test_all_four_databases_share_one_mount(self):
        """Four engines on one CompressFS mount, interleaved."""
        fs = CompressFS(block_size=512)
        sql = MiniSQL(fs, directory="/sql")
        kv = MiniLevelDB(fs, directory="/kv", memtable_limit=4096, l0_limit=3)
        docs = MiniMongo(fs, directory="/docs")
        col = MiniColumn(fs, directory="/col")
        sql.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        col.execute("CREATE TABLE t (id INT, v INT)")
        rng = random.Random(11)
        sql_model: dict[int, str] = {}
        kv_model: dict[bytes, bytes] = {}
        doc_count = 0
        col_rows = 0
        for step in range(400):
            which = rng.randrange(4)
            if which == 0:
                key = rng.randrange(50)
                value = f"val-{step}"
                if key in sql_model:
                    sql.execute(f"UPDATE t SET v = '{value}' WHERE id = {key}")
                else:
                    sql.execute(f"INSERT INTO t VALUES ({key}, '{value}')")
                sql_model[key] = value
            elif which == 1:
                key = b"k%03d" % rng.randrange(80)
                value = b"v%05d" % step
                kv.put(key, value)
                kv_model[key] = value
            elif which == 2:
                docs["c"].insert_one({"n": step})
                doc_count += 1
            else:
                col.execute(f"INSERT INTO t VALUES ({col_rows}, {step})")
                col_rows += 1
        # Verify each database's end state.
        for key, value in sql_model.items():
            assert sql.execute(f"SELECT v FROM t WHERE id = {key}") == [{"v": value}]
        kv.close()
        for key, value in kv_model.items():
            assert kv.get(key) == value
        assert docs["c"].count_documents() == doc_count
        assert col.execute("SELECT count(*) c FROM t")[0]["c"] == col_rows
        fs.engine.check_invariants()

"""Unit tests for the block devices."""

import pytest

from repro.storage.block_device import (
    BlockDeviceError,
    FileBlockDevice,
    MemoryBlockDevice,
)
from repro.storage.simclock import HDD_5400RPM, SimClock


class TestAllocation:
    def test_allocate_returns_sequential_numbers(self, device):
        assert [device.allocate() for __ in range(3)] == [0, 1, 2]

    def test_free_then_allocate_reuses_block(self, device):
        first = device.allocate()
        device.free(first)
        assert device.allocate() == first

    def test_allocated_blocks_counts_live_blocks(self, device):
        blocks = [device.allocate() for __ in range(4)]
        device.free(blocks[1])
        assert device.allocated_blocks == 3
        assert device.total_blocks == 4

    def test_double_free_raises(self, device):
        block = device.allocate()
        device.free(block)
        with pytest.raises(BlockDeviceError):
            device.free(block)

    def test_free_unallocated_block_raises(self, device):
        with pytest.raises(BlockDeviceError):
            device.free(7)


class TestReadWrite:
    def test_fresh_block_reads_zeroes(self, device):
        block = device.allocate()
        assert device.read_block(block) == b"\x00" * device.block_size

    def test_write_then_read_roundtrip(self, device):
        block = device.allocate()
        payload = b"x" * device.block_size
        device.write_block(block, payload)
        assert device.read_block(block) == payload

    def test_short_write_is_zero_padded(self, device):
        block = device.allocate()
        device.write_block(block, b"abc")
        data = device.read_block(block)
        assert data.startswith(b"abc")
        assert data[3:] == b"\x00" * (device.block_size - 3)

    def test_oversized_write_raises(self, device):
        block = device.allocate()
        with pytest.raises(BlockDeviceError):
            device.write_block(block, b"y" * (device.block_size + 1))

    def test_read_out_of_range_raises(self, device):
        with pytest.raises(BlockDeviceError):
            device.read_block(0)

    def test_freed_block_is_zeroed_on_reuse(self, device):
        block = device.allocate()
        device.write_block(block, b"secret")
        device.free(block)
        again = device.allocate()
        assert again == block
        assert device.read_block(again) == b"\x00" * device.block_size


class TestStatsAndClock:
    def test_reads_and_writes_are_counted(self, device):
        block = device.allocate()
        device.write_block(block, b"a")
        device.read_block(block)
        assert device.stats.block_writes == 1
        assert device.stats.block_reads == 1
        assert device.stats.bytes_written == device.block_size
        assert device.stats.bytes_read == device.block_size

    def test_io_charges_simulated_time(self):
        clock = SimClock()
        device = MemoryBlockDevice(block_size=1024, profile=HDD_5400RPM, clock=clock)
        block = device.allocate()
        before = clock.now
        device.write_block(block, b"x")
        assert clock.now > before

    def test_metadata_access_charges_time(self, device, clock):
        before = clock.now
        device.charge_metadata_access(write=True)
        assert clock.now > before
        assert device.stats.metadata_writes == 1


class TestCache:
    def test_cache_disabled_by_default(self, device):
        block = device.allocate()
        device.write_block(block, b"a")
        device.read_block(block)
        device.read_block(block)
        assert device.cache_hits == 0
        assert device.stats.block_reads == 2

    def test_cached_read_is_free(self):
        device = MemoryBlockDevice(block_size=64, cache_blocks=4)
        block = device.allocate()
        device.write_block(block, b"a")
        reads_before = device.stats.block_reads
        device.read_block(block)  # hits the write-through entry
        assert device.cache_hits == 1
        assert device.stats.block_reads == reads_before

    def test_cache_eviction_is_lru(self):
        device = MemoryBlockDevice(block_size=64, cache_blocks=2)
        blocks = [device.allocate() for __ in range(3)]
        for block in blocks:
            device.write_block(block, b"%d" % block)
        # blocks[0] was evicted by the third write.
        device.read_block(blocks[0])
        assert device.cache_misses == 1

    def test_freed_block_leaves_cache(self):
        device = MemoryBlockDevice(block_size=64, cache_blocks=4)
        block = device.allocate()
        device.write_block(block, b"a")
        device.free(block)
        again = device.allocate()
        assert device.read_block(again) == b"\x00" * 64


class TestFileBlockDevice:
    def test_roundtrip_through_backing_file(self, tmp_path):
        path = str(tmp_path / "device.img")
        with FileBlockDevice(path, block_size=32) as device:
            block = device.allocate()
            device.write_block(block, b"hello")
            assert device.read_block(block).startswith(b"hello")

    def test_state_survives_reopen(self, tmp_path):
        path = str(tmp_path / "device.img")
        with FileBlockDevice(path, block_size=32) as device:
            block = device.allocate()
            device.write_block(block, b"persisted")
        with FileBlockDevice(path, block_size=32) as device:
            assert device.total_blocks == 1
            assert device.read_block(block).startswith(b"persisted")

    def test_erase_zeroes_backing_storage(self, tmp_path):
        path = str(tmp_path / "device.img")
        with FileBlockDevice(path, block_size=32) as device:
            block = device.allocate()
            device.write_block(block, b"junk")
            device.free(block)
            again = device.allocate()
            assert device.read_block(again) == b"\x00" * 32


class TestFreeListRebuild:
    def test_rebuild_marks_unreferenced_blocks_free(self, device):
        blocks = [device.allocate() for __ in range(5)]
        free_count = device.rebuild_free_list({blocks[0], blocks[3]})
        assert free_count == 3
        assert device.allocated_blocks == 2
        # Reuse comes from the reconstructed free list, no growth.
        device.allocate()
        assert device.total_blocks == 5

    def test_rebuild_with_everything_used(self, device):
        blocks = {device.allocate() for __ in range(3)}
        assert device.rebuild_free_list(blocks) == 0

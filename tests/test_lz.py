"""Tests for the LZ4- and Snappy-format codecs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import (
    CorruptStream,
    IdentityCodec,
    LZ4Codec,
    SnappyCodec,
    lz4_compress,
    lz4_decompress,
    snappy_compress,
    snappy_decompress,
)


CASES = [
    b"",
    b"a",
    b"abcd",
    b"aaaaaaaaaaaaaaaaaaaaaaaa",
    b"the quick brown fox " * 50,
    bytes(range(256)),
    bytes(range(256)) * 20,
    b"\x00" * 1000,
    b"ab" * 3 + b"unique tail",
]


@pytest.mark.parametrize("data", CASES)
def test_lz4_roundtrip(data):
    assert lz4_decompress(lz4_compress(data)) == data


@pytest.mark.parametrize("data", CASES)
def test_snappy_roundtrip(data):
    assert snappy_decompress(snappy_compress(data)) == data


class TestRatios:
    def test_redundant_text_compresses(self):
        data = b"repetition pays off. " * 500
        assert len(lz4_compress(data)) < len(data) / 5
        assert len(snappy_compress(data)) < len(data) / 3

    def test_random_bytes_do_not_explode(self):
        import random

        rng = random.Random(0)
        data = bytes(rng.randrange(256) for __ in range(4096))
        assert len(lz4_compress(data)) < len(data) * 1.1
        assert len(snappy_compress(data)) < len(data) * 1.1

    def test_self_overlapping_match(self):
        """RLE-style data exercises the overlapping-copy decode path."""
        data = b"x" * 10000
        compressed = lz4_compress(data)
        assert len(compressed) < 100
        assert lz4_decompress(compressed) == data


class TestCorruption:
    def test_lz4_truncated_literals(self):
        compressed = lz4_compress(b"hello world, hello world, hello")
        with pytest.raises(CorruptStream):
            lz4_decompress(compressed[:3])

    def test_lz4_bad_offset(self):
        # token: 0 literals + match of 4 at offset 0 (invalid).
        with pytest.raises(CorruptStream):
            lz4_decompress(bytes([0x00, 0x00, 0x00]))

    def test_snappy_length_mismatch(self):
        compressed = bytearray(snappy_compress(b"abcdef"))
        compressed[0] ^= 0x7F  # clobber the uvarint length header
        with pytest.raises(CorruptStream):
            snappy_decompress(bytes(compressed))

    def test_snappy_truncated(self):
        compressed = snappy_compress(b"hello hello hello hello")
        with pytest.raises(CorruptStream):
            snappy_decompress(compressed[: len(compressed) // 2])


class TestCodecObjects:
    def test_identity_codec(self):
        codec = IdentityCodec()
        assert codec.compress(b"x") == b"x"
        assert codec.decompress(b"x") == b"x"
        assert codec.ratio(b"") == 1.0

    def test_lz4_codec_ratio(self):
        codec = LZ4Codec()
        assert codec.ratio(b"abab" * 100) > 2.0

    def test_codec_names(self):
        assert LZ4Codec().name == "lz4"
        assert SnappyCodec().name == "snappy"
        assert IdentityCodec().name == "identity"


@given(st.binary(max_size=2000))
@settings(max_examples=150, deadline=None)
def test_lz4_roundtrip_property(data):
    assert lz4_decompress(lz4_compress(data)) == data


@given(st.binary(max_size=2000))
@settings(max_examples=150, deadline=None)
def test_snappy_roundtrip_property(data):
    assert snappy_decompress(snappy_compress(data)) == data


@given(st.lists(st.sampled_from([b"abc", b"defg", b"\x00\x01"]), max_size=300))
@settings(max_examples=80, deadline=None)
def test_lz4_roundtrip_repetitive_property(pieces):
    data = b"".join(pieces)
    assert lz4_decompress(lz4_compress(data)) == data

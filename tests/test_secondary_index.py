"""Tests for MiniSQL secondary indexes (CREATE INDEX / DROP INDEX)."""

import pytest

from repro.databases.minisql import MiniSQL, SecondaryIndex, TableError
from repro.fs import CompressFS, PassthroughFS


@pytest.fixture
def db():
    database = MiniSQL(PassthroughFS(block_size=256), page_size=512)
    database.execute("CREATE TABLE users (id INT PRIMARY KEY, city TEXT, age INT)")
    cities = ["oslo", "lima", "kyiv", "oslo", "lima"]
    for i in range(100):
        database.execute(
            f"INSERT INTO users VALUES ({i}, '{cities[i % 5]}', {i % 30})"
        )
    return database


class TestIndexObject:
    def test_add_and_lookup(self):
        fs = PassthroughFS(block_size=256)
        index = SecondaryIndex(fs, "/i.idx", "i", "t", "c")
        index.add("x", 1)
        index.add("x", 2)
        index.add("y", 3)
        assert index.lookup("x") == [1, 2]
        assert index.lookup("missing") == []

    def test_remove(self):
        fs = PassthroughFS(block_size=256)
        index = SecondaryIndex(fs, "/i.idx", "i", "t", "c")
        index.add("x", 1)
        index.remove("x", 1)
        assert index.lookup("x") == []
        index.remove("x", 99)  # removing an absent entry is a no-op

    def test_nulls_not_indexed(self):
        fs = PassthroughFS(block_size=256)
        index = SecondaryIndex(fs, "/i.idx", "i", "t", "c")
        index.add(None, 1)
        assert index.entry_count == 0

    def test_range(self):
        fs = PassthroughFS(block_size=256)
        index = SecondaryIndex(fs, "/i.idx", "i", "t", "c")
        for value, key in [(5, "a"), (10, "b"), (15, "c"), (10, "d")]:
            index.add(value, key)
        assert index.range(8, 12) == ["b", "d"]
        assert index.range(low=11) == ["c"]
        assert index.range(high=5) == ["a"]

    def test_log_replay(self):
        fs = PassthroughFS(block_size=256)
        index = SecondaryIndex(fs, "/i.idx", "i", "t", "c")
        index.add("x", 1)
        index.add("x", 2)
        index.remove("x", 1)
        replayed = SecondaryIndex(fs, "/i.idx", "i", "t", "c")
        assert replayed.lookup("x") == [2]

    def test_compact_shrinks_log(self):
        fs = PassthroughFS(block_size=256)
        index = SecondaryIndex(fs, "/i.idx", "i", "t", "c")
        for i in range(50):
            index.add("churn", i)
            index.remove("churn", i)
        size_before = fs.stat("/i.idx").size
        index.compact()
        assert fs.stat("/i.idx").size < size_before
        assert SecondaryIndex(fs, "/i.idx", "i", "t", "c").entry_count == 0


class TestSQLIntegration:
    def test_create_index_backfills(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        assert db._indexes["idx_city"].entry_count == 100

    def test_duplicate_index_rejected(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        with pytest.raises(TableError):
            db.execute("CREATE INDEX idx_city ON users (age)")

    def test_unknown_column_rejected(self, db):
        with pytest.raises(TableError):
            db.execute("CREATE INDEX bad ON users (nope)")

    def test_drop_index(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        db.execute("DROP INDEX idx_city")
        assert "idx_city" not in db._indexes
        with pytest.raises(TableError):
            db.execute("DROP INDEX idx_city")

    def test_indexed_equality_results_match_scan(self, db):
        expected = db.execute("SELECT id FROM users WHERE city = 'oslo'")
        db.execute("CREATE INDEX idx_city ON users (city)")
        assert db.execute("SELECT id FROM users WHERE city = 'oslo'") == expected

    def test_indexed_lookup_reads_fewer_blocks(self, db):
        db.execute("CREATE INDEX idx_age ON users (age)")
        db.fs.device.stats.reset()
        db.execute("SELECT id FROM users WHERE age = 29")
        indexed_reads = db.fs.device.stats.block_reads
        db.fs.device.stats.reset()
        db.execute("SELECT id FROM users WHERE age = 29 OR age = 999")  # forces scan
        scan_reads = db.fs.device.stats.block_reads
        assert indexed_reads < scan_reads

    def test_index_maintained_on_insert(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        db.execute("INSERT INTO users VALUES (500, 'quito', 40)")
        assert db.execute("SELECT id FROM users WHERE city = 'quito'") == [{"id": 500}]

    def test_index_maintained_on_update(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        db.execute("UPDATE users SET city = 'milan' WHERE id = 3")
        assert {"id": 3} in db.execute("SELECT id FROM users WHERE city = 'milan'")
        assert {"id": 3} not in db.execute("SELECT id FROM users WHERE city = 'oslo'")

    def test_index_maintained_on_delete(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        db.execute("DELETE FROM users WHERE city = 'kyiv'")
        assert db.execute("SELECT count(*) c FROM users WHERE city = 'kyiv'")[0]["c"] == 0
        assert db._indexes["idx_city"].lookup("kyiv") == []

    def test_index_survives_reopen(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        db.execute("INSERT INTO users VALUES (777, 'tunis', 1)")
        reopened = MiniSQL(db.fs, page_size=512)
        assert reopened._indexes["idx_city"].lookup("tunis") == [777]
        assert reopened.execute("SELECT id FROM users WHERE city = 'tunis'") == [
            {"id": 777}
        ]

    def test_works_on_compressfs(self):
        database = MiniSQL(CompressFS(block_size=256), page_size=512)
        database.execute("CREATE TABLE t (id INT PRIMARY KEY, tag TEXT)")
        for i in range(50):
            database.execute(f"INSERT INTO t VALUES ({i}, 'tag{i % 3}')")
        database.execute("CREATE INDEX idx_tag ON t (tag)")
        rows = database.execute("SELECT id FROM t WHERE tag = 'tag1'")
        assert [row["id"] for row in rows] == [i for i in range(50) if i % 3 == 1]

"""Unit tests for the seven pushed-down operations (Section 4.4)."""

import pytest

from repro.core.operations import OperationError


@pytest.fixture
def loaded(engine):
    engine.create("/f")
    engine.ops.append("/f", b"the quick brown fox jumps over the lazy dog " * 5)
    return engine


class TestExtract:
    def test_whole_file(self, loaded):
        data = loaded.ops.extract("/f", 0, loaded.file_size("/f"))
        assert data == b"the quick brown fox jumps over the lazy dog " * 5

    def test_cross_block_range(self, loaded):
        bs = loaded.block_size
        data = loaded.ops.extract("/f", bs - 5, 10)
        whole = loaded.read_file("/f")
        assert data == whole[bs - 5 : bs + 5]

    def test_zero_size(self, loaded):
        assert loaded.ops.extract("/f", 3, 0) == b""

    def test_beyond_eof_truncated(self, loaded):
        size = loaded.file_size("/f")
        assert loaded.ops.extract("/f", size - 2, 100) == loaded.read_file("/f")[-2:]

    def test_negative_offset_rejected(self, loaded):
        with pytest.raises(OperationError):
            loaded.ops.extract("/f", -1, 5)


class TestReplace:
    def test_in_place(self, loaded):
        loaded.ops.replace("/f", 4, b"QUICK")
        assert loaded.read_file("/f")[4:9] == b"QUICK"

    def test_size_unchanged(self, loaded):
        before = loaded.file_size("/f")
        loaded.ops.replace("/f", 0, b"THE")
        assert loaded.file_size("/f") == before

    def test_cross_block_replace(self, loaded):
        bs = loaded.block_size
        loaded.ops.replace("/f", bs - 3, b"XXXXXX")
        data = loaded.read_file("/f")
        assert data[bs - 3 : bs + 3] == b"XXXXXX"
        loaded.check_invariants()

    def test_out_of_range_rejected(self, loaded):
        size = loaded.file_size("/f")
        with pytest.raises(OperationError):
            loaded.ops.replace("/f", size - 1, b"too long")

    def test_replace_does_not_shift_layout(self, loaded):
        """Unlike delete+insert, replace keeps all later bytes in place."""
        before = loaded.read_file("/f")
        loaded.ops.replace("/f", 10, b"##")
        after = loaded.read_file("/f")
        assert after[:10] == before[:10]
        assert after[12:] == before[12:]

    def test_shared_block_copy_on_write(self, engine):
        block = b"S" * engine.block_size
        engine.write_file("/a", block * 2)
        engine.write_file("/b", block)
        engine.ops.replace("/a", 0, b"!")
        assert engine.read_file("/b") == block  # sharer unaffected
        engine.check_invariants()


class TestInsert:
    def test_at_start(self, loaded):
        before = loaded.read_file("/f")
        loaded.ops.insert("/f", 0, b">>>")
        assert loaded.read_file("/f") == b">>>" + before

    def test_at_end_behaves_like_append(self, loaded):
        before = loaded.read_file("/f")
        loaded.ops.insert("/f", len(before), b"<<<")
        assert loaded.read_file("/f") == before + b"<<<"

    def test_unaligned_creates_hole(self, loaded):
        holes_before = loaded.inode("/f").hole_bytes
        loaded.ops.insert("/f", 10, b"odd")
        assert loaded.inode("/f").hole_bytes > holes_before

    def test_mid_block_correctness(self, loaded):
        before = loaded.read_file("/f")
        loaded.ops.insert("/f", 13, b"[inserted]")
        assert loaded.read_file("/f") == before[:13] + b"[inserted]" + before[13:]
        loaded.check_invariants()

    def test_insert_larger_than_block(self, loaded):
        before = loaded.read_file("/f")
        payload = b"L" * (loaded.block_size * 3 + 7)
        loaded.ops.insert("/f", 5, payload)
        assert loaded.read_file("/f") == before[:5] + payload + before[5:]
        loaded.check_invariants()

    def test_does_not_rewrite_untouched_blocks(self, engine):
        """The paper's core claim: insert touches O(1) blocks, so the
        rest of the file keeps its physical blocks."""
        engine.create("/f")
        unique = bytes(range(256))
        engine.ops.append("/f", (unique * 64)[: engine.block_size * 16])
        tail_blocks = engine.inode("/f").all_block_numbers()[8:]
        engine.ops.insert("/f", engine.block_size * 2 + 3, b"tiny")
        assert engine.inode("/f").all_block_numbers()[-8:] == tail_blocks

    def test_insert_out_of_range(self, loaded):
        with pytest.raises(OperationError):
            loaded.ops.insert("/f", loaded.file_size("/f") + 1, b"x")

    def test_empty_insert_is_noop(self, loaded):
        before = loaded.read_file("/f")
        loaded.ops.insert("/f", 7, b"")
        assert loaded.read_file("/f") == before


class TestDelete:
    def test_within_one_block(self, loaded):
        before = loaded.read_file("/f")
        loaded.ops.delete("/f", 4, 6)
        assert loaded.read_file("/f") == before[:4] + before[10:]
        loaded.check_invariants()

    def test_across_blocks(self, loaded):
        before = loaded.read_file("/f")
        bs = loaded.block_size
        loaded.ops.delete("/f", bs - 7, bs + 14)
        assert loaded.read_file("/f") == before[: bs - 7] + before[2 * bs + 7 :]
        loaded.check_invariants()

    def test_whole_file(self, loaded):
        loaded.ops.delete("/f", 0, loaded.file_size("/f"))
        assert loaded.file_size("/f") == 0
        assert loaded.inode("/f").num_slots == 0

    def test_creates_holes_not_data_movement(self, loaded):
        loaded.ops.delete("/f", 3, 5)
        assert loaded.inode("/f").hole_bytes > 0

    def test_hole_merge_releases_blocks(self, engine):
        """Section 4.4: adjacent remainders merging into one block."""
        engine.create("/f")
        engine.ops.append("/f", bytes(range(256))[: engine.block_size * 2])
        # Delete across the block boundary leaving small head + tail.
        bs = engine.block_size
        engine.ops.delete("/f", 10, 2 * bs - 20, merge_holes=True)
        assert engine.inode("/f").num_slots == 1  # merged into one block
        assert engine.file_size("/f") == 20

    def test_no_merge_when_disabled(self, engine):
        engine.create("/f")
        engine.ops.append("/f", bytes(range(256))[: engine.block_size * 2])
        bs = engine.block_size
        engine.ops.delete("/f", 10, 2 * bs - 20, merge_holes=False)
        assert engine.inode("/f").num_slots == 2

    def test_out_of_range(self, loaded):
        with pytest.raises(OperationError):
            loaded.ops.delete("/f", 0, loaded.file_size("/f") + 1)

    def test_zero_length_is_noop(self, loaded):
        before = loaded.read_file("/f")
        loaded.ops.delete("/f", 5, 0)
        assert loaded.read_file("/f") == before


class TestAppend:
    def test_fills_trailing_hole_first(self, engine):
        engine.create("/f")
        engine.ops.append("/f", b"abc")  # partial block
        slots_before = engine.inode("/f").num_slots
        engine.ops.append("/f", b"def")
        assert engine.inode("/f").num_slots == slots_before
        assert engine.read_file("/f") == b"abcdef"

    def test_repeated_content_reuses_blocks(self, engine):
        block = b"A" * engine.block_size
        engine.create("/f")
        for __ in range(10):
            engine.ops.append("/f", block)
        assert engine.physical_data_blocks() == 1

    def test_append_to_empty_file(self, engine):
        engine.create("/f")
        engine.ops.append("/f", b"start")
        assert engine.read_file("/f") == b"start"

    def test_append_empty_is_noop(self, loaded):
        before = loaded.read_file("/f")
        loaded.ops.append("/f", b"")
        assert loaded.read_file("/f") == before


class TestSearchAndCount:
    def test_matches_naive(self, loaded):
        data = loaded.read_file("/f")
        expected = []
        index = data.find(b"the")
        while index != -1:
            expected.append(index)
            index = data.find(b"the", index + 1)
        assert loaded.ops.search("/f", b"the") == expected

    def test_cross_block_occurrences_found(self, engine):
        engine.create("/f")
        bs = engine.block_size
        # Plant a pattern exactly straddling a block boundary.
        data = b"a" * (bs - 2) + b"NEEDLE" + b"b" * bs
        engine.ops.append("/f", data)
        assert engine.ops.search("/f", b"NEEDLE") == [bs - 2]

    def test_search_respects_holes(self, loaded):
        """Bytes split by an insert hole must not match across the gap."""
        loaded.ops.replace("/f", 0, b"ABCDEF")
        loaded.ops.insert("/f", 3, b"-")
        assert loaded.ops.search("/f", b"ABCDEF") == []
        assert loaded.ops.search("/f", b"ABC-DEF") == [0]

    def test_search_reuses_shared_blocks(self, engine):
        """Identical blocks are scanned once (block reuse saving)."""
        block = (b"needle " + b"x" * engine.block_size)[: engine.block_size]
        engine.create("/f")
        for __ in range(20):
            engine.ops.append("/f", block)
        reads_before = engine.device.stats.block_reads
        matches = engine.ops.search("/f", b"needle")
        assert len(matches) == 20
        # Far fewer block reads than slots: one scan + junction windows.
        assert engine.device.stats.block_reads - reads_before < 60

    def test_count_equals_len_search(self, loaded):
        assert loaded.ops.count("/f", b"o") == len(loaded.ops.search("/f", b"o"))

    def test_empty_pattern(self, loaded):
        assert loaded.ops.search("/f", b"") == []
        assert loaded.ops.count("/f", b"") == 0

    def test_pattern_longer_than_file(self, engine):
        engine.create("/f")
        engine.ops.append("/f", b"ab")
        assert engine.ops.search("/f", b"abc") == []

    def test_overlapping_matches(self, engine):
        engine.create("/f")
        engine.ops.append("/f", b"aaaa")
        assert engine.ops.search("/f", b"aa") == [0, 1, 2]


class TestStatsCounters:
    def test_each_operation_counted(self, loaded):
        loaded.ops.stats.reset()  # the fixture itself used append
        loaded.ops.extract("/f", 0, 1)
        loaded.ops.replace("/f", 0, b"x")
        loaded.ops.insert("/f", 0, b"y")
        loaded.ops.delete("/f", 0, 1)
        loaded.ops.append("/f", b"z")
        loaded.ops.search("/f", b"a")
        loaded.ops.count("/f", b"a")
        stats = loaded.ops.stats
        assert (
            stats.extract,
            stats.replace,
            stats.insert,
            stats.delete,
            stats.append,
            stats.search,
            stats.count,
        ) == (1, 1, 1, 1, 1, 1, 1)

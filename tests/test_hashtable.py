"""Unit tests for blockHashTable."""

import pytest

from repro.core.hashtable import ENTRY_MEMORY_BYTES, BlockHashTable, hash_block


class _FakeStore:
    """Block-number -> content store standing in for the device."""

    def __init__(self):
        self.blocks: dict[int, bytes] = {}

    def read(self, block_no: int) -> bytes:
        return self.blocks[block_no]


@pytest.fixture
def store():
    return _FakeStore()


@pytest.fixture
def table(store):
    return BlockHashTable(reader=store.read, length=8)  # tiny: force collisions


class TestHashFunction:
    def test_deterministic(self):
        assert hash_block(b"abc") == hash_block(b"abc")

    def test_content_sensitive(self):
        assert hash_block(b"abc") != hash_block(b"abd")

    def test_64_bit_range(self):
        value = hash_block(b"anything")
        assert 0 <= value < 2**64


class TestRecords:
    def test_find_duplicate_of_recorded_block(self, table, store):
        store.blocks[5] = b"content"
        table.add_record(5, b"content")
        assert table.find_duplicate(b"content") == 5

    def test_find_duplicate_misses_unknown_content(self, table, store):
        store.blocks[5] = b"content"
        table.add_record(5, b"content")
        assert table.find_duplicate(b"other") is None

    def test_duplicate_registration_rejected(self, table, store):
        store.blocks[1] = b"x"
        table.add_record(1, b"x")
        with pytest.raises(KeyError):
            table.add_record(1, b"x")

    def test_delete_record(self, table, store):
        store.blocks[1] = b"x"
        table.add_record(1, b"x")
        table.delete_record(1)
        assert table.find_duplicate(b"x") is None
        assert 1 not in table

    def test_delete_unknown_record_raises(self, table):
        with pytest.raises(KeyError):
            table.delete_record(42)

    def test_membership(self, table, store):
        store.blocks[3] = b"m"
        table.add_record(3, b"m")
        assert 3 in table
        assert 4 not in table


class TestCollisions:
    def test_collisions_resolved_by_content_comparison(self, store):
        # length=1 puts every record in one bucket.
        table = BlockHashTable(reader=store.read, length=1)
        for block_no in range(10):
            content = b"block-%d" % block_no
            store.blocks[block_no] = content
            table.add_record(block_no, content)
        for block_no in range(10):
            assert table.find_duplicate(b"block-%d" % block_no) == block_no
        table.check_invariants()

    def test_probe_comparisons_counted(self, store):
        table = BlockHashTable(reader=store.read, length=4)
        store.blocks[0] = b"a"
        table.add_record(0, b"a")
        table.find_duplicate(b"a")
        assert table.probe_comparisons >= 1


class TestAccounting:
    def test_len_tracks_entries(self, table, store):
        for i in range(5):
            store.blocks[i] = b"%d" % i
            table.add_record(i, b"%d" % i)
        assert len(table) == 5
        table.delete_record(2)
        assert len(table) == 4

    def test_memory_estimate(self, table, store):
        store.blocks[0] = b"a"
        table.add_record(0, b"a")
        assert table.memory_bytes() == ENTRY_MEMORY_BYTES

    def test_load_factor(self, store):
        table = BlockHashTable(reader=store.read, length=10)
        store.blocks[0] = b"a"
        table.add_record(0, b"a")
        assert table.load_factor() == pytest.approx(0.1)

    def test_clear_drops_everything(self, table, store):
        store.blocks[0] = b"a"
        table.add_record(0, b"a")
        table.clear()
        assert len(table) == 0
        assert table.find_duplicate(b"a") is None
        table.check_invariants()

    def test_invalid_length_rejected(self, store):
        with pytest.raises(ValueError):
            BlockHashTable(reader=store.read, length=0)

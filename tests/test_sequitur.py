"""Tests for Sequitur grammar inference."""

from hypothesis import given, settings, strategies as st

from repro.tadoc.sequitur import (
    Grammar,
    RuleRef,
    Sequitur,
    compress,
    compress_files,
    split_files,
    tokenize,
)


class TestBasics:
    def test_empty_input(self):
        grammar = compress([])
        assert grammar.expand() == []

    def test_single_token(self):
        assert compress(["a"]).expand() == ["a"]

    def test_no_repetition_stays_flat(self):
        grammar = compress(list("abcdef"))
        assert grammar.rule_count() == 1

    def test_repeated_digram_forms_rule(self):
        grammar = compress(list("abab"))
        assert grammar.rule_count() == 2
        grammar.check_invariants()

    def test_classic_example(self):
        # "abcabdabcabd" compresses hierarchically.
        tokens = list("abcabdabcabd")
        grammar = compress(tokens)
        assert grammar.expand() == tokens
        assert grammar.total_symbols() < len(tokens)
        grammar.check_invariants()

    def test_overlapping_run(self):
        tokens = list("aaaa")
        grammar = compress(tokens)
        assert grammar.expand() == tokens
        grammar.check_invariants()

    def test_compression_shrinks_redundant_text(self):
        tokens = tokenize("the cat sat on the mat " * 64)
        grammar = compress(tokens)
        assert grammar.total_symbols() < len(tokens) / 4

    def test_tokenize_splits_on_whitespace(self):
        assert tokenize("a  b\tc\nd") == ["a", "b", "c", "d"]


class TestIncremental:
    def test_feed_matches_batch(self):
        tokens = list("xyxyxyzz")
        seq = Sequitur()
        for token in tokens:
            seq.feed(token)
        assert seq.grammar().expand() == tokens

    def test_grammar_snapshot_is_stable(self):
        seq = Sequitur()
        seq.feed_many(list("abcabc"))
        first = seq.grammar().expand()
        second = seq.grammar().expand()
        assert first == second == list("abcabc")


class TestMultiFile:
    def test_roundtrip_with_boundaries(self):
        files = [tokenize("shared words here " * 5), tokenize("shared words there " * 5)]
        grammar = compress_files(files)
        assert split_files(grammar) == files

    def test_cross_file_redundancy_exploited(self):
        body = tokenize("identical content repeated often " * 10)
        together = compress_files([body, body])
        separate = compress(body)
        # Compressing both files costs far less than twice one file.
        assert together.total_symbols() < 2 * separate.total_symbols()

    def test_single_file_has_no_boundary(self):
        grammar = compress_files([["a", "b"]])
        assert split_files(grammar) == [["a", "b"]]


class TestGrammarObject:
    def test_reference_counts(self):
        grammar = compress(list("abab"))
        counts = grammar.reference_counts()
        non_root = [c for rid, c in counts.items() if rid != grammar.root]
        assert all(count >= 2 for count in non_root)

    def test_ruleref_equality_and_repr(self):
        assert RuleRef(3) == RuleRef(3)
        assert RuleRef(3) != RuleRef(4)
        assert repr(RuleRef(3)) == "R3"
        assert len({RuleRef(1), RuleRef(1)}) == 1

    def test_invariant_checker_catches_underused_rule(self):
        bad = Grammar(rules={0: [RuleRef(1)], 1: ["a", "b"]}, root=0)
        try:
            bad.check_invariants()
        except AssertionError:
            return
        raise AssertionError("underused rule not detected")


@given(st.lists(st.integers(0, 3), max_size=250))
@settings(max_examples=150, deadline=None)
def test_roundtrip_random_sequences(tokens):
    """DESIGN.md invariant 4: expansion inverts compression."""
    grammar = compress(tokens)
    assert grammar.expand() == tokens


@given(st.lists(st.integers(0, 2), max_size=150))
@settings(max_examples=100, deadline=None)
def test_invariants_hold_on_random_sequences(tokens):
    compress(tokens).check_invariants()


@given(st.lists(st.lists(st.integers(0, 2), max_size=40), min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_multifile_roundtrip_random(files):
    grammar = compress_files(files)
    assert split_files(grammar) == files

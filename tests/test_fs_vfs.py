"""POSIX-semantics tests, parametrized over both file systems.

The baseline and CompressFS must be observationally identical through
the VFS: that is what lets unmodified databases run on either.
"""

import pytest

from repro.fs import (
    BadFileDescriptor,
    FileExists,
    FileNotFound,
    InvalidArgument,
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    PermissionDenied,
    SEEK_CUR,
    SEEK_END,
)


class TestOpenFlags:
    def test_open_missing_without_creat_raises(self, any_fs):
        with pytest.raises(FileNotFound):
            any_fs.open("/missing")

    def test_o_creat_creates(self, any_fs):
        fd = any_fs.open("/new", O_RDWR | O_CREAT)
        any_fs.close(fd)
        assert any_fs.exists("/new")

    def test_o_excl_on_existing_raises(self, any_fs):
        any_fs.write_file("/f", b"x")
        with pytest.raises(FileExists):
            any_fs.open("/f", O_RDWR | O_CREAT | O_EXCL)

    def test_o_trunc_clears_content(self, any_fs):
        any_fs.write_file("/f", b"old content")
        fd = any_fs.open("/f", O_WRONLY | O_TRUNC)
        any_fs.close(fd)
        assert any_fs.stat("/f").size == 0

    def test_read_on_wronly_fd_raises(self, any_fs):
        any_fs.write_file("/f", b"x")
        fd = any_fs.open("/f", O_WRONLY)
        with pytest.raises(PermissionDenied):
            any_fs.read(fd, 1)

    def test_write_on_rdonly_fd_raises(self, any_fs):
        any_fs.write_file("/f", b"x")
        fd = any_fs.open("/f", O_RDONLY)
        with pytest.raises(PermissionDenied):
            any_fs.write(fd, b"y")

    def test_o_append_writes_at_end(self, any_fs):
        any_fs.write_file("/f", b"head")
        fd = any_fs.open("/f", O_WRONLY | O_APPEND)
        any_fs.write(fd, b"-tail")
        any_fs.close(fd)
        assert any_fs.read_file("/f") == b"head-tail"


class TestDescriptors:
    def test_read_advances_position(self, any_fs):
        any_fs.write_file("/f", b"abcdef")
        fd = any_fs.open("/f")
        assert any_fs.read(fd, 3) == b"abc"
        assert any_fs.read(fd, 3) == b"def"
        assert any_fs.read(fd, 3) == b""

    def test_write_advances_position(self, any_fs):
        fd = any_fs.open("/f", O_RDWR | O_CREAT)
        any_fs.write(fd, b"ab")
        any_fs.write(fd, b"cd")
        any_fs.close(fd)
        assert any_fs.read_file("/f") == b"abcd"

    def test_lseek_set_and_cur(self, any_fs):
        any_fs.write_file("/f", b"0123456789")
        fd = any_fs.open("/f")
        any_fs.lseek(fd, 4)
        assert any_fs.read(fd, 2) == b"45"
        any_fs.lseek(fd, -2, SEEK_CUR)
        assert any_fs.read(fd, 2) == b"45"

    def test_lseek_end(self, any_fs):
        any_fs.write_file("/f", b"0123456789")
        fd = any_fs.open("/f")
        any_fs.lseek(fd, -3, SEEK_END)
        assert any_fs.read(fd, 10) == b"789"

    def test_negative_seek_rejected(self, any_fs):
        any_fs.write_file("/f", b"x")
        fd = any_fs.open("/f")
        with pytest.raises(InvalidArgument):
            any_fs.lseek(fd, -5)

    def test_closed_fd_rejected(self, any_fs):
        any_fs.write_file("/f", b"x")
        fd = any_fs.open("/f")
        any_fs.close(fd)
        with pytest.raises(BadFileDescriptor):
            any_fs.read(fd, 1)

    def test_pread_pwrite_do_not_move_position(self, any_fs):
        any_fs.write_file("/f", b"0123456789")
        fd = any_fs.open("/f", O_RDWR)
        assert any_fs.pread(fd, 3, 5) == b"567"
        any_fs.pwrite(fd, b"XX", 0)
        assert any_fs.read(fd, 4) == b"XX23"

    def test_fd_reuse_after_close(self, any_fs):
        any_fs.write_file("/f", b"x")
        fd = any_fs.open("/f")
        any_fs.close(fd)
        assert any_fs.open("/f") == fd


class TestFileOps:
    def test_stat(self, any_fs):
        any_fs.write_file("/f", b"x" * 100)
        stat = any_fs.stat("/f")
        assert stat.size == 100
        assert stat.blocks == -(-100 // any_fs.block_size)

    def test_stat_missing_raises(self, any_fs):
        with pytest.raises(FileNotFound):
            any_fs.stat("/missing")

    def test_unlink(self, any_fs):
        any_fs.write_file("/f", b"x")
        any_fs.unlink("/f")
        assert not any_fs.exists("/f")

    def test_unlink_missing_raises(self, any_fs):
        with pytest.raises(FileNotFound):
            any_fs.unlink("/missing")

    def test_listdir_prefix(self, any_fs):
        for path in ("/a/1", "/a/2", "/b/1"):
            any_fs.write_file(path, b"")
        assert any_fs.listdir("/a/") == ["/a/1", "/a/2"]

    def test_rename(self, any_fs):
        any_fs.write_file("/old", b"content")
        any_fs.rename("/old", "/new")
        assert not any_fs.exists("/old")
        assert any_fs.read_file("/new") == b"content"

    def test_truncate_grow_and_shrink(self, any_fs):
        any_fs.write_file("/f", b"abcdef")
        any_fs.truncate("/f", 3)
        assert any_fs.read_file("/f") == b"abc"
        any_fs.truncate("/f", 6)
        assert any_fs.read_file("/f") == b"abc\x00\x00\x00"

    def test_truncate_then_grow_reads_zeros_midblock(self, any_fs):
        payload = b"q" * (any_fs.block_size + 10)
        any_fs.write_file("/f", payload)
        any_fs.truncate("/f", any_fs.block_size - 5)
        any_fs.append_file("/f", b"zz")
        data = any_fs.read_file("/f")
        assert data == payload[: any_fs.block_size - 5] + b"zz"

    def test_sparse_write(self, any_fs):
        fd = any_fs.open("/f", O_RDWR | O_CREAT)
        any_fs.pwrite(fd, b"end", any_fs.block_size * 2)
        data = any_fs.read_file("/f")
        assert data == b"\x00" * (any_fs.block_size * 2) + b"end"

    def test_fsync_validates_fd(self, any_fs):
        any_fs.write_file("/f", b"x")
        fd = any_fs.open("/f")
        any_fs.fsync(fd)
        any_fs.close(fd)
        with pytest.raises(BadFileDescriptor):
            any_fs.fsync(fd)


class TestAccounting:
    def test_logical_bytes(self, any_fs):
        any_fs.write_file("/a", b"x" * 10)
        any_fs.write_file("/b", b"y" * 20)
        assert any_fs.logical_bytes() == 30

    def test_compressfs_dedups_passthrough_does_not(
        self, compress_fs, passthrough_fs
    ):
        block = b"R" * 64
        for fs in (compress_fs, passthrough_fs):
            fs.write_file("/a", block * 8)
        assert compress_fs.physical_bytes() == 64
        assert passthrough_fs.physical_bytes() == 64 * 8


class TestUnlinkBusy:
    def test_unlink_with_open_descriptor_rejected(self, any_fs):
        from repro.fs import IsBusy

        any_fs.write_file("/f", b"held open")
        fd = any_fs.open("/f")
        with pytest.raises(IsBusy):
            any_fs.unlink("/f")
        any_fs.close(fd)
        any_fs.unlink("/f")
        assert not any_fs.exists("/f")

    def test_open_count_tracks_descriptors(self, any_fs):
        any_fs.write_file("/f", b"x")
        first = any_fs.open("/f")
        second = any_fs.open("/f")
        assert any_fs._fds.open_count("/f") == 2
        assert any_fs._fds.open_fds() == [first, second]
        any_fs.close(first)
        assert any_fs._fds.open_count("/f") == 1
        any_fs.close(second)


class TestZeroLengthWrites:
    def test_empty_pwrite_beyond_eof_is_noop(self, any_fs):
        """POSIX: write(fd, "", 0) changes nothing, even past EOF."""
        any_fs.write_file("/f", b"ab")
        fd = any_fs.open("/f", O_RDWR)
        assert any_fs.pwrite(fd, b"", 100) == 0
        assert any_fs.stat("/f").size == 2

    def test_empty_write_on_empty_file(self, any_fs):
        any_fs.write_file("/f", b"")
        fd = any_fs.open("/f", O_RDWR)
        any_fs.pwrite(fd, b"", 5)
        assert any_fs.read_file("/f") == b""

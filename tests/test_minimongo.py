"""Tests for the MiniMongo document store."""

import pytest

from repro.databases.minimongo import DuplicateKey, MiniMongo, matches
from repro.databases.common import DatabaseError
from repro.fs import CompressFS, PassthroughFS


@pytest.fixture(params=["passthrough", "compress"])
def db(request):
    if request.param == "passthrough":
        fs = PassthroughFS(block_size=256)
    else:
        fs = CompressFS(block_size=256)
    return MiniMongo(fs)


class TestQueryMatching:
    def test_equality(self):
        assert matches({"a": 1}, {"a": 1})
        assert not matches({"a": 1}, {"a": 2})
        assert not matches({}, {"a": 1})

    def test_comparison_operators(self):
        doc = {"age": 30}
        assert matches(doc, {"age": {"$gt": 20}})
        assert matches(doc, {"age": {"$gte": 30}})
        assert matches(doc, {"age": {"$lt": 31}})
        assert matches(doc, {"age": {"$lte": 30}})
        assert not matches(doc, {"age": {"$gt": 30}})

    def test_ne_and_in(self):
        doc = {"tag": "b"}
        assert matches(doc, {"tag": {"$ne": "a"}})
        assert matches(doc, {"tag": {"$in": ["a", "b"]}})
        assert not matches(doc, {"tag": {"$in": ["x"]}})

    def test_exists(self):
        assert matches({"a": 1}, {"a": {"$exists": True}})
        assert matches({}, {"a": {"$exists": False}})
        assert not matches({}, {"a": {"$exists": True}})

    def test_combined_operators(self):
        assert matches({"n": 5}, {"n": {"$gt": 1, "$lt": 10}})

    def test_missing_field_never_compares(self):
        assert not matches({}, {"n": {"$gt": 1}})

    def test_unknown_operator_raises(self):
        with pytest.raises(DatabaseError):
            matches({"n": 1}, {"n": {"$regex": "x", "$gt": 0}})


class TestCollection:
    def test_insert_assigns_id(self, db):
        doc_id = db["c"].insert_one({"x": 1})
        assert doc_id.startswith("oid")
        assert db["c"].find_one({"_id": doc_id})["x"] == 1

    def test_explicit_id_kept(self, db):
        db["c"].insert_one({"_id": "me", "x": 1})
        assert db["c"].find_one({"_id": "me"})["x"] == 1

    def test_duplicate_id_rejected(self, db):
        db["c"].insert_one({"_id": "dup"})
        with pytest.raises(DuplicateKey):
            db["c"].insert_one({"_id": "dup"})

    def test_non_string_id_rejected(self, db):
        with pytest.raises(DatabaseError):
            db["c"].insert_one({"_id": 42})

    def test_find_one_by_field(self, db):
        db["c"].insert_one({"name": "a", "age": 1})
        db["c"].insert_one({"name": "b", "age": 2})
        assert db["c"].find_one({"age": 2})["name"] == "b"
        assert db["c"].find_one({"age": 99}) is None

    def test_find_many(self, db):
        for i in range(10):
            db["c"].insert_one({"i": i})
        assert len(list(db["c"].find({"i": {"$gte": 5}}))) == 5

    def test_update_one_set(self, db):
        doc_id = db["c"].insert_one({"v": 1})
        assert db["c"].update_one({"_id": doc_id}, {"$set": {"v": 2}})
        assert db["c"].find_one({"_id": doc_id})["v"] == 2

    def test_update_missing_returns_false(self, db):
        assert not db["c"].update_one({"_id": "nope"}, {"$set": {"v": 1}})

    def test_update_id_rejected(self, db):
        doc_id = db["c"].insert_one({"v": 1})
        with pytest.raises(DatabaseError):
            db["c"].update_one({"_id": doc_id}, {"$set": {"_id": "other"}})

    def test_non_set_update_rejected(self, db):
        doc_id = db["c"].insert_one({"v": 1})
        with pytest.raises(DatabaseError):
            db["c"].update_one({"_id": doc_id}, {"$inc": {"v": 1}})

    def test_replace_one(self, db):
        doc_id = db["c"].insert_one({"v": 1, "extra": True})
        db["c"].replace_one({"_id": doc_id}, {"v": 2})
        doc = db["c"].find_one({"_id": doc_id})
        assert doc == {"_id": doc_id, "v": 2}

    def test_delete_one(self, db):
        doc_id = db["c"].insert_one({"v": 1})
        assert db["c"].delete_one({"_id": doc_id})
        assert db["c"].find_one({"_id": doc_id}) is None
        assert not db["c"].delete_one({"_id": doc_id})

    def test_count_documents(self, db):
        for i in range(7):
            db["c"].insert_one({"even": i % 2 == 0})
        assert db["c"].count_documents() == 7
        assert db["c"].count_documents({"even": True}) == 4

    def test_find_one_returns_copy(self, db):
        doc_id = db["c"].insert_one({"v": 1})
        doc = db["c"].find_one({"_id": doc_id})
        doc["v"] = 999
        assert db["c"].find_one({"_id": doc_id})["v"] == 1


class TestDurabilityAndCompaction:
    def test_reopen_sees_documents(self, db):
        db["c"].insert_one({"_id": "persists", "v": 1})
        db["c"].update_one({"_id": "persists"}, {"$set": {"v": 2}})
        reopened = MiniMongo(db.fs)
        assert reopened["c"].find_one({"_id": "persists"})["v"] == 2

    def test_reopen_respects_deletes(self, db):
        db["c"].insert_one({"_id": "gone"})
        db["c"].delete_one({"_id": "gone"})
        reopened = MiniMongo(db.fs)
        assert reopened["c"].find_one({"_id": "gone"}) is None

    def test_compact_shrinks_file(self, db):
        collection = db["c"]
        doc_id = collection.insert_one({"v": 0})
        for i in range(30):
            collection.update_one({"_id": doc_id}, {"$set": {"v": i}})
        size_before = db.fs.stat(collection.path).size
        collection.compact()
        assert db.fs.stat(collection.path).size < size_before
        assert collection.find_one({"_id": doc_id})["v"] == 29

    def test_dead_record_accounting(self, db):
        collection = db["c"]
        doc_id = collection.insert_one({"v": 0})
        collection.update_one({"_id": doc_id}, {"$set": {"v": 1}})
        assert collection.dead_records >= 1
        collection.compact()
        assert collection.dead_records == 0

    def test_list_collections(self, db):
        db["users"].insert_one({})
        db["orders"].insert_one({})
        assert db.list_collections() == ["orders", "users"]


class TestBenchInterface:
    def test_bench_read_write(self, db):
        db.bench_write("k1", "body text")
        doc = db.bench_read("k1")
        assert doc["body"] == "body text"
        db.bench_write("k1", "updated")
        assert db.bench_read("k1")["body"] == "updated"
        assert db.bench_read("missing") is None

"""Tests for the MiniSQL relational engine."""

import random

import pytest

from repro.databases.minisql import MiniSQL, TableError
from repro.fs import CompressFS, PassthroughFS


@pytest.fixture(params=["passthrough", "compress"])
def db(request):
    if request.param == "passthrough":
        fs = PassthroughFS(block_size=256)
    else:
        fs = CompressFS(block_size=256)
    database = MiniSQL(fs, page_size=512)  # small pages force splits
    database.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score REAL)")
    return database


class TestDDL:
    def test_create_duplicate_table_rejected(self, db):
        with pytest.raises(TableError):
            db.execute("CREATE TABLE t (id INT)")

    def test_unknown_table_rejected(self, db):
        with pytest.raises(TableError):
            db.execute("SELECT * FROM missing")

    def test_first_column_is_default_pk(self, db):
        db.execute("CREATE TABLE u (a INT, b TEXT)")
        assert db.table("u").schema.primary_key == "a"


class TestCRUD:
    def test_insert_and_point_select(self, db):
        db.execute("INSERT INTO t VALUES (1, 'alice', 3.5)")
        rows = db.execute("SELECT * FROM t WHERE id = 1")
        assert rows == [{"id": 1, "name": "alice", "score": 3.5}]

    def test_insert_with_column_list(self, db):
        db.execute("INSERT INTO t (id, name) VALUES (2, 'bob')")
        rows = db.execute("SELECT score FROM t WHERE id = 2")
        assert rows == [{"score": None}]

    def test_duplicate_pk_rejected(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 0.0)")
        with pytest.raises(TableError):
            db.execute("INSERT INTO t VALUES (1, 'b', 0.0)")

    def test_null_pk_rejected(self, db):
        with pytest.raises(TableError):
            db.execute("INSERT INTO t VALUES (NULL, 'x', 0.0)")

    def test_update_by_pk(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        db.execute("UPDATE t SET score = 9.0 WHERE id = 1")
        assert db.execute("SELECT score FROM t WHERE id = 1")[0]["score"] == 9.0

    def test_update_with_expression(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
        db.execute("UPDATE t SET score = score + 0.5 WHERE id = 1")
        assert db.execute("SELECT score FROM t WHERE id = 1")[0]["score"] == 1.5

    def test_update_whole_table(self, db):
        for i in range(5):
            db.execute(f"INSERT INTO t VALUES ({i}, 'n', 0.0)")
        db.execute("UPDATE t SET score = 1.0")
        assert all(
            row["score"] == 1.0 for row in db.execute("SELECT score FROM t")
        )

    def test_delete(self, db):
        for i in range(5):
            db.execute(f"INSERT INTO t VALUES ({i}, 'n', 0.0)")
        db.execute("DELETE FROM t WHERE id < 3")
        assert db.execute("SELECT count(*) c FROM t")[0]["c"] == 2


class TestPaging:
    def test_many_rows_force_page_splits(self, db):
        rng = random.Random(4)
        keys = list(range(200))
        rng.shuffle(keys)
        for key in keys:
            db.execute(f"INSERT INTO t VALUES ({key}, 'name-{key}', {key}.5)")
        table = db.table("t")
        assert len(table._page_numbers) > 1
        # Every key resolvable, in order.
        rows = db.execute("SELECT id FROM t")
        assert [row["id"] for row in rows] == list(range(200))

    def test_point_lookup_after_splits(self, db):
        for key in range(150):
            db.execute(f"INSERT INTO t VALUES ({key}, 'n{key}', 0.0)")
        assert db.execute("SELECT name FROM t WHERE id = 137")[0]["name"] == "n137"

    def test_range_scan_reads_subset(self, db):
        for key in range(100):
            db.execute(f"INSERT INTO t VALUES ({key}, 'n', 0.0)")
        rows = db.execute("SELECT id FROM t WHERE id >= 20 AND id <= 30")
        assert [row["id"] for row in rows] == list(range(20, 31))

    def test_scan_range_prunes_pages(self, db):
        for key in range(200):
            db.execute(f"INSERT INTO t VALUES ({key}, 'n', 0.0)")
        db.fs.device.stats.reset()
        list(db.table("t").scan_range(5, 10))
        pruned_reads = db.fs.device.stats.block_reads
        db.fs.device.stats.reset()
        list(db.table("t").scan())
        full_reads = db.fs.device.stats.block_reads
        assert pruned_reads < full_reads


class TestQueries:
    def test_paper_range_scan(self, db):
        db.execute("CREATE TABLE tbl (pk INT PRIMARY KEY, id INT, idx INT, cnt INT, dt TEXT)")
        rng = random.Random(1)
        for i in range(60):
            db.execute(
                f"INSERT INTO tbl VALUES ({i}, {i % 4}, {i % 10}, {rng.randrange(50)}, 'd{i % 3}')"
            )
        rows = db.execute(
            "SELECT id, sum(cnt)/count(dt) avg_cnt FROM tbl "
            "WHERE idx >= 0 AND idx <= 8 GROUP BY id ORDER BY avg_cnt DESC"
        )
        assert len(rows) == 4
        values = [row["avg_cnt"] for row in rows]
        assert values == sorted(values, reverse=True)

    def test_aggregates(self, db):
        for i in range(10):
            db.execute(f"INSERT INTO t VALUES ({i}, 'n', {i}.0)")
        result = db.execute("SELECT sum(score) s, avg(score) a FROM t")[0]
        assert result["s"] == pytest.approx(45.0)
        assert result["a"] == pytest.approx(4.5)


class TestPersistence:
    def test_reopen_from_catalog(self, db):
        db.execute("INSERT INTO t VALUES (7, 'persisted', 1.5)")
        reopened = MiniSQL(db.fs, page_size=512)
        rows = reopened.execute("SELECT name FROM t WHERE id = 7")
        assert rows == [{"name": "persisted"}]

    def test_reopen_after_many_inserts(self, db):
        for i in range(120):
            db.execute(f"INSERT INTO t VALUES ({i}, 'x{i}', 0.0)")
        reopened = MiniSQL(db.fs, page_size=512)
        assert reopened.execute("SELECT count(*) c FROM t")[0]["c"] == 120


class TestBenchInterface:
    def test_bench_read_write(self, db):
        db.bench_setup()
        db.bench_write("5", "payload text")
        assert db.bench_read("5") == "payload text"
        db.bench_write("5", "updated")
        assert db.bench_read("5") == "updated"
        assert db.bench_read("999") is None

    def test_bench_write_escapes_quotes(self, db):
        db.bench_setup()
        db.bench_write("1", "it's quoted")
        assert db.bench_read("1") == "it's quoted"

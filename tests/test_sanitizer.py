"""Runtime lock-order sanitizer and its agreement with the static graph.

The acceptance bar of the interprocedural arc: the lock-order graph
CONC002 derives statically must agree with what the sanitizer observes
on the multi-session interleaving smoke workload, and a deliberately
injected inversion must be caught by both sides.
"""

from __future__ import annotations

import pytest

from repro.analysis import build_program_for, default_target
from repro.analysis.sanitizer import (
    LockContractError,
    LockOrderSanitizer,
    LockOrderViolation,
    TrackedLock,
    check_agreement,
    current_sanitizer,
    install_sanitizer,
    uninstall_sanitizer,
)
from repro.distributed import run_interleaved_sessions
from repro.distributed.cluster import build_cluster


@pytest.fixture(autouse=True)
def _no_ambient_sanitizer():
    """Neutralize a REPRO_SANITIZE-installed sanitizer: these tests
    manage installation explicitly, and restore the ambient one after."""
    ambient = current_sanitizer()
    uninstall_sanitizer()
    yield
    if ambient is not None:
        install_sanitizer(ambient)
    else:
        uninstall_sanitizer()


@pytest.fixture
def sanitizer():
    san = install_sanitizer(LockOrderSanitizer(raise_on_violation=False))
    yield san
    uninstall_sanitizer()


@pytest.fixture
def strict_sanitizer():
    san = install_sanitizer(LockOrderSanitizer())
    yield san
    uninstall_sanitizer()


class TestTrackedLock:
    def test_uninstalled_lock_is_a_plain_mutex(self):
        assert current_sanitizer() is None
        lock = TrackedLock("master.lock")
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_rank_inferred_from_order_key(self):
        assert TrackedLock("master.lock").rank == 0
        assert TrackedLock("chunkserver.node0.lock").rank == 1
        assert TrackedLock("client.session.lock").rank == 2
        assert TrackedLock("journal.commit.lock").rank is None

    def test_require_held_is_noop_without_sanitizer(self):
        TrackedLock("master.lock").require_held()  # must not raise

    def test_require_held_enforced_under_sanitizer(self, strict_sanitizer):
        lock = TrackedLock("master.lock")
        with pytest.raises(LockContractError):
            lock.require_held()
        with lock:
            lock.require_held()  # held: passes

    def test_require_held_distinguishes_sessions(self, strict_sanitizer):
        lock = TrackedLock("master.lock")
        with strict_sanitizer.session("a"):
            lock.__enter__()
        try:
            with strict_sanitizer.session("b"):
                with pytest.raises(LockContractError):
                    lock.require_held()
            with strict_sanitizer.session("a"):
                lock.require_held()
        finally:
            with strict_sanitizer.session("a"):
                lock.__exit__(None, None, None)


class TestViolations:
    def test_tier_inversion_detected(self, sanitizer):
        outer = TrackedLock("client.lock")
        inner = TrackedLock("master.lock")
        with sanitizer.session("s"):
            with outer:
                with inner:
                    pass
        assert any("inversion" in v for v in sanitizer.violations)

    def test_declared_order_is_silent(self, sanitizer):
        with sanitizer.session("s"):
            with TrackedLock("master.lock"):
                with TrackedLock("chunkserver.node0.lock"):
                    with TrackedLock("journal.commit.lock"):
                        pass
        assert sanitizer.violations == []

    def test_reacquisition_detected(self, sanitizer):
        lock = TrackedLock("journal.commit.lock")
        with sanitizer.session("s"):
            sanitizer.note_acquire(lock)
            sanitizer.note_acquire(lock)
        assert any("self-deadlock" in v for v in sanitizer.violations)

    def test_static_edge_reversal_detected(self):
        san = install_sanitizer(
            LockOrderSanitizer(
                static_edges={("alpha.lock", "beta.lock")},
                raise_on_violation=False,
            )
        )
        try:
            with san.session("s"):
                with TrackedLock("beta.lock"):
                    with TrackedLock("alpha.lock"):
                        pass
        finally:
            uninstall_sanitizer()
        assert any("reverses" in v for v in san.violations)

    def test_sessions_have_independent_stacks(self, sanitizer):
        master = TrackedLock("master.lock")
        client = TrackedLock("client.lock")
        with sanitizer.session("a"):
            sanitizer.note_acquire(client)
        # Same thread, different logical session: no inversion.
        with sanitizer.session("b"):
            sanitizer.note_acquire(master)
        assert sanitizer.violations == []

    def test_raise_on_violation(self, strict_sanitizer):
        with strict_sanitizer.session("s"):
            with TrackedLock("client.lock"):
                with pytest.raises(LockOrderViolation):
                    TrackedLock("master.lock").__enter__()


class TestCheckAgreement:
    def test_agreeing_graphs_are_silent(self):
        static = {("repro.distributed.master.Master.lock",
                   "repro.distributed.chunkserver.ChunkServer._lock")}
        observed = {("master.lock", "chunkserver.node0.lock")}
        assert check_agreement(static, observed) == []

    def test_reversed_observation_is_a_problem(self):
        static = {("repro.distributed.master.Master.lock",
                   "repro.distributed.chunkserver.ChunkServer._lock")}
        observed = {("chunkserver.node0.lock", "master.lock")}
        problems = check_agreement(static, observed)
        assert problems, "chunk -> master reverses the static master -> chunk"

    def test_observed_tier_inversion_is_a_problem(self):
        problems = check_agreement(set(), {("client.inject.lock", "master.lock")})
        assert any("tier order" in p for p in problems)


class TestInterleavedSmoke:
    """The acceptance cross-check: static and observed graphs agree."""

    def _static_edges(self):
        program = build_program_for([default_target()])
        return {
            (edge.outer, edge.inner)
            for edge in program.summaries.lock_order_edges()
        }

    def test_smoke_clean_and_graphs_agree(self, sanitizer):
        static = self._static_edges()
        sanitizer.static_edges = frozenset(static)
        run_interleaved_sessions(
            sessions=3,
            rounds=2,
            sanitizer=sanitizer,
            cluster=build_cluster(nodes=2, durable=True),
        )
        assert sanitizer.violations == []
        observed = sanitizer.observed_edges()
        # The protocol's signature edges must actually be exercised.
        assert ("master.lock", "chunkserver.node0.lock") in observed
        assert ("chunkserver.node0.lock", "journal.commit.lock") in observed
        # Static side must predict master -> chunkserver too.
        static_pairs = {
            ("master" in outer.lower(), "chunk" in inner.lower())
            for outer, inner in static
        }
        assert (True, True) in static_pairs
        assert check_agreement(static, observed) == []

    def test_injected_inversion_caught_at_runtime(self, sanitizer):
        run_interleaved_sessions(
            sessions=2,
            rounds=1,
            sanitizer=sanitizer,
            inject_inversion=True,
        )
        assert any("inversion" in v for v in sanitizer.violations)
        problems = check_agreement(
            self._static_edges(), sanitizer.observed_edges()
        )
        assert any("tier order" in p for p in problems)

    def test_smoke_runs_without_sanitizer(self):
        cluster = run_interleaved_sessions(sessions=2, rounds=1)
        assert cluster.master.list_files() == []  # every script unlinks

"""Failure-injection tests: torn writes, corrupt records, crash points.

These exercise the recovery paths the paper's durability discussion
relies on (Section 4.2: the compressed data must survive remounts and
failures of the file system).
"""

import pytest

from repro.databases.common import CorruptRecord, frame_record, read_frames
from repro.databases.minileveldb import MiniLevelDB
from repro.databases.minimongo import MiniMongo
from repro.fs import CompressFS, PassthroughFS


class TestTornFrames:
    def test_torn_tail_frame_is_dropped(self):
        whole = frame_record(b"complete") + frame_record(b"also complete")
        torn = whole + frame_record(b"this one is torn")[:-5]
        assert read_frames(torn) == [b"complete", b"also complete"]

    def test_torn_header_is_dropped(self):
        whole = frame_record(b"complete")
        assert read_frames(whole + b"\x01\x02\x03") == [b"complete"]

    def test_corrupted_body_raises(self):
        frame = bytearray(frame_record(b"payload"))
        frame[-1] ^= 0xFF
        with pytest.raises(CorruptRecord):
            read_frames(bytes(frame))

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            frame_record(b"")

    def test_padding_between_frames_skipped(self):
        data = frame_record(b"a") + b"\x00" * 32 + frame_record(b"b")
        assert read_frames(data) == [b"a", b"b"]


class TestLSMCrashRecovery:
    def _crash_and_reopen(self, fs, **kwargs):
        """Simulate a crash by discarding the handle and reopening."""
        return MiniLevelDB(fs, **kwargs)

    def test_torn_wal_write_loses_only_last_record(self):
        fs = PassthroughFS(block_size=256)
        db = MiniLevelDB(fs, memtable_limit=1 << 20)
        db.put(b"safe-1", b"v1")
        db.put(b"safe-2", b"v2")
        # Tear the last WAL frame, as a crash mid-append would.
        wal = db._wal_path
        size = fs.stat(wal).size
        fs.truncate(wal, size - 3)
        recovered = self._crash_and_reopen(fs, memtable_limit=1 << 20)
        assert recovered.get(b"safe-1") == b"v1"
        assert recovered.get(b"safe-2") is None  # torn record dropped

    def test_crash_between_flush_and_manifest_is_detected(self):
        fs = PassthroughFS(block_size=256)
        db = MiniLevelDB(fs, memtable_limit=1 << 20)
        for i in range(30):
            db.put(b"k%02d" % i, b"v%02d" % i)
        db.flush_memtable()
        # Crash now: WAL already cleared, manifest written — recovery
        # must serve everything from the SSTable.
        recovered = self._crash_and_reopen(fs, memtable_limit=1 << 20)
        for i in range(30):
            assert recovered.get(b"k%02d" % i) == b"v%02d" % i

    def test_repeated_crash_reopen_cycles(self):
        fs = CompressFS(block_size=256)
        model = {}
        for cycle in range(5):
            db = MiniLevelDB(fs, memtable_limit=512, l0_limit=2)
            for i in range(20):
                key = b"key%02d" % ((cycle * 7 + i) % 40)
                value = b"cycle%d-%d" % (cycle, i)
                db.put(key, value)
                model[key] = value
            # Crash without close(): memtable contents are in the WAL.
        final = MiniLevelDB(fs, memtable_limit=512, l0_limit=2)
        for key, value in model.items():
            assert final.get(key) == value, key


class TestMongoCrashRecovery:
    def test_torn_collection_tail_drops_last_write_only(self):
        fs = PassthroughFS(block_size=256)
        db = MiniMongo(fs)
        db["c"].insert_one({"_id": "a", "v": 1})
        db["c"].insert_one({"_id": "b", "v": 2})
        path = db["c"].path
        fs.truncate(path, fs.stat(path).size - 4)
        recovered = MiniMongo(fs)
        assert recovered["c"].find_one({"_id": "a"}) == {"_id": "a", "v": 1}
        assert recovered["c"].find_one({"_id": "b"}) is None

    def test_torn_update_keeps_previous_version(self):
        fs = PassthroughFS(block_size=256)
        db = MiniMongo(fs)
        db["c"].insert_one({"_id": "doc", "v": 1})
        db["c"].update_one({"_id": "doc"}, {"$set": {"v": 2}})
        path = db["c"].path
        fs.truncate(path, fs.stat(path).size - 2)  # tear the update record
        recovered = MiniMongo(fs)
        assert recovered["c"].find_one({"_id": "doc"})["v"] == 1

    def test_torn_delete_resurrects_document(self):
        """A torn tombstone means the delete never happened — the
        previous version must come back whole."""
        fs = PassthroughFS(block_size=256)
        db = MiniMongo(fs)
        db["c"].insert_one({"_id": "doc", "v": 1})
        db["c"].delete_one({"_id": "doc"})
        path = db["c"].path
        fs.truncate(path, fs.stat(path).size - 2)
        recovered = MiniMongo(fs)
        assert recovered["c"].find_one({"_id": "doc"})["v"] == 1


# ---------------------------------------------------------------------------
# Engine-level crash points: the write-ahead journal under CrashPointDevice
# ---------------------------------------------------------------------------

import copy

from repro.core.engine import CompressDB
from repro.distributed.chunkserver import ChunkServer
from repro.storage.block_device import (
    CrashPoint,
    CrashPointDevice,
    MemoryBlockDevice,
)
from repro.storage.simclock import SimClock


def _journaled_template(journal_blocks=24, block_size=256):
    """A formatted, journaled device with one committed file on it."""
    device = MemoryBlockDevice(block_size=block_size)
    engine = CompressDB.mount(device, journal_blocks=journal_blocks)
    engine.write_file("/keep", b"pre-existing data " * 30)
    engine.fsync()
    return device


def _engine_state(engine):
    return {path: engine.read_file(path) for path in engine.list_files()}


def _assert_clean(engine):
    report = engine.fsck(repair=False)
    violations = (
        report["refcounts_fixed"]
        + report["blocks_reclaimed"]
        + report["hole_inconsistencies"]
    )
    assert violations == 0, f"fsck found violations: {report}"
    engine.check_invariants()


def _mixed_workload(engine):
    """Mixed create/write/insert/truncate/rename/unlink ops, one commit each.

    A generator: yields after every fsync so the harness can snapshot
    (when observing) or count completed operations (when crashing).
    """
    engine.create("/new")
    engine.write("/new", 0, b"abc" * 100)
    engine.fsync()
    yield
    engine.ops.insert("/keep", 7, b"MID")
    engine.fsync()
    yield
    engine.truncate("/keep", 100)
    engine.fsync()
    yield
    engine.rename("/new", "/moved")
    engine.fsync()
    yield
    engine.unlink("/keep")
    engine.fsync()
    yield


class TestEngineCrashMatrix:
    """Kill the process at every device write k; remount; verify.

    The acceptance criterion of the journal: for every crash point the
    remounted image must pass a clean ``fsck`` and its file contents
    must equal *exactly* the pre- or post-image of the interrupted
    operation — never a blend, never a loss of an earlier commit.
    """

    def _snapshots(self, template):
        device = copy.deepcopy(template)
        engine = CompressDB.mount(device)
        snaps = [_engine_state(engine)]
        for __ in _mixed_workload(engine):
            snaps.append(_engine_state(engine))
        return snaps

    def _sweep(self, tear):
        template = _journaled_template()
        snaps = self._snapshots(template)
        crash_points = 0
        k = 1
        while True:
            device = copy.deepcopy(template)
            wrapped = CrashPointDevice(device, crash_after=k, tear=tear)
            completed = 0
            finished = False
            try:
                engine = CompressDB.mount(wrapped)
                for __ in _mixed_workload(engine):
                    completed += 1
                finished = True
            except CrashPoint:
                pass
            if finished:
                break
            recovered = CompressDB.mount(device)
            state = _engine_state(recovered)
            _assert_clean(recovered)
            pre = snaps[completed]
            post = snaps[completed + 1] if completed + 1 < len(snaps) else None
            assert state == pre or state == post, (
                f"crash at write {k} (after op {completed}): recovered "
                f"state matches neither the pre- nor the post-image"
            )
            crash_points += 1
            k += 1
        # The sweep must actually have exercised the workload.
        assert crash_points > 10
        return crash_points

    def test_every_crash_point_recovers_to_pre_or_post_image(self):
        self._sweep(tear=False)

    def test_torn_block_at_crash_point_is_discarded(self):
        """The interrupted write lands half-old/half-new: recovery must
        detect the torn journal record via its CRC and discard it."""
        self._sweep(tear=True)


class TestFsyncDurability:
    """Satellite: data synced by fsync survives any later crash."""

    def test_crash_after_fsync_never_loses_synced_data(self):
        template = _journaled_template()
        payload = b"must survive " * 64
        # Write + fsync on a pristine copy, counting the writes it takes.
        device = copy.deepcopy(template)
        counter = CrashPointDevice(device, crash_after=None)
        engine = CompressDB.mount(counter)
        engine.write_file("/durable", payload)
        engine.fsync()
        writes_to_sync = counter.writes_seen
        # Now crash at every write *after* that fsync during further
        # mutations: /durable must always come back intact.
        for k in range(writes_to_sync + 1, writes_to_sync + 30):
            device = copy.deepcopy(template)
            wrapped = CrashPointDevice(device, crash_after=k)
            try:
                engine = CompressDB.mount(wrapped)
                engine.write_file("/durable", payload)
                engine.fsync()
                engine.write_file("/later-1", b"x" * 900)
                engine.fsync()
                engine.ops.insert("/keep", 3, b"yyy")
                engine.fsync()
                engine.unlink("/durable")
                engine.fsync()
                break  # workload finished before write k: sweep done
            except CrashPoint:
                pass
            recovered = CompressDB.mount(device)
            if k <= writes_to_sync:
                continue
            state = _engine_state(recovered)
            # Once fsync returned, the file exists with the synced bytes
            # until the unlink *commits* — a crash can only land on
            # images where /durable is whole (or already unlinked).
            if "/durable" in state:
                assert state["/durable"] == payload
            else:
                # The unlink committed; the rest of the image must be
                # consistent.
                _assert_clean(recovered)

    def test_fsync_reaches_the_device_not_a_buffer(self):
        """Regression (satellite): FileSystem.fsync used to only flush
        the engine's coalescing buffer; it must commit the journal."""
        from repro.fs.compressfs import CompressFS
        from repro.fs import fd as fdmod

        template = _journaled_template()
        device = copy.deepcopy(template)
        engine = CompressDB.mount(device)
        fs = CompressFS(engine=engine)
        fd = fs.open("/synced", fdmod.O_CREAT | fdmod.O_WRONLY)
        fs.write(fd, b"synced bytes")
        fs.fsync(fd)
        # Crash: discard all in-memory state, remount the raw device.
        recovered = CompressDB.mount(device)
        assert recovered.read_file("/synced") == b"synced bytes"
        _assert_clean(recovered)

    def test_close_is_a_commit_point(self):
        from repro.fs.compressfs import CompressFS
        from repro.fs import fd as fdmod

        device = copy.deepcopy(_journaled_template())
        fs = CompressFS(engine=CompressDB.mount(device))
        fd = fs.open("/closed", fdmod.O_CREAT | fdmod.O_WRONLY)
        fs.write(fd, b"closed bytes")
        fs.close(fd)
        recovered = CompressDB.mount(device)
        assert recovered.read_file("/closed") == b"closed bytes"

    def test_unflushed_changes_after_last_fsync_are_lost_cleanly(self):
        """The converse guarantee: uncommitted staged writes vanish as a
        unit — the previous image comes back whole."""
        template = _journaled_template()
        device = copy.deepcopy(template)
        engine = CompressDB.mount(device)
        engine.write_file("/never-synced", b"vanishes")
        # No fsync: simulated crash by dropping the engine.
        recovered = CompressDB.mount(device)
        assert not recovered.exists("/never-synced")
        assert recovered.read_file("/keep") == b"pre-existing data " * 30
        _assert_clean(recovered)


class TestRenameAtomicity:
    """Satellite: rename lands on old name or new name, never both/neither."""

    def test_rename_is_atomic_at_every_crash_point(self):
        template = _journaled_template()
        original = b"pre-existing data " * 30
        k = 1
        swept = 0
        while True:
            device = copy.deepcopy(template)
            wrapped = CrashPointDevice(device, crash_after=k)
            finished = False
            try:
                engine = CompressDB.mount(wrapped)
                engine.rename("/keep", "/renamed")
                engine.fsync()
                finished = True
            except CrashPoint:
                pass
            recovered = CompressDB.mount(device)
            names = set(recovered.list_files())
            assert names in ({"/keep"}, {"/renamed"}), (
                f"crash at write {k}: rename left names {names}"
            )
            surviving = next(iter(names))
            assert recovered.read_file(surviving) == original
            _assert_clean(recovered)
            if finished:
                break
            swept += 1
            k += 1
        assert swept > 0


class TestJournalReplayIdempotency:
    """Satellite: mounting (= replaying) twice converges to one state."""

    def test_double_replay_is_a_noop(self):
        template = _journaled_template()
        device = copy.deepcopy(template)
        # Crash mid-commit so the journal carries a committed batch the
        # home locations have not fully absorbed.
        wrapped = CrashPointDevice(device, crash_after=None)
        engine = CompressDB.mount(wrapped)
        engine.ops.insert("/keep", 5, b"JJJ")
        try:
            wrapped.crash_after = wrapped.writes_seen + 2
            engine.fsync()
        except CrashPoint:
            pass
        once = copy.deepcopy(device)
        CompressDB.mount(once)
        dump_once = [once.read_block(i) for i in range(once.total_blocks)]
        twice = copy.deepcopy(device)
        CompressDB.mount(twice)
        CompressDB.mount(twice)
        dump_twice = [twice.read_block(i) for i in range(twice.total_blocks)]
        assert dump_once == dump_twice


class TestChunkServerRestart:
    """Tentpole integration: a durable chunkserver replays its journal
    on restart instead of resyncing chunks from the master."""

    def _server(self):
        return ChunkServer(
            "cs-1", clock=SimClock(), compressed=True, durable=True,
            block_size=256,
        )

    def test_restart_replays_committed_chunk_mutations(self):
        server = self._server()
        server.create_chunk("c1")
        server.append("c1", b"first segment ")
        server.append("c1", b"second segment")
        server.insert("c1", 0, b">>")
        server.restart()
        assert server.read("c1", 0, 100) == b">>first segment second segment"

    def test_restart_discards_nothing_that_was_acknowledged(self):
        server = self._server()
        server.create_chunk("a")
        server.write("a", 0, b"A" * 700)
        server.create_chunk("b")
        server.write("b", 0, b"B" * 300)
        server.delete_chunk("a")
        server.restart()
        assert server.chunk_ids() == ["b"]
        assert server.read("b", 0, 300) == b"B" * 300

    def test_nondurable_server_cannot_restart(self):
        server = ChunkServer("cs-2", clock=SimClock(), durable=False)
        with pytest.raises(ValueError):
            server.restart()


# ---------------------------------------------------------------------------
# Group-commit crash points: one journal sequence covers N sessions
# ---------------------------------------------------------------------------


class TestGroupCommitCrashMatrix:
    """Kill the device at every write during an MVCC group commit.

    Four sessions commit into one group and flush once — a single
    journal commit sequence.  For every crash point the remounted image
    must pass a clean fsck and hold either *none* of the sessions'
    writes or *all* of them: the batch is atomic as a unit, so no crash
    may surface a prefix of the group.
    """

    PAYLOADS = [
        (f"/writer-{index}", f"session {index} payload ".encode() * 20)
        for index in range(4)
    ]

    def _apply_group(self, engine):
        sessions = [engine.mvcc.begin() for __ in self.PAYLOADS]
        for session, (path, data) in zip(sessions, self.PAYLOADS):
            session.create(path)
            session.write(path, 0, data)
        tickets = [session.commit() for session in sessions]
        engine.mvcc.flush_group()
        return tickets

    def _images(self, template):
        device = copy.deepcopy(template)
        engine = CompressDB.mount(device)
        pre = _engine_state(engine)
        tickets = self._apply_group(engine)
        post = _engine_state(engine)
        assert all(ticket.durable for ticket in tickets)
        assert len({ticket.lsn for ticket in tickets}) <= 1
        return pre, post

    def _sweep(self, tear):
        template = _journaled_template()
        pre, post = self._images(template)
        assert pre != post
        crash_points = 0
        k = 1
        while True:
            device = copy.deepcopy(template)
            wrapped = CrashPointDevice(device, crash_after=k, tear=tear)
            finished = False
            try:
                engine = CompressDB.mount(wrapped)
                self._apply_group(engine)
                finished = True
            except CrashPoint:
                pass
            if finished:
                break
            recovered = CompressDB.mount(device)
            state = _engine_state(recovered)
            _assert_clean(recovered)
            assert state == pre or state == post, (
                f"crash at write {k}: recovered a partial group commit — "
                f"{sorted(state)} is neither all four sessions nor none"
            )
            crash_points += 1
            k += 1
        assert crash_points > 10
        return crash_points

    def test_every_group_commit_crash_point_is_all_or_nothing(self):
        self._sweep(tear=False)

    def test_torn_write_inside_the_group_batch_discards_it_whole(self):
        self._sweep(tear=True)


# ---------------------------------------------------------------------------
# Snapshot crash points: every snapshot mutation commits atomically
# ---------------------------------------------------------------------------


def _snap_state(engine):
    """Everything a snapshot crash can damage: live files AND frozen images."""
    files = {path: engine.read_file(path) for path in engine.list_files()}
    snaps = {
        name: {
            path: engine.snapshots.read(name, path)
            for path in engine.snapshots.get(name).files
        }
        for name in engine.snapshots.names()
    }
    return files, snaps


def _snap_workload(engine):
    """Snapshot lifecycle mixed with live mutations, one commit each."""
    engine.snapshots.create("base")
    engine.fsync()
    yield
    engine.write("/keep", 0, b"overwritten after the base snapshot!")
    engine.fsync()
    yield
    engine.snapshots.create("second")
    engine.fsync()
    yield
    engine.snapshots.clone("base", "/restore")
    engine.fsync()
    yield
    engine.snapshots.rollback("base")
    engine.fsync()
    yield
    engine.snapshots.delete("second")
    engine.fsync()
    yield


class TestSnapshotCrashMatrix:
    """Kill the process at every device write during snapshot create /
    clone / rollback / delete; remount; the recovered image must pass a
    clean fsck (snapshot references included) and equal exactly the
    pre- or post-image of the interrupted operation — live files and
    frozen snapshot contents both."""

    def _observe(self, template):
        device = copy.deepcopy(template)
        engine = CompressDB.mount(device)
        states = [_snap_state(engine)]
        for __ in _snap_workload(engine):
            states.append(_snap_state(engine))
        return states

    def test_every_snapshot_crash_point_recovers_to_pre_or_post_image(self):
        template = _journaled_template()
        states = self._observe(template)
        crash_points = 0
        k = 1
        while True:
            device = copy.deepcopy(template)
            wrapped = CrashPointDevice(device, crash_after=k)
            completed = 0
            finished = False
            try:
                engine = CompressDB.mount(wrapped)
                for __ in _snap_workload(engine):
                    completed += 1
                finished = True
            except CrashPoint:
                pass
            if finished:
                break
            recovered = CompressDB.mount(device)
            state = _snap_state(recovered)
            _assert_clean(recovered)
            pre = states[completed]
            post = states[completed + 1] if completed + 1 < len(states) else None
            assert state == pre or state == post, (
                f"crash at write {k} (after op {completed}): recovered "
                f"snapshot state matches neither the pre- nor the post-image"
            )
            crash_points += 1
            k += 1
        assert crash_points > 10

"""Failure-injection tests: torn writes, corrupt records, crash points.

These exercise the recovery paths the paper's durability discussion
relies on (Section 4.2: the compressed data must survive remounts and
failures of the file system).
"""

import pytest

from repro.databases.common import CorruptRecord, frame_record, read_frames
from repro.databases.minileveldb import MiniLevelDB
from repro.databases.minimongo import MiniMongo
from repro.fs import CompressFS, PassthroughFS


class TestTornFrames:
    def test_torn_tail_frame_is_dropped(self):
        whole = frame_record(b"complete") + frame_record(b"also complete")
        torn = whole + frame_record(b"this one is torn")[:-5]
        assert read_frames(torn) == [b"complete", b"also complete"]

    def test_torn_header_is_dropped(self):
        whole = frame_record(b"complete")
        assert read_frames(whole + b"\x01\x02\x03") == [b"complete"]

    def test_corrupted_body_raises(self):
        frame = bytearray(frame_record(b"payload"))
        frame[-1] ^= 0xFF
        with pytest.raises(CorruptRecord):
            read_frames(bytes(frame))

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            frame_record(b"")

    def test_padding_between_frames_skipped(self):
        data = frame_record(b"a") + b"\x00" * 32 + frame_record(b"b")
        assert read_frames(data) == [b"a", b"b"]


class TestLSMCrashRecovery:
    def _crash_and_reopen(self, fs, **kwargs):
        """Simulate a crash by discarding the handle and reopening."""
        return MiniLevelDB(fs, **kwargs)

    def test_torn_wal_write_loses_only_last_record(self):
        fs = PassthroughFS(block_size=256)
        db = MiniLevelDB(fs, memtable_limit=1 << 20)
        db.put(b"safe-1", b"v1")
        db.put(b"safe-2", b"v2")
        # Tear the last WAL frame, as a crash mid-append would.
        wal = db._wal_path
        size = fs.stat(wal).size
        fs.truncate(wal, size - 3)
        recovered = self._crash_and_reopen(fs, memtable_limit=1 << 20)
        assert recovered.get(b"safe-1") == b"v1"
        assert recovered.get(b"safe-2") is None  # torn record dropped

    def test_crash_between_flush_and_manifest_is_detected(self):
        fs = PassthroughFS(block_size=256)
        db = MiniLevelDB(fs, memtable_limit=1 << 20)
        for i in range(30):
            db.put(b"k%02d" % i, b"v%02d" % i)
        db.flush_memtable()
        # Crash now: WAL already cleared, manifest written — recovery
        # must serve everything from the SSTable.
        recovered = self._crash_and_reopen(fs, memtable_limit=1 << 20)
        for i in range(30):
            assert recovered.get(b"k%02d" % i) == b"v%02d" % i

    def test_repeated_crash_reopen_cycles(self):
        fs = CompressFS(block_size=256)
        model = {}
        for cycle in range(5):
            db = MiniLevelDB(fs, memtable_limit=512, l0_limit=2)
            for i in range(20):
                key = b"key%02d" % ((cycle * 7 + i) % 40)
                value = b"cycle%d-%d" % (cycle, i)
                db.put(key, value)
                model[key] = value
            # Crash without close(): memtable contents are in the WAL.
        final = MiniLevelDB(fs, memtable_limit=512, l0_limit=2)
        for key, value in model.items():
            assert final.get(key) == value, key


class TestMongoCrashRecovery:
    def test_torn_collection_tail_drops_last_write_only(self):
        fs = PassthroughFS(block_size=256)
        db = MiniMongo(fs)
        db["c"].insert_one({"_id": "a", "v": 1})
        db["c"].insert_one({"_id": "b", "v": 2})
        path = db["c"].path
        fs.truncate(path, fs.stat(path).size - 4)
        recovered = MiniMongo(fs)
        assert recovered["c"].find_one({"_id": "a"}) == {"_id": "a", "v": 1}
        assert recovered["c"].find_one({"_id": "b"}) is None

    def test_torn_update_keeps_previous_version(self):
        fs = PassthroughFS(block_size=256)
        db = MiniMongo(fs)
        db["c"].insert_one({"_id": "doc", "v": 1})
        db["c"].update_one({"_id": "doc"}, {"$set": {"v": 2}})
        path = db["c"].path
        fs.truncate(path, fs.stat(path).size - 2)  # tear the update record
        recovered = MiniMongo(fs)
        assert recovered["c"].find_one({"_id": "doc"})["v"] == 1

    def test_torn_delete_resurrects_document(self):
        """A torn tombstone means the delete never happened — the
        previous version must come back whole."""
        fs = PassthroughFS(block_size=256)
        db = MiniMongo(fs)
        db["c"].insert_one({"_id": "doc", "v": 1})
        db["c"].delete_one({"_id": "doc"})
        path = db["c"].path
        fs.truncate(path, fs.stat(path).size - 2)
        recovered = MiniMongo(fs)
        assert recovered["c"].find_one({"_id": "doc"})["v"] == 1

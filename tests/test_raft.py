"""Tests for the Raft-replicated metadata plane.

Covers the persistent log (recovery, torn tails, truncation), leader
election (safety under a seeded 200-interleaving storm), the
kill-the-leader crash matrix (zero committed-metadata loss), leader
leases, and the NotLeader wire mapping.
"""

import random

import pytest

from repro.distributed.replicated import MasterGroup, ReplicatedMaster
from repro.fs.errors import TryAgain, wire_code, wire_error_payload
from repro.raft.log import LogEntry, RaftLog, RaftLogError
from repro.raft.node import LEADER, NodeCrashed, NotLeaderError, RaftConfig
from repro.raft.statemachine import encode_command
from repro.serving.client import raise_wire_error
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.simclock import RAM_DISK, SimClock


def _device():
    return MemoryBlockDevice(block_size=4096, profile=RAM_DISK, clock=SimClock())


class TestRaftLog:
    def test_append_and_reads(self):
        log = RaftLog(_device())
        entries = log.append(1, [b"a", b"b"])
        assert [e.index for e in entries] == [1, 2]
        assert log.last_index == 2
        assert log.last_term == 1
        assert log.term_at(0) == 0
        assert log.entry(2).command == b"b"
        assert [e.command for e in log.entries_from(1)] == [b"a", b"b"]

    def test_recovery_round_trip(self):
        device = _device()
        log = RaftLog(device)
        log.set_hard_state(3, "m1")
        log.append(1, [b"one"])
        log.append(3, [b"two", b"three"])
        recovered = RaftLog(device)
        assert recovered.current_term == 3
        assert recovered.voted_for == "m1"
        assert recovered.last_index == 3
        assert [e.command for e in recovered.entries_from(1)] == [
            b"one",
            b"two",
            b"three",
        ]
        assert [e.term for e in recovered.entries_from(1)] == [1, 3, 3]

    def test_torn_tail_drops_last_batch_only(self):
        device = _device()
        log = RaftLog(device)
        log.append(1, [b"acked"])
        tail_start = log._batches[-1].start_block + log._batches[-1].blocks
        log.append(1, [b"torn"])
        # Corrupt the second batch's commit record: a torn append.
        commit_block = log._next_block - 1
        assert commit_block > tail_start
        device.write_blocks([(commit_block, b"\xff" * device.block_size)])
        recovered = RaftLog(device)
        assert recovered.last_index == 1
        assert recovered.entry(1).command == b"acked"

    def test_truncate_from_survives_recovery(self):
        device = _device()
        log = RaftLog(device)
        log.append(1, [b"a", b"b", b"c"])
        log.append(2, [b"d"])
        log.truncate_from(2)  # partial batch: keeps "a", rewrites it
        assert log.last_index == 1
        log.append(3, [b"b2"])
        recovered = RaftLog(device)
        assert [(e.term, e.command) for e in recovered.entries_from(1)] == [
            (1, b"a"),
            (3, b"b2"),
        ]

    def test_truncate_whole_log_stamps_terminator(self):
        device = _device()
        log = RaftLog(device)
        log.append(1, [b"a"])
        log.truncate_from(1)
        assert log.last_index == 0
        assert RaftLog(device).last_index == 0

    def test_follower_append_requires_contiguity(self):
        log = RaftLog(_device())
        with pytest.raises(RaftLogError):
            log.append_entries([LogEntry(term=1, index=5, command=b"x")])

    def test_oversized_command_rejected(self):
        log = RaftLog(_device())
        with pytest.raises(RaftLogError):
            log.append(1, [b"x" * 5000])


def _group(masters=3, seed=0, **kwargs):
    return MasterGroup(
        ["node0", "node1", "node2"], masters=masters, seed=seed, **kwargs
    )


class TestElection:
    def test_single_leader_elected(self):
        group = _group()
        name = group.elect()
        leader = group.leader()
        assert leader is not None and leader.name == name
        assert sum(
            1
            for node in group.nodes.values()
            if node.role == LEADER and not node.crashed
        ) == 1

    def test_failover_within_timeout_bound(self):
        config = RaftConfig()
        group = _group(config=config)
        group.elect()
        group.crash_leader()
        start = group.clock.now
        group.elect()
        elapsed = group.clock.now - start
        # Lease expiry + a handful of randomized election timeouts; far
        # under the pathological bound but crucially bounded at all.
        assert elapsed <= config.lease_duration + 10 * config.election_timeout_max

    def test_no_leader_without_majority(self):
        group = _group()
        group.elect()
        names = sorted(group.nodes)
        group.crash(names[0])
        group.crash(names[1])
        with pytest.raises(TimeoutError):
            group.elect(deadline_s=2.0)

    def test_restarted_node_rejoins_as_follower(self):
        group = _group()
        group.elect()
        killed = group.crash_leader()
        group.elect()
        node = group.restart(killed)
        assert node.role != LEADER
        for __ in range(10):
            group.tick()
        assert group.live_names() == sorted(group.nodes)


class TestElectionStorm:
    def test_at_most_one_leader_per_term_across_200_interleavings(self):
        """Seeded storm: 200 crash/restart/tick schedules, then prove the
        Election Safety property from the transport's leader ledger."""
        group = _group(seed=42)
        rng = random.Random(1234)
        names = sorted(group.nodes)
        for round_no in range(200):
            crashed = [n for n in names if group.nodes[n].crashed]
            live = [n for n in names if not group.nodes[n].crashed]
            action = rng.random()
            if action < 0.25 and len(live) > 2:
                group.crash(rng.choice(live))
            elif action < 0.5 and crashed:
                group.restart(rng.choice(crashed))
            for __ in range(rng.randrange(1, 5)):
                group.tick()
                group.clock.charge(rng.uniform(0.01, 0.12))
        ledger = group.transport.leaders_by_term()
        assert ledger, "the storm never elected anyone"
        for term, leaders in ledger.items():
            assert len(leaders) <= 1, f"term {term} elected {sorted(leaders)}"


CRASH_POINTS = ["before_append", "after_append", "before_commit", "after_commit"]


class TestKillLeaderMatrix:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_zero_committed_metadata_loss(self, point):
        group = _group(seed=7)
        facade = ReplicatedMaster(group)
        # Commands acked before the crash are committed metadata.
        acked = [f"/pre{i}" for i in range(3)]
        for path in acked:
            facade.create(path)
        leader = group.leader()
        assert leader is not None
        leader.install_crash_point(point)
        with pytest.raises(NodeCrashed):
            with group.lock:
                leader.propose(encode_command("create", path="/inflight"))
        # Failover: the survivors elect a new leader.
        killed = leader.name
        new_leader = group.elect()
        assert new_leader != killed
        survivor = group.leader_master()
        for path in acked:
            assert survivor.exists(path), f"{point}: lost committed {path}"
        if point == "after_commit":
            # Committed (and applied on the old leader) before the crash:
            # it reached a majority, so the new leader must carry it.
            assert survivor.exists("/inflight")
        if point == "before_append":
            # Never entered any log; it must not resurrect.
            assert not survivor.exists("/inflight")

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_restarted_leader_converges(self, point):
        group = _group(seed=11)
        facade = ReplicatedMaster(group)
        facade.create("/durable")
        leader = group.leader()
        leader.install_crash_point(point)
        with pytest.raises(NodeCrashed):
            with group.lock:
                leader.propose(encode_command("create", path="/inflight"))
        killed = leader.name
        group.elect()
        facade.create("/after-failover")
        group.restart(killed)
        for __ in range(30):
            group.tick()
            group.clock.charge(0.05)
        digests = group.state_digests()
        assert len(digests) == 3
        assert len(set(digests.values())) == 1, digests
        survivor = group.leader_master()
        assert survivor.exists("/durable")
        assert survivor.exists("/after-failover")


class TestLease:
    def test_leader_lease_expires_without_heartbeats(self):
        config = RaftConfig()
        group = _group(config=config)
        group.elect()
        leader = group.leader()
        assert leader.has_lease()
        # Freeze the leader (no ticks) and let simulated time pass.
        group.clock.charge(config.lease_duration + 0.01)
        assert not leader.has_lease()
        assert group.leader() is None

    def test_lease_shorter_than_election_timeout(self):
        config = RaftConfig()
        assert config.lease_duration < config.election_timeout_min

    def test_deposed_replica_redirects(self):
        group = _group()
        group.elect()
        follower = next(
            node
            for name, node in sorted(group.nodes.items())
            if node.role != LEADER
        )
        with pytest.raises(NotLeaderError) as excinfo:
            follower.propose(encode_command("noop"))
        assert excinfo.value.retry_after_ms > 0


class TestWireMapping:
    def test_not_leader_is_try_again_on_the_wire(self):
        exc = NotLeaderError("m1 is a follower", leader_hint="m0")
        assert wire_code(exc) == 11  # EAGAIN: TryAgain's frozen code

    def test_leader_hint_round_trip(self):
        exc = NotLeaderError(
            "m1 is a follower", leader_hint="m0", retry_after_ms=300.0
        )
        payload = wire_error_payload(exc)
        assert payload["error"] == "TryAgain"
        assert payload["leader_hint"] == "m0"
        with pytest.raises(TryAgain) as excinfo:
            raise_wire_error(payload)
        raised = excinfo.value
        assert raised.retry_after_ms == 300.0
        assert raised.leader_hint == "m0"

"""Tests for the SQL tokenizer and parser."""

import pytest

from repro.databases.sql_parser import (
    BinaryOp,
    Column,
    CreateTable,
    Delete,
    FuncCall,
    Insert,
    Literal,
    SQLSyntaxError,
    Select,
    Star,
    UnaryOp,
    Update,
    parse,
)


class TestSelect:
    def test_select_star(self):
        statement = parse("SELECT * FROM docs")
        assert isinstance(statement, Select)
        assert isinstance(statement.items[0].expr, Star)
        assert statement.table == "docs"

    def test_select_columns(self):
        statement = parse("SELECT id, body FROM docs")
        assert [item.expr for item in statement.items] == [Column("id"), Column("body")]

    def test_where_equality(self):
        statement = parse("SELECT * FROM t WHERE id = 5")
        assert statement.where == BinaryOp("=", Column("id"), Literal(5))

    def test_where_conjunction(self):
        statement = parse("SELECT * FROM t WHERE a >= 1 AND b <= 2")
        assert isinstance(statement.where, BinaryOp)
        assert statement.where.op == "AND"

    def test_alias(self):
        statement = parse("SELECT sum(cnt) total FROM t")
        assert statement.items[0].alias == "total"

    def test_paper_range_scan_query(self):
        statement = parse(
            "select id, sum(cnt)/count(dt) avg_cnt from tbl "
            "where idx >= 0 and idx <= 8 group by id order by avg_cnt desc;"
        )
        assert isinstance(statement, Select)
        assert statement.group_by == (Column("id"),)
        assert statement.order_by[0].descending
        ratio = statement.items[1].expr
        assert isinstance(ratio, BinaryOp) and ratio.op == "/"
        assert ratio.left == FuncCall("sum", Column("cnt"))
        assert ratio.right == FuncCall("count", Column("dt"))

    def test_order_by_multiple(self):
        statement = parse("SELECT * FROM t ORDER BY a ASC, b DESC")
        assert not statement.order_by[0].descending
        assert statement.order_by[1].descending

    def test_limit(self):
        assert parse("SELECT * FROM t LIMIT 7").limit == 7

    def test_count_star(self):
        statement = parse("SELECT count(*) FROM t")
        assert statement.items[0].expr == FuncCall("count", Star())

    def test_string_literal_with_escape(self):
        statement = parse("SELECT * FROM t WHERE name = 'O''Brien'")
        assert statement.where.right == Literal("O'Brien")

    def test_arithmetic_precedence(self):
        statement = parse("SELECT a + b * c FROM t")
        expr = statement.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override_precedence(self):
        statement = parse("SELECT (a + b) * c FROM t")
        expr = statement.items[0].expr
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_not_operator(self):
        statement = parse("SELECT * FROM t WHERE NOT a = 1")
        assert isinstance(statement.where, UnaryOp)
        assert statement.where.op == "NOT"

    def test_or_binds_looser_than_and(self):
        statement = parse("SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3")
        assert statement.where.op == "OR"


class TestOtherStatements:
    def test_create_table(self):
        statement = parse("CREATE TABLE t (id INT PRIMARY KEY, body TEXT, score REAL)")
        assert isinstance(statement, CreateTable)
        assert statement.columns[0].primary_key
        assert [c.type_name for c in statement.columns] == ["INT", "TEXT", "REAL"]

    def test_type_aliases(self):
        statement = parse("CREATE TABLE t (a INTEGER, b VARCHAR, c FLOAT)")
        assert [c.type_name for c in statement.columns] == ["INT", "TEXT", "REAL"]

    def test_insert_positional(self):
        statement = parse("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, Insert)
        assert statement.rows == ((Literal(1), Literal("x")), (Literal(2), Literal("y")))

    def test_insert_with_columns(self):
        statement = parse("INSERT INTO t (id, body) VALUES (1, 'x')")
        assert statement.columns == ("id", "body")

    def test_insert_negative_and_null(self):
        statement = parse("INSERT INTO t VALUES (-5, NULL, 2.5)")
        assert statement.rows[0] == (Literal(-5), Literal(None), Literal(2.5))

    def test_update(self):
        statement = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert isinstance(statement, Update)
        assert statement.assignments[0] == ("a", Literal(1))
        assert statement.where is not None

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE id < 10")
        assert isinstance(statement, Delete)

    def test_delete_without_where(self):
        assert parse("DELETE FROM t").where is None


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "",
            "SELEC * FROM t",
            "SELECT FROM t",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "INSERT INTO t",
            "CREATE TABLE t ()",
            "CREATE TABLE t (a BLOB)",
            "SELECT unknown_func(a) FROM t",
            "SELECT * FROM t LIMIT x",
            "SELECT * FROM t; SELECT * FROM u",
            "SELECT * FROM t WHERE a = $",
        ],
    )
    def test_rejects_bad_sql(self, sql):
        with pytest.raises(SQLSyntaxError):
            parse(sql)

    def test_error_message_has_position(self):
        with pytest.raises(SQLSyntaxError) as info:
            parse("SELECT * FROM t WHERE a ==")
        assert "near" in str(info.value)

"""Tests for the column store's lightweight DELETE and OPTIMIZE."""

import pytest

from repro.databases.minicolumn import ColumnStoreError, MiniColumn
from repro.fs import CompressFS, PassthroughFS


@pytest.fixture(params=["passthrough", "compress"])
def db(request):
    fs = PassthroughFS(block_size=256) if request.param == "passthrough" else CompressFS(block_size=256)
    database = MiniColumn(fs)
    database.execute("CREATE TABLE t (id INT, grp INT, name TEXT)")
    rows = ", ".join(f"({i}, {i % 4}, 'n{i}')" for i in range(40))
    database.execute(f"INSERT INTO t VALUES {rows}")
    return database


class TestDelete:
    def test_delete_hides_rows(self, db):
        db.execute("DELETE FROM t WHERE grp = 1")
        rows = db.execute("SELECT id FROM t")
        assert [r["id"] for r in rows] == [i for i in range(40) if i % 4 != 1]

    def test_delete_all(self, db):
        db.execute("DELETE FROM t")
        assert db.execute("SELECT count(*) c FROM t")[0]["c"] == 0

    def test_delete_is_idempotent(self, db):
        db.execute("DELETE FROM t WHERE id = 5")
        db.execute("DELETE FROM t WHERE id = 5")
        assert db.table("t").deleted_count() == 1

    def test_aggregates_ignore_deleted(self, db):
        db.execute("DELETE FROM t WHERE id >= 20")
        result = db.execute("SELECT count(*) c, max(id) m FROM t")[0]
        assert result == {"c": 20, "m": 19}

    def test_update_skips_deleted_rows(self, db):
        db.execute("DELETE FROM t WHERE id = 3")
        db.execute("UPDATE t SET grp = 99")
        # The dead row was not updated; live rows were.
        assert db.table("t").read_row(3)["grp"] == 3
        assert db.execute("SELECT count(*) c FROM t WHERE grp = 99")[0]["c"] == 39

    def test_delete_with_zone_pruned_scan(self, db):
        db.execute("DELETE FROM t WHERE id >= 10 AND id <= 15")
        rows = db.execute("SELECT id FROM t WHERE id >= 8 AND id <= 17")
        assert [r["id"] for r in rows] == [8, 9, 16, 17]

    def test_mark_out_of_range_rejected(self, db):
        with pytest.raises(ColumnStoreError):
            db.table("t").mark_deleted([999])

    def test_mask_survives_reopen(self, db):
        db.execute("DELETE FROM t WHERE grp = 0")
        reopened = MiniColumn(db.fs)
        assert reopened.execute("SELECT count(*) c FROM t")[0]["c"] == 30


class TestOptimize:
    def test_optimize_compacts_storage(self, db):
        db.execute("DELETE FROM t WHERE id < 30")
        size_before = db.fs.logical_bytes()
        removed = db.table("t").optimize()
        assert removed == 30
        assert db.fs.logical_bytes() < size_before
        assert db.table("t").row_count() == 10
        assert db.table("t").deleted_count() == 0

    def test_optimize_preserves_results(self, db):
        db.execute("DELETE FROM t WHERE grp = 2")
        before = db.execute("SELECT id, name FROM t ORDER BY id")
        db.table("t").optimize()
        assert db.execute("SELECT id, name FROM t ORDER BY id") == before

    def test_optimize_rebuilds_zone_maps(self, db):
        db.execute("DELETE FROM t WHERE id < 38")
        db.table("t").optimize()
        entries = db.table("t")._files["id"].zone_entries()
        assert len(entries) == 1
        assert entries[0][2:4] == (38.0, 39.0)

    def test_optimize_noop_when_clean(self, db):
        assert db.table("t").optimize() == 0

    def test_queries_after_optimize(self, db):
        db.execute("DELETE FROM t WHERE id >= 10")
        db.table("t").optimize()
        db.execute("INSERT INTO t VALUES (100, 0, 'new')")
        rows = db.execute("SELECT id FROM t WHERE id >= 50")
        assert [r["id"] for r in rows] == [100]

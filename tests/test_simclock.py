"""Unit tests for the simulated clock and cost profiles."""

import pytest

from repro.storage.simclock import (
    CLOUD_ESSD,
    DATACENTER_LAN,
    HDD_5400RPM,
    RAM_DISK,
    DeviceProfile,
    SimClock,
    Stopwatch,
)


class TestProfiles:
    def test_read_cost_scales_with_size(self):
        small = HDD_5400RPM.read_cost(1024)
        large = HDD_5400RPM.read_cost(1024 * 1024)
        assert large > small

    def test_seek_dominates_small_hdd_reads(self):
        cost = HDD_5400RPM.read_cost(512)
        assert cost == pytest.approx(HDD_5400RPM.seek_latency_s, rel=0.01)

    def test_essd_is_faster_than_hdd(self):
        assert CLOUD_ESSD.read_cost(4096) < HDD_5400RPM.read_cost(4096)

    def test_ram_profile_is_nearly_free(self):
        assert RAM_DISK.read_cost(1024) < 1e-6

    def test_network_transfer_cost_includes_rtt(self):
        assert DATACENTER_LAN.transfer_cost(0) == DATACENTER_LAN.rtt_s


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_charges_accumulate(self):
        clock = SimClock()
        clock.charge(1.0)
        clock.charge(0.5)
        assert clock.now == pytest.approx(1.5)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge(-1.0)

    def test_monotone_over_many_charges(self):
        clock = SimClock()
        last = 0.0
        for __ in range(100):
            clock.charge_read(CLOUD_ESSD, 4096)
            assert clock.now >= last
            last = clock.now

    def test_device_and_network_charges_compose(self):
        clock = SimClock()
        clock.charge_read(HDD_5400RPM, 1024)
        clock.charge_transfer(DATACENTER_LAN, 1024)
        expected = HDD_5400RPM.read_cost(1024) + DATACENTER_LAN.transfer_cost(1024)
        assert clock.now == pytest.approx(expected)

    def test_reset(self):
        clock = SimClock()
        clock.charge(2.0)
        clock.reset()
        assert clock.now == 0.0


class TestStopwatch:
    def test_measures_span(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.charge(0.25)
        assert watch.elapsed == pytest.approx(0.25)

    def test_restart(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.charge(1.0)
        watch.restart()
        clock.charge(0.5)
        assert watch.elapsed == pytest.approx(0.5)


class TestCustomProfile:
    def test_metadata_cost(self):
        profile = DeviceProfile("custom", 1e-3, 1e6, 1e-4)
        clock = SimClock()
        clock.charge_metadata(profile)
        assert clock.now == pytest.approx(1e-4)

    def test_write_cost_formula(self):
        profile = DeviceProfile("custom", 0.01, 1000.0, 0.0)
        assert profile.write_cost(500) == pytest.approx(0.01 + 0.5)


class TestWritePenalty:
    def test_writes_cost_more_than_reads_on_hdd(self):
        assert HDD_5400RPM.write_cost(4096) > HDD_5400RPM.read_cost(4096)

    def test_default_profile_is_symmetric(self):
        profile = DeviceProfile("sym", 1e-3, 1e6, 1e-4)
        assert profile.write_cost(100) == profile.read_cost(100)

    def test_penalty_scales_linearly(self):
        base = DeviceProfile("a", 1e-3, 1e6, 0.0, write_penalty=1.0)
        double = DeviceProfile("b", 1e-3, 1e6, 0.0, write_penalty=2.0)
        assert double.write_cost(500) == pytest.approx(2 * base.write_cost(500))

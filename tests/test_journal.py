"""Unit tests for the write-ahead journal (repro.journal / repro.storage.journal).

Covers the record format round trip, torn-tail detection in
:meth:`Journal.recover`, replay idempotency, the staged-transaction
semantics of :class:`JournalDevice`, and the 4-phase commit's write
ordering.
"""

import pytest

from repro.journal import (
    Journal,
    JournalDevice,
    JournalError,
    TransactionError,
    require_transaction,
)
from repro.storage.block_device import (
    BlockDeviceError,
    MemoryBlockDevice,
)

BLOCK = 128


def make_device(journal_len=8, data_blocks=16):
    """A device with a journal region at [1, 1+journal_len) and some data."""
    device = MemoryBlockDevice(block_size=BLOCK)
    for __ in range(1 + journal_len + data_blocks):
        device.allocate()
    journal = Journal(start=1, length=journal_len, block_size=BLOCK)
    return device, journal


def data_start(journal):
    return journal.start + journal.length


class TestJournalFormat:
    def test_round_trip_single_write(self):
        device, journal = make_device()
        home = data_start(journal)
        journal.append_batch(device, lsn=1, writes=[(home, b"payload")])
        recovered = journal.recover(device)
        assert recovered is not None
        lsn, writes = recovered
        assert lsn == 1
        assert writes == [(home, b"payload" + b"\x00" * (BLOCK - 7))]

    def test_round_trip_multiple_descriptor_groups(self):
        device, journal = make_device(journal_len=32, data_blocks=24)
        base = data_start(journal)
        batch = [(base + i, bytes([i]) * 10) for i in range(20)]
        journal.append_batch(device, lsn=7, writes=batch)
        recovered = journal.recover(device)
        assert recovered is not None
        lsn, writes = recovered
        assert lsn == 7
        assert [home for home, __ in writes] == [base + i for i in range(20)]
        for (__, data), i in zip(writes, range(20)):
            assert data == bytes([i]) * 10 + b"\x00" * (BLOCK - 10)

    def test_blocks_needed_accounts_for_descriptors_and_commit(self):
        __, journal = make_device()
        per_desc = (BLOCK - 20) // 12
        assert journal.blocks_needed(1) == 1 + 1 + 1
        assert journal.blocks_needed(per_desc) == per_desc + 1 + 1
        assert journal.blocks_needed(per_desc + 1) == per_desc + 1 + 2 + 1

    def test_oversized_batch_rejected(self):
        device, journal = make_device(journal_len=4)
        base = data_start(journal)
        writes = [(base + i, b"x") for i in range(10)]
        with pytest.raises(JournalError):
            journal.append_batch(device, 1, writes)

    def test_empty_batch_rejected(self):
        device, journal = make_device()
        with pytest.raises(JournalError):
            journal.append_batch(device, 1, [])

    def test_empty_region_recovers_nothing(self):
        device, journal = make_device()
        assert journal.recover(device) is None
        assert journal.next_lsn(device) == 1

    def test_next_lsn_follows_committed_batch(self):
        device, journal = make_device()
        journal.append_batch(device, 5, [(data_start(journal), b"x")])
        assert journal.next_lsn(device) == 6


class TestTornBatches:
    def _committed(self, journal_len=8):
        device, journal = make_device(journal_len=journal_len)
        base = data_start(journal)
        journal.append_batch(device, 3, [(base, b"aaa"), (base + 1, b"bbb")])
        return device, journal

    def test_missing_commit_block_discards_batch(self):
        device, journal = self._committed()
        encoded = journal.encode_batch(3, [(data_start(journal), b"x")])
        # Rewrite the region with everything except the commit block.
        device.write_blocks(encoded[:-1])
        device.write_blocks(
            [(encoded[-1][0], b"\x00" * BLOCK)]
        )
        assert journal.recover(device) is None
        assert journal.replay(device) == 0

    def test_corrupt_data_block_discards_batch(self):
        device, journal = self._committed()
        # The first data block of the batch sits right after the descriptor.
        corrupt = journal.start + 1
        device.write_blocks([(corrupt, b"garbage")])
        assert journal.recover(device) is None

    def test_corrupt_descriptor_discards_batch(self):
        device, journal = self._committed()
        device.write_blocks([(journal.start, b"\xff" * BLOCK)])
        assert journal.recover(device) is None

    def test_commit_lsn_mismatch_discards_batch(self):
        device, journal = self._committed()
        # Append a new batch's descriptor+data over the old one but keep
        # the old commit block: the LSNs disagree, so nothing recovers.
        encoded = journal.encode_batch(9, [(data_start(journal), b"new")])
        device.write_blocks(encoded[:-1])
        assert journal.recover(device) is None

    def test_replay_applies_committed_writes(self):
        device, journal = self._committed()
        base = data_start(journal)
        device.write_blocks([(base, b"stale"), (base + 1, b"stale")])
        assert journal.replay(device) == 2
        assert device.read_block(base)[:3] == b"aaa"
        assert device.read_block(base + 1)[:3] == b"bbb"

    def test_replay_twice_is_a_noop(self):
        device, journal = self._committed()
        assert journal.replay(device) == 2
        first = [device.read_block(i) for i in range(device.total_blocks)]
        assert journal.replay(device) == 2
        second = [device.read_block(i) for i in range(device.total_blocks)]
        assert first == second


class TestJournalDevice:
    def _journaled(self):
        inner, journal = make_device()
        return JournalDevice(inner, journal), inner, journal

    def test_writes_stage_until_commit(self):
        dev, inner, journal = self._journaled()
        home = data_start(journal)
        dev.write_blocks([(home, b"staged")])
        assert inner.read_block(home)[:6] != b"staged"
        assert dev.read_block(home)[:6] == b"staged"  # read-your-writes
        dev.commit()
        assert inner.read_block(home)[:6] == b"staged"

    def test_fresh_blocks_bypass_journal(self):
        dev, inner, journal = self._journaled()
        fresh = dev.allocate()
        assert dev.can_overwrite_in_place(fresh)
        dev.write_blocks([(fresh, b"direct")])
        dev.commit()
        # A fresh-only epoch writes no journal records.
        assert journal.recover(inner) is None
        assert inner.read_block(fresh)[:6] == b"direct"

    def test_overwrites_go_through_journal(self):
        dev, inner, journal = self._journaled()
        home = data_start(journal)
        dev.write_blocks([(home, b"logged")])
        journal_blocks = dev.commit()
        assert journal_blocks == 3  # descriptor + data + commit
        recovered = journal.recover(inner)
        assert recovered is not None
        assert recovered[1][0][0] == home

    def test_fresh_set_resets_at_commit(self):
        dev, __, __ = self._journaled()
        fresh = dev.allocate()
        dev.write_blocks([(fresh, b"v1")])
        dev.commit()
        # Same block in the next epoch is part of the committed image.
        assert not dev.can_overwrite_in_place(fresh)

    def test_free_of_fresh_block_is_immediate(self):
        dev, inner, __ = self._journaled()
        fresh = dev.allocate()
        dev.write_blocks([(fresh, b"temp")])
        dev.free(fresh)
        assert dev.txn.is_empty()
        assert inner.allocate() == fresh  # immediately reusable

    def test_free_of_durable_block_is_deferred(self):
        dev, inner, journal = self._journaled()
        home = data_start(journal)
        dev.free(home)
        assert home in dev.txn.deferred
        with pytest.raises(BlockDeviceError):
            dev.free(home)  # double free caught while deferred

    def test_freeing_journal_region_rejected(self):
        dev, __, journal = self._journaled()
        with pytest.raises(BlockDeviceError):
            dev.free(journal.start)

    def test_read_blocks_merges_staged_and_device(self):
        dev, inner, journal = self._journaled()
        a, b = data_start(journal), data_start(journal) + 1
        inner.write_blocks([(a, b"old-a"), (b, b"old-b")])
        dev.write_blocks([(b, b"new-b")])
        got = dev.read_blocks([a, b, b, a])
        assert got[0][:5] == b"old-a"
        assert got[1][:5] == b"new-b"
        assert got[2][:5] == b"new-b"
        assert got[3][:5] == b"old-a"

    def test_oversized_write_rejected(self):
        dev, __, journal = self._journaled()
        with pytest.raises(BlockDeviceError):
            dev.write_blocks([(data_start(journal), b"x" * (BLOCK + 1))])

    def test_commit_of_empty_transaction_is_noop(self):
        dev, inner, __ = self._journaled()
        before = [inner.read_block(i) for i in range(inner.total_blocks)]
        assert dev.commit() == 0
        after = [inner.read_block(i) for i in range(inner.total_blocks)]
        assert before == after

    def test_lsn_advances_per_commit(self):
        dev, __, journal = self._journaled()
        home = data_start(journal)
        assert dev.lsn == 1
        dev.write_blocks([(home, b"one")])
        dev.commit()
        dev.write_blocks([(home, b"two")])
        dev.commit()
        assert dev.lsn == 3
        assert journal.next_lsn(dev.inner) == 3


class TestRequireTransaction:
    def test_plain_device_is_trivially_transactional(self):
        device = MemoryBlockDevice(block_size=BLOCK)
        require_transaction(device)  # must not raise

    def test_journal_device_reports_open_transaction(self):
        dev, __, __ = TestJournalDevice()._journaled()
        assert dev.in_transaction
        require_transaction(dev)  # must not raise

    def test_closed_transaction_rejected(self):
        class Stale:
            in_transaction = False

        with pytest.raises(TransactionError):
            require_transaction(Stale())

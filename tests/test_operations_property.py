"""Property-based tests: the engine vs a plain-bytearray reference model.

DESIGN.md invariant 1: any sequence of manipulations on a CompressFS
file must read back identically to the same operations applied to a
bytearray — while every internal invariant (refcounts, dedup, hole
accounting) keeps holding.
"""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.engine import CompressDB

_PAYLOAD = st.binary(max_size=200)


class EngineModel(RuleBasedStateMachine):
    """Random op sequences against the engine and a bytearray twin."""

    def __init__(self):
        super().__init__()
        self.engine = CompressDB(block_size=32, page_capacity=3)
        self.engine.create("/f")
        self.reference = bytearray()

    @rule(data=_PAYLOAD)
    def append(self, data):
        self.engine.ops.append("/f", data)
        self.reference.extend(data)

    @rule(data=_PAYLOAD, position=st.floats(0, 1))
    def insert(self, data, position):
        offset = int(position * len(self.reference))
        self.engine.ops.insert("/f", offset, data)
        self.reference[offset:offset] = data

    @rule(position=st.floats(0, 1), fraction=st.floats(0, 1))
    def delete(self, position, fraction):
        offset = int(position * len(self.reference))
        length = int(fraction * (len(self.reference) - offset))
        self.engine.ops.delete("/f", offset, length)
        del self.reference[offset : offset + length]

    @rule(data=_PAYLOAD, position=st.floats(0, 1))
    def replace(self, data, position):
        if not self.reference:
            return
        offset = int(position * len(self.reference))
        data = data[: len(self.reference) - offset]
        self.engine.ops.replace("/f", offset, data)
        self.reference[offset : offset + len(data)] = data

    @rule(data=_PAYLOAD, position=st.floats(0, 1.2))
    def posix_write(self, data, position):
        offset = int(position * (len(self.reference) + 1))
        self.engine.write("/f", offset, data)
        if not data:
            return  # POSIX: zero-length writes never extend the file
        if offset > len(self.reference):
            self.reference.extend(b"\x00" * (offset - len(self.reference)))
        self.reference[offset : offset + len(data)] = data

    @rule(position=st.floats(0, 1.2))
    def truncate(self, position):
        size = int(position * (len(self.reference) + 8))
        self.engine.truncate("/f", size)
        if size < len(self.reference):
            del self.reference[size:]
        else:
            self.reference.extend(b"\x00" * (size - len(self.reference)))

    @invariant()
    def contents_match(self):
        assert self.engine.read_file("/f") == bytes(self.reference)

    @invariant()
    def engine_invariants_hold(self):
        self.engine.check_invariants()

    @invariant()
    def size_matches(self):
        assert self.engine.file_size("/f") == len(self.reference)


EngineModelTest = EngineModel.TestCase
EngineModelTest.settings = settings(max_examples=30, stateful_step_count=20, deadline=None)


@given(
    chunks=st.lists(st.binary(min_size=1, max_size=80), min_size=1, max_size=8),
    pattern=st.binary(min_size=1, max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_search_matches_naive_find(chunks, pattern):
    """DESIGN.md invariant 5: search == offsets of bytes.find."""
    engine = CompressDB(block_size=16, page_capacity=3)
    engine.create("/f")
    for chunk in chunks:
        engine.ops.append("/f", chunk)
    data = b"".join(chunks)
    expected = []
    index = data.find(pattern)
    while index != -1:
        expected.append(index)
        index = data.find(pattern, index + 1)
    assert engine.ops.search("/f", pattern) == expected
    assert engine.ops.count("/f", pattern) == len(expected)


@given(
    blocks=st.lists(st.sampled_from([b"A" * 16, b"B" * 16, b"C" * 16]), min_size=1, max_size=30),
)
@settings(max_examples=40, deadline=None)
def test_dedup_stores_each_distinct_block_once(blocks):
    """DESIGN.md invariant 3: full dedup of identical blocks."""
    engine = CompressDB(block_size=16, page_capacity=4)
    engine.create("/f")
    engine.ops.append("/f", b"".join(blocks))
    assert engine.physical_data_blocks() == len(set(blocks))
    engine.check_invariants()


@given(
    data=st.binary(min_size=1, max_size=300),
    offsets=st.lists(st.floats(0, 1), min_size=1, max_size=4),
)
@settings(max_examples=50, deadline=None)
def test_extract_any_range_matches_slice(data, offsets):
    engine = CompressDB(block_size=16, page_capacity=3)
    engine.create("/f")
    engine.ops.append("/f", data)
    for fraction in offsets:
        offset = int(fraction * len(data))
        size = len(data) - offset
        assert engine.ops.extract("/f", offset, size) == data[offset : offset + size]

"""Unit tests for blockRefCount, including the persistent partition."""

import pytest

from repro.core.refcount import BlockRefCount, RefcountUnderflowError
from repro.storage.block_device import MemoryBlockDevice


@pytest.fixture
def refcount(device):
    return BlockRefCount(device)


class TestCounting:
    def test_unknown_block_has_zero_count(self, refcount):
        assert refcount.get(7) == 0

    def test_incref(self, refcount):
        assert refcount.incref(1) == 1
        assert refcount.incref(1) == 2
        assert refcount.get(1) == 2

    def test_decref_to_zero_removes_entry(self, refcount):
        refcount.incref(1)
        assert refcount.decref(1) == 0
        assert 1 not in refcount
        assert len(refcount) == 0

    def test_decref_of_unreferenced_block_raises(self, refcount):
        with pytest.raises(ValueError):
            refcount.decref(9)

    def test_underflow_has_a_dedicated_type(self, refcount):
        # The dedicated type subclasses ValueError so pre-existing
        # handlers keep working, but lets callers tell an accounting
        # bug apart from a generic bad argument.
        with pytest.raises(RefcountUnderflowError):
            refcount.decref(9)
        assert issubclass(RefcountUnderflowError, ValueError)

    def test_underflow_raised_after_decref_to_zero(self, refcount):
        refcount.incref(1)
        refcount.decref(1)
        with pytest.raises(RefcountUnderflowError):
            refcount.decref(1)

    def test_underflow_consistent_across_restore(self, device, refcount):
        # The persisted partition round-trip must not change the
        # underflow behaviour: a count restored from disk underflows
        # with the same dedicated type as a cached one.
        refcount.incref(1)
        refcount.persist()
        refcount.restore()
        assert refcount.decref(1) == 0
        with pytest.raises(RefcountUnderflowError):
            refcount.decref(1)

    def test_set_and_live_blocks(self, refcount):
        refcount.set(3, 5)
        refcount.set(4, 1)
        refcount.set(4, 0)  # setting to zero drops the entry
        assert refcount.live_blocks() == [3]

    def test_set_negative_rejected(self, refcount):
        with pytest.raises(ValueError):
            refcount.set(1, -1)

    def test_total_references(self, refcount):
        refcount.set(1, 2)
        refcount.set(2, 3)
        assert refcount.total_references() == 5

    def test_memory_estimate_grows_with_entries(self, refcount):
        empty = refcount.memory_bytes()
        refcount.set(1, 1)
        assert refcount.memory_bytes() > empty


class TestPersistence:
    def test_persist_and_restore_roundtrip(self, device, refcount):
        for block in range(20):
            refcount.set(block, block + 1)
        refcount.persist()
        # Clobber the in-memory state, then restore from the partition.
        for block in range(20):
            refcount.set(block, 0)
        refcount.restore()
        assert all(refcount.get(block) == block + 1 for block in range(20))

    def test_persist_spans_multiple_blocks(self):
        device = MemoryBlockDevice(block_size=64)  # tiny partition blocks
        refcount = BlockRefCount(device)
        for block in range(50):
            refcount.set(block, 2)
        used = refcount.persist()
        assert used > 1
        refcount.restore()
        assert len(refcount) == 50

    def test_repersist_recycles_partition_blocks(self, device, refcount):
        for block in range(10):
            refcount.set(block, 1)
        refcount.persist()
        first = refcount.partition_block_count
        refcount.persist()
        assert refcount.partition_block_count == first

    def test_shrinking_table_releases_partition_blocks(self):
        device = MemoryBlockDevice(block_size=64)
        refcount = BlockRefCount(device)
        for block in range(50):
            refcount.set(block, 1)
        refcount.persist()
        grown = refcount.partition_block_count
        for block in range(45):
            refcount.set(block, 0)
        refcount.persist()
        assert refcount.partition_block_count < grown
        refcount.restore()
        assert len(refcount) == 5

    def test_empty_table_persists(self, refcount):
        refcount.persist()
        refcount.restore()
        assert len(refcount) == 0


class TestAdoptPartition:
    def test_adopting_restores_from_foreign_handle(self, device):
        original = BlockRefCount(device)
        for block in range(8):
            original.set(block, block + 1)
        original.persist()
        blocks = original.partition_blocks
        # A fresh instance (as after a remount) adopts and restores.
        fresh = BlockRefCount(device)
        fresh.adopt_partition(blocks)
        fresh.restore()
        assert all(fresh.get(block) == block + 1 for block in range(8))

    def test_partition_blocks_is_a_copy(self, device):
        refcount = BlockRefCount(device)
        refcount.set(1, 1)
        refcount.persist()
        blocks = refcount.partition_blocks
        blocks.append(999)
        assert 999 not in refcount.partition_blocks

"""Tests for engine maintenance: defragmentation and fsck."""

import random

import pytest

from repro.core.engine import CompressDB


@pytest.fixture
def fragmented():
    """An engine whose file accumulated holes from unaligned edits."""
    engine = CompressDB(block_size=64, page_capacity=4)
    engine.create("/f")
    engine.ops.append("/f", bytes(range(256)))
    rng = random.Random(2)
    for __ in range(15):
        size = engine.file_size("/f")
        if rng.random() < 0.5:
            engine.ops.insert("/f", rng.randrange(size), b"frag" * rng.randrange(1, 4))
        else:
            offset = rng.randrange(size)
            engine.ops.delete("/f", offset, rng.randrange(min(30, size - offset)))
    return engine


class TestDefragment:
    def test_content_preserved(self, fragmented):
        before = fragmented.read_file("/f")
        fragmented.defragment("/f")
        assert fragmented.read_file("/f") == before
        fragmented.check_invariants()

    def test_holes_removed(self, fragmented):
        assert fragmented.inode("/f").hole_slots > 1
        fragmented.defragment("/f")
        # Only the final partial block may carry a hole afterwards.
        assert fragmented.inode("/f").hole_slots <= 1

    def test_slots_reduced(self, fragmented):
        before = fragmented.inode("/f").num_slots
        saved = fragmented.defragment("/f")
        assert saved >= 0
        assert fragmented.inode("/f").num_slots == before - saved

    def test_shared_blocks_survive(self):
        engine = CompressDB(block_size=64)
        block = b"S" * 64
        engine.write_file("/a", block * 4)
        engine.write_file("/b", block * 4)
        engine.ops.insert("/a", 10, b"holes!")
        engine.defragment("/a")
        assert engine.read_file("/b") == block * 4
        engine.check_invariants()

    def test_defragment_empty_file(self):
        engine = CompressDB(block_size=64)
        engine.create("/empty")
        assert engine.defragment("/empty") == 0

    def test_defragment_improves_physical_density(self, fragmented):
        logical = fragmented.logical_bytes()
        fragmented.defragment("/f")
        # After packing, physical blocks hold at least as much data as
        # block-rounded logical size requires.
        max_blocks = -(-logical // fragmented.block_size)
        assert fragmented.inode("/f").num_slots == max_blocks


class TestFsck:
    def test_clean_engine_reports_zero_repairs(self, fragmented):
        report = fragmented.fsck()
        assert report["refcounts_fixed"] == 0
        assert report["blocks_reclaimed"] == 0
        assert report["index_entries"] == fragmented.physical_data_blocks()

    def test_repairs_corrupted_refcount(self, fragmented):
        block = fragmented.inode("/f").slot_at(0).block_no
        fragmented.refcount.set(block, 99)
        report = fragmented.fsck()
        assert report["refcounts_fixed"] >= 1
        fragmented.check_invariants()

    def test_reclaims_leaked_block(self):
        engine = CompressDB(block_size=64)
        engine.write_file("/f", b"data" * 30)
        # Simulate a leak: an allocated, refcounted block nobody points at.
        leaked = engine.device.allocate()
        engine.device.write_block(leaked, b"orphan")
        engine.refcount.set(leaked, 1)
        report = engine.fsck()
        assert report["blocks_reclaimed"] == 1
        engine.check_invariants()

    def test_rebuilds_hashtable(self, fragmented):
        fragmented.hashtable.clear()
        fragmented.fsck()
        fragmented.check_invariants()  # includes hashtable resolvability

    def test_engine_usable_after_fsck(self, fragmented):
        before = fragmented.read_file("/f")
        fragmented.fsck()
        fragmented.ops.append("/f", b"more data")
        assert fragmented.read_file("/f") == before + b"more data"

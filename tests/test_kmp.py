"""Unit and property tests for the KMP matcher."""

from hypothesis import given, strategies as st

from repro.core.kmp import count_matches, failure_function, find_all


def naive_find_all(text: bytes, pattern: bytes) -> list[int]:
    if not pattern:
        return []
    out = []
    start = text.find(pattern)
    while start != -1:
        out.append(start)
        start = text.find(pattern, start + 1)
    return out


class TestFailureFunction:
    def test_no_repeats(self):
        assert failure_function(b"abcd") == [0, 0, 0, 0]

    def test_full_prefix(self):
        assert failure_function(b"aaaa") == [0, 1, 2, 3]

    def test_mixed(self):
        assert failure_function(b"ababc") == [0, 0, 1, 2, 0]


class TestFindAll:
    def test_single_match(self):
        assert find_all(b"hello world", b"world") == [6]

    def test_multiple_matches(self):
        assert find_all(b"abcabcabc", b"abc") == [0, 3, 6]

    def test_overlapping_matches_reported(self):
        assert find_all(b"aaaa", b"aa") == [0, 1, 2]

    def test_empty_pattern(self):
        assert find_all(b"abc", b"") == []

    def test_pattern_longer_than_text(self):
        assert find_all(b"ab", b"abc") == []

    def test_no_match(self):
        assert find_all(b"abcdef", b"xyz") == []

    def test_match_at_both_ends(self):
        assert find_all(b"xyz-middle-xyz", b"xyz") == [0, 11]

    def test_binary_content(self):
        assert find_all(b"\x00\x01\x00\x01\x00", b"\x01\x00") == [1, 3]


class TestCount:
    def test_count_matches(self):
        assert count_matches(b"banana", b"ana") == 2  # overlapping

    def test_count_zero(self):
        assert count_matches(b"banana", b"q") == 0


@given(
    text=st.binary(max_size=200),
    pattern=st.binary(min_size=1, max_size=6),
)
def test_kmp_agrees_with_naive_search(text, pattern):
    assert find_all(text, pattern) == naive_find_all(text, pattern)


@given(data=st.data())
def test_kmp_finds_planted_occurrences(data):
    """Every planted copy of the pattern is reported."""
    pattern = data.draw(st.binary(min_size=1, max_size=5))
    pieces = data.draw(st.lists(st.binary(max_size=8), min_size=1, max_size=6))
    text = pattern.join(pieces)
    matches = find_all(text, pattern)
    assert matches == naive_find_all(text, pattern)
    # At least the number of explicit joins must be found.
    assert len(matches) >= len(pieces) - 1

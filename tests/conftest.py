"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.engine import CompressDB
from repro.fs.compressfs import CompressFS
from repro.fs.vfs import PassthroughFS
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.simclock import SimClock


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def device(clock: SimClock) -> MemoryBlockDevice:
    return MemoryBlockDevice(block_size=64, clock=clock)


@pytest.fixture
def engine() -> CompressDB:
    """A small-block engine with a tiny pointer-page capacity so page
    splits and multi-page files are exercised by ordinary tests."""
    return CompressDB(block_size=64, page_capacity=4)


@pytest.fixture
def compress_fs() -> CompressFS:
    return CompressFS(block_size=64, page_capacity=4)


@pytest.fixture
def passthrough_fs() -> PassthroughFS:
    return PassthroughFS(block_size=64)


@pytest.fixture(params=["passthrough", "compress"])
def any_fs(request):
    """Parametrized over both file systems — they must behave identically."""
    if request.param == "passthrough":
        return PassthroughFS(block_size=64)
    return CompressFS(block_size=64, page_capacity=4)

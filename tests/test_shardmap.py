"""Tests for the consistent-hash shard map and the sharded/replicated
cluster assembly: ring stability, epoch invalidation, failure-domain
spread, restart re-registration, and diff-based rebalancing."""

import pytest

from repro.distributed import (
    ShardMap,
    ShardedMaster,
    StaleShardMap,
    build_replicated_cluster,
)
from repro.distributed.shardmap import ClientShardCache


class TestShardMapRing:
    def test_lookup_is_deterministic(self):
        one = ShardMap(["g0", "g1", "g2"])
        two = ShardMap(["g2", "g0", "g1"])
        paths = [f"/dir/file{i}.dat" for i in range(50)]
        assert [one.group_for(p) for p in paths] == [two.group_for(p) for p in paths]

    def test_all_groups_own_some_arc(self):
        smap = ShardMap(["g0", "g1", "g2"])
        owners = {smap.group_for(f"/f{i}") for i in range(200)}
        assert owners == {"g0", "g1", "g2"}

    def test_adding_a_group_remaps_a_minority(self):
        smap = ShardMap(["g0", "g1", "g2"])
        paths = [f"/f{i}" for i in range(300)]
        before = {p: smap.group_for(p) for p in paths}
        smap.add_group("g3")
        moved = sum(1 for p in paths if smap.group_for(p) != before[p])
        # Consistent hashing: only the arcs adjacent to the new group's
        # points move — about 1/4 of keys, never a wholesale reshuffle.
        assert 0 < moved < len(paths) // 2
        # Every moved key landed on the new group.
        for p in paths:
            if smap.group_for(p) != before[p]:
                assert smap.group_for(p) == "g3"

    def test_removing_a_group_only_reroutes_its_keys(self):
        smap = ShardMap(["g0", "g1", "g2"])
        paths = [f"/f{i}" for i in range(300)]
        before = {p: smap.group_for(p) for p in paths}
        smap.remove_group("g1")
        for p in paths:
            after = smap.group_for(p)
            assert after != "g1"
            if before[p] != "g1":
                assert after == before[p]

    def test_membership_changes_bump_epoch(self):
        smap = ShardMap(["g0"])
        assert smap.epoch == 1
        assert smap.add_group("g1") == 2
        assert smap.add_group("g1") == 2  # idempotent: no bump
        assert smap.remove_group("g1") == 3
        assert smap.remove_group("g1") == 3

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            ShardMap([])
        smap = ShardMap(["g0"])
        with pytest.raises(ValueError):
            smap.remove_group("g0")


class TestClientShardCache:
    def test_stale_epoch_refresh_and_retry(self):
        smap = ShardMap(["g0", "g1"])
        cache = ClientShardCache(smap)
        assert cache.epoch == smap.epoch
        smap.add_group("g2")
        assert cache.epoch != smap.epoch  # cached view is now stale

        seen = []

        def rpc(group, epoch):
            smap.check_epoch(epoch)  # server-side validation
            seen.append((group, epoch))
            return group

        result = cache.call("/some/file", rpc)
        # Exactly one rejected attempt, then the refreshed route.
        assert len(seen) == 1
        assert seen[0][1] == smap.epoch
        assert result == smap.group_for("/some/file")
        assert cache.epoch == smap.epoch

    def test_check_epoch_carries_current(self):
        smap = ShardMap(["g0"])
        with pytest.raises(StaleShardMap) as excinfo:
            smap.check_epoch(0)
        assert excinfo.value.current_epoch == smap.epoch


class TestShardedCluster:
    def test_end_to_end_reads_and_writes(self):
        cluster = build_replicated_cluster(nodes=3, masters=3, shards=2)
        assert isinstance(cluster.master, ShardedMaster)
        assert len(cluster.groups) == 2
        payloads = {
            f"/data/file{i}.txt": (f"payload {i} " * 40).encode() for i in range(10)
        }
        for path, data in payloads.items():
            cluster.client.write_file(path, data)
        for path, data in payloads.items():
            assert cluster.client.read_file(path) == data
        assert cluster.master.list_files() == sorted(payloads)

    def test_namespace_partitions_across_shards(self):
        cluster = build_replicated_cluster(nodes=3, masters=1, shards=2)
        for i in range(10):
            cluster.client.write_file(f"/data/file{i}.txt", b"x" * 64)
        per_shard = [
            set(shard.list_files()) for shard in cluster.master._all()
        ]
        assert not (per_shard[0] & per_shard[1])
        assert len(per_shard[0] | per_shard[1]) == 10
        assert per_shard[0] and per_shard[1]

    def test_chunk_ids_are_shard_prefixed(self):
        cluster = build_replicated_cluster(nodes=2, masters=1, shards=2)
        cluster.client.write_file("/a", b"x" * 10)
        entry = cluster.master.lookup("/a")
        assert entry.chunks[0].chunk_id.startswith(("s0c", "s1c"))


class TestFailureDomains:
    def test_replicas_spread_across_racks(self):
        cluster = build_replicated_cluster(
            nodes=6, masters=3, racks=3, replication=2
        )
        cluster.client.write_file("/spread", b"y" * (8 * 1024))
        domains = cluster.master.server_domains()
        assert set(domains.values()) == {"rack0", "rack1", "rack2"}
        entry = cluster.master.lookup("/spread")
        assert entry.chunks
        for chunk in entry.chunks:
            racks = {domains[name] for name in chunk.servers}
            assert len(racks) == 2, f"chunk {chunk.chunk_id} not spread: {racks}"

    def test_restart_reregisters_domain_and_epoch(self):
        cluster = build_replicated_cluster(nodes=3, masters=3, racks=3, durable=True)
        server = cluster.servers["node1"]
        assert server.domain == "rack1"
        epoch_before = server.placement_epoch
        assert epoch_before == cluster.master.placement_epoch
        # Membership churn bumps the master's placement epoch while the
        # server is oblivious...
        cluster.master.remove_server("node2")
        server.restart()
        # ...restart re-registers: label intact, epoch replayed.
        assert cluster.master.domain_of("node1") == "rack1"
        assert server.placement_epoch > epoch_before
        assert server.placement_epoch == cluster.master.placement_epoch


class TestRebalance:
    def _payload(self, i):
        return (f"chunk payload {i} " * 200).encode()

    def test_departed_server_chunks_move(self):
        cluster = build_replicated_cluster(
            nodes=3, masters=3, chunk_capacity=1024
        )
        cluster.client.write_file("/big", b"z" * (6 * 1024))
        cluster.master.remove_server("node2")
        moves, shipped, full = cluster.client.rebalance()
        assert moves > 0
        assert shipped == full  # no delta source: every move is a full copy
        for chunk in cluster.master.lookup("/big").chunks:
            assert "node2" not in chunk.servers
        assert cluster.client.read_file("/big") == b"z" * (6 * 1024)

    def test_delta_rebalance_ships_fewer_bytes_than_full_copy(self):
        cluster = build_replicated_cluster(
            nodes=3, masters=3, replication=2, chunk_capacity=1024
        )
        client = cluster.client
        data = b"".join(self._payload(i) for i in range(4))
        client.write_file("/big", data)
        client.snapshot("base")
        # node1 goes down; the master evicts it and the cluster heals
        # with full copies (node1's stale replicas stay on its disk).
        cluster.servers["node1"].fail()
        cluster.master.remove_server("node1")
        client.rebalance()
        # A small post-snapshot edit, then node1 rejoins empty-handed.
        client.replace("/big", 100, b"@@")
        cluster.servers["node1"].recover()
        cluster.master.register_server("node1", "")
        moves, shipped, full = client.rebalance(base_snap="base")
        assert moves > 0
        # Moves onto node1's stale replicas ship post-snapshot deltas,
        # not whole chunks.
        assert shipped < full
        assert client.read_file("/big") == data[:100] + b"@@" + data[102:]

    def test_rebalance_converges(self):
        cluster = build_replicated_cluster(nodes=3, masters=1, chunk_capacity=1024)
        cluster.client.write_file("/f", b"w" * (6 * 1024))
        cluster.master.remove_server("node0")
        cluster.client.rebalance()
        moves, __, __ = cluster.client.rebalance()
        assert moves == 0

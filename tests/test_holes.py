"""Unit tests for the blockHole metadata view."""

import pytest

from repro.core.holes import Hole, HoleDirectory
from repro.storage.inode import Inode, Slot


@pytest.fixture
def inodes():
    return {}


@pytest.fixture
def directory(inodes):
    return HoleDirectory(inodes)


def add_file(inodes, path, used_list, block_size=64):
    inode = Inode(block_size=block_size, page_capacity=4)
    for block_no, used in enumerate(used_list):
        inode.append_slot(Slot(block_no=block_no, used=used))
    inodes[path] = inode
    return inode


class TestEnumeration:
    def test_full_blocks_have_no_holes(self, inodes, directory):
        add_file(inodes, "/a", [64, 64])
        assert list(directory.holes_for("/a")) == []
        assert directory.hole_count("/a") == 0

    def test_partial_blocks_reported(self, inodes, directory):
        add_file(inodes, "/a", [64, 40, 10])
        holes = list(directory.holes_for("/a"))
        assert holes == [Hole(1, 40, 24), Hole(2, 10, 54)]

    def test_hole_bytes(self, inodes, directory):
        add_file(inodes, "/a", [64, 40])
        assert directory.hole_bytes("/a") == 24

    def test_totals_across_files(self, inodes, directory):
        add_file(inodes, "/a", [40])
        add_file(inodes, "/b", [64, 10])
        assert directory.total_hole_count() == 2
        assert directory.total_hole_bytes() == 24 + 54

    def test_memory_estimate_scales_with_holes(self, inodes, directory):
        add_file(inodes, "/a", [40, 30])
        assert directory.memory_bytes() > 0
        assert directory.memory_bytes() == 2 * directory.memory_bytes() // 2


class TestSerialization:
    def test_roundtrip(self, inodes, directory):
        add_file(inodes, "/a", [64, 40, 64, 5])
        payload = directory.serialize("/a")
        holes = HoleDirectory.deserialize(payload)
        assert holes == list(directory.holes_for("/a"))

    def test_empty_file_serializes(self, inodes, directory):
        add_file(inodes, "/a", [])
        assert HoleDirectory.deserialize(directory.serialize("/a")) == []

    def test_paper_overhead_claim(self, inodes, directory):
        """Section 4.2: hole metadata overhead is small (<3% of data)."""
        # 1000 blocks of 64 bytes, one third carrying holes.
        used = [64, 64, 40] * 333
        add_file(inodes, "/big", used)
        data_bytes = sum(used)
        assert directory.memory_bytes() / data_bytes < 0.35  # scaled blocks
        # At the paper's 1 KiB blocks the same structure is far below 3%.
        inodes.clear()
        add_file(inodes, "/big", [1024, 1024, 1000] * 333, block_size=1024)
        assert directory.memory_bytes() / sum([1024, 1024, 1000] * 333) < 0.03

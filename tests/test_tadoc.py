"""Tests for TADOC DAG analysis, analytics, and random access."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.tadoc import (
    RandomAccessIndex,
    compress,
    compress_files,
    compute_stats,
    count_word,
    dag_depth,
    extract,
    file_word_counts,
    locate_word,
    rule2location,
    rule_lengths,
    rule_usage,
    tokenize,
    topological_order,
    unique_words,
    word2rule,
    word_count,
)
from repro.tadoc.dag import to_networkx
from repro.tadoc.sequitur import Grammar, RuleRef


@pytest.fixture
def grammar():
    return compress(tokenize("a b c a b c a b d " * 20))


class TestDag:
    def test_topological_order_children_first(self, grammar):
        order = topological_order(grammar)
        seen = set()
        for rule_id in order:
            for element in grammar.rules[rule_id]:
                if isinstance(element, RuleRef):
                    assert element.rule_id in seen
            seen.add(rule_id)

    def test_depth_of_flat_grammar(self):
        flat = Grammar(rules={0: ["a", "b", "c"]}, root=0)
        assert dag_depth(flat) == 1

    def test_depth_grows_with_hierarchy(self, grammar):
        assert dag_depth(grammar) >= 2

    def test_cycle_detection(self):
        cyclic = Grammar(rules={0: [RuleRef(1)], 1: [RuleRef(0)]}, root=0)
        with pytest.raises(ValueError):
            topological_order(cyclic)

    def test_stats_fields(self, grammar):
        stats = compute_stats(grammar)
        assert stats.rules == grammar.rule_count()
        assert stats.depth == dag_depth(grammar)
        assert stats.terminals > 0
        assert stats.max_parents >= 2  # rule utility guarantees >= 2

    def test_update_cost_estimates(self, grammar):
        stats = compute_stats(grammar)
        assert stats.update_cost_unbounded() > stats.update_cost_bounded()

    def test_deeper_grammars_cost_more(self):
        shallow = compute_stats(compress(tokenize("x y " * 4)))
        deep = compute_stats(compress(tokenize("a b c d e f g h " * 64)))
        assert deep.depth >= shallow.depth

    def test_to_networkx_export(self, grammar):
        graph = to_networkx(grammar)
        assert graph.number_of_nodes() == grammar.rule_count()
        import networkx as nx

        assert nx.is_directed_acyclic_graph(graph)


class TestAnalytics:
    def test_word_count_matches_counter(self, grammar):
        tokens = grammar.expand()
        assert word_count(grammar) == Counter(tokens)

    def test_count_word(self, grammar):
        tokens = grammar.expand()
        assert count_word(grammar, "a") == tokens.count("a")
        assert count_word(grammar, "missing") == 0

    def test_unique_words(self, grammar):
        assert unique_words(grammar) == set(grammar.expand())

    def test_rule_usage_root_is_one(self, grammar):
        assert rule_usage(grammar)[grammar.root] == 1

    def test_rule_usage_weights_multiply(self):
        # "abab abab" style nesting: inner rules used usage*refs times.
        grammar = compress(list("abababab"))
        usage = rule_usage(grammar)
        tokens = grammar.expand()
        total_terminals = sum(
            usage[rule_id]
            * sum(1 for el in body if not isinstance(el, RuleRef))
            for rule_id, body in grammar.rules.items()
        )
        assert total_terminals == len(tokens)

    def test_file_word_counts(self):
        files = [tokenize("x y x " * 5), tokenize("y z " * 7)]
        grammar = compress_files(files)
        assert file_word_counts(grammar) == [Counter(files[0]), Counter(files[1])]


class TestRandomAccess:
    def test_rule_lengths_sum(self, grammar):
        lengths = rule_lengths(grammar)
        assert lengths[grammar.root] == len(grammar.expand())

    def test_word2rule_contains_direct_words(self, grammar):
        index = word2rule(grammar)
        for word, rules in index.items():
            for rule_id in rules:
                assert word in grammar.rules[rule_id]

    def test_rule2location_root_at_zero(self, grammar):
        assert rule2location(grammar)[grammar.root] == [0]

    def test_rule2location_expansions_match(self, grammar):
        tokens = grammar.expand()
        lengths = rule_lengths(grammar)
        locations = rule2location(grammar)
        for rule_id, starts in locations.items():
            expansion = grammar.expand(rule_id)
            for start in starts:
                assert tokens[start : start + lengths[rule_id]] == expansion

    def test_extract_matches_slice(self, grammar):
        tokens = grammar.expand()
        assert extract(grammar, 5, 9) == tokens[5:14]
        assert extract(grammar, 0, len(tokens)) == tokens
        assert extract(grammar, len(tokens), 5) == []

    def test_extract_validates_arguments(self, grammar):
        with pytest.raises(ValueError):
            extract(grammar, -1, 5)

    def test_locate_word_matches_positions(self, grammar):
        tokens = grammar.expand()
        for word in ("a", "d"):
            expected = [i for i, token in enumerate(tokens) if token == word]
            assert locate_word(grammar, word) == expected

    def test_locate_missing_word(self, grammar):
        assert locate_word(grammar, "nope") == []

    def test_index_object(self, grammar):
        index = RandomAccessIndex(grammar)
        tokens = grammar.expand()
        assert index.total_tokens == len(tokens)
        assert index.extract(3, 4) == tokens[3:7]
        assert index.contains("a")
        assert not index.contains("nope")
        assert index.locate("b") == [i for i, t in enumerate(tokens) if t == "b"]


@given(st.lists(st.integers(0, 3), min_size=1, max_size=120), st.data())
@settings(max_examples=80, deadline=None)
def test_random_access_properties(tokens, data):
    grammar = compress(tokens)
    offset = data.draw(st.integers(0, len(tokens)))
    length = data.draw(st.integers(0, len(tokens)))
    assert extract(grammar, offset, length) == tokens[offset : offset + length]
    word = data.draw(st.sampled_from(tokens))
    assert locate_word(grammar, word) == [
        i for i, token in enumerate(tokens) if token == word
    ]
    assert word_count(grammar) == Counter(tokens)


class TestInvertedIndex:
    def test_matches_naive_index(self):
        from repro.tadoc import inverted_index

        files = [
            tokenize("apple banana apple"),
            tokenize("banana cherry"),
            tokenize("apple date date"),
        ]
        grammar = compress_files(files)
        index = inverted_index(grammar)
        expected: dict = {}
        for file_no, tokens in enumerate(files):
            for token in tokens:
                expected.setdefault(token, set()).add(file_no)
        assert index == expected

    def test_shared_rules_attributed_to_each_file(self):
        from repro.tadoc import inverted_index

        shared = tokenize("common phrase here " * 6)
        files = [shared + tokenize("only one"), shared + tokenize("only two")]
        grammar = compress_files(files)
        index = inverted_index(grammar)
        assert index["common"] == {0, 1}
        assert index["one"] == {0}
        assert index["two"] == {1}

    def test_single_file(self):
        from repro.tadoc import inverted_index

        grammar = compress_files([tokenize("a b a")])
        assert inverted_index(grammar) == {"a": {0}, "b": {0}}

    def test_random_files_property(self):
        import random

        from repro.tadoc import inverted_index

        for trial in range(30):
            rng = random.Random(trial)
            files = [
                [rng.randrange(5) for __ in range(rng.randrange(1, 40))]
                for __ in range(rng.randrange(1, 5))
            ]
            grammar = compress_files(files)
            expected: dict = {}
            for file_no, tokens in enumerate(files):
                for token in tokens:
                    expected.setdefault(token, set()).add(file_no)
            assert inverted_index(grammar) == expected, trial

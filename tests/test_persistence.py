"""Tests for full on-device persistence (superblock + metadata chain)."""

import pytest

from repro.core import superblock as sb
from repro.core.engine import CompressDB
from repro.storage.block_device import FileBlockDevice, MemoryBlockDevice


@pytest.fixture
def image_path(tmp_path):
    return str(tmp_path / "compressdb.img")


def fresh_engine(path, block_size=256):
    device = FileBlockDevice(path, block_size=block_size)
    return CompressDB.mount(device)


class TestChain:
    def test_roundtrip_small_payload(self):
        device = MemoryBlockDevice(block_size=64)
        head = sb.write_chain(device, b"tiny")
        payload, blocks = sb.read_chain(device, head)
        assert payload == b"tiny"
        assert len(blocks) == 1

    def test_roundtrip_multi_block_payload(self):
        device = MemoryBlockDevice(block_size=64)
        data = bytes(range(256)) * 4
        head = sb.write_chain(device, data)
        payload, blocks = sb.read_chain(device, head)
        assert payload == data
        assert len(blocks) > 1

    def test_empty_payload(self):
        device = MemoryBlockDevice(block_size=64)
        head = sb.write_chain(device, b"")
        payload, blocks = sb.read_chain(device, head)
        assert payload == b""
        assert len(blocks) == 1


class TestSuperblock:
    def test_format_and_detect(self):
        device = MemoryBlockDevice(block_size=64)
        assert not sb.is_formatted(device)
        sb.format_device(device)
        assert sb.is_formatted(device)
        assert sb.read_superblock(device) == sb.NO_BLOCK

    def test_unformatted_device_rejected(self):
        device = MemoryBlockDevice(block_size=64)
        with pytest.raises(sb.PersistenceError):
            sb.read_superblock(device)

    def test_mount_refuses_foreign_data(self):
        device = MemoryBlockDevice(block_size=64)
        block = device.allocate()
        device.write_block(block, b"not a superblock")
        with pytest.raises(sb.PersistenceError):
            CompressDB.mount(device)


class TestMountCycle:
    def test_data_survives_process_boundary(self, image_path):
        engine = fresh_engine(image_path)
        engine.write_file("/doc", b"persistent content " * 30)
        engine.ops.insert("/doc", 5, b"[holes]")
        expected = engine.read_file("/doc")
        engine.flush()
        engine.device.close()  # type: ignore[attr-defined]

        reopened = fresh_engine(image_path)
        assert reopened.read_file("/doc") == expected
        reopened.check_invariants()

    def test_namespace_survives(self, image_path):
        engine = fresh_engine(image_path)
        for i in range(10):
            engine.write_file(f"/dir/file{i}", b"x" * i)
        engine.flush()
        engine.device.close()  # type: ignore[attr-defined]
        reopened = fresh_engine(image_path)
        assert reopened.list_files() == [f"/dir/file{i}" for i in range(10)]
        assert reopened.file_size("/dir/file7") == 7

    def test_dedup_survives(self, image_path):
        engine = fresh_engine(image_path)
        block = b"D" * 256
        engine.write_file("/a", block * 8)
        engine.flush()
        engine.device.close()  # type: ignore[attr-defined]
        reopened = fresh_engine(image_path)
        assert reopened.physical_data_blocks() == 1
        # New identical writes dedup against the restored index.
        reopened.write_file("/b", block * 8)
        assert reopened.physical_data_blocks() == 1
        reopened.check_invariants()

    def test_free_list_reconstruction(self, image_path):
        engine = fresh_engine(image_path)
        # Four *distinct* blocks (identical ones would dedup to one).
        engine.write_file("/a", b"".join(bytes([i]) * 256 for i in range(4)))
        engine.unlink("/a")  # frees data blocks
        engine.write_file("/keep", b"kept")
        engine.flush()
        high_water = engine.device.total_blocks
        engine.device.close()  # type: ignore[attr-defined]
        reopened = fresh_engine(image_path)
        # Freed blocks are reusable: new writes must not grow the device.
        reopened.write_file("/new", bytes(range(128)))
        assert reopened.device.total_blocks <= high_water
        assert reopened.read_file("/keep") == b"kept"
        reopened.check_invariants()

    def test_multiple_flush_cycles(self, image_path):
        engine = fresh_engine(image_path)
        for round_no in range(5):
            engine.write_file(f"/round{round_no}", b"payload %d " % round_no * 20)
            engine.flush()
        engine.device.close()  # type: ignore[attr-defined]
        reopened = fresh_engine(image_path)
        assert len(reopened.list_files()) == 5
        reopened.check_invariants()

    def test_unflushed_changes_are_lost(self, image_path):
        engine = fresh_engine(image_path)
        engine.write_file("/flushed", b"safe")
        engine.flush()
        engine.write_file("/unflushed", b"gone")
        engine.device.close()  # type: ignore[attr-defined]
        reopened = fresh_engine(image_path)
        assert reopened.exists("/flushed")
        assert not reopened.exists("/unflushed")

    def test_memory_device_mount_works_too(self):
        device = MemoryBlockDevice(block_size=128)
        engine = CompressDB.mount(device)
        engine.write_file("/f", b"in memory")
        engine.flush()
        remounted = CompressDB.mount(device)
        assert remounted.read_file("/f") == b"in memory"

    def test_operations_after_remount(self, image_path):
        engine = fresh_engine(image_path)
        engine.write_file("/f", b"searchable content searchable")
        engine.flush()
        engine.device.close()  # type: ignore[attr-defined]
        reopened = fresh_engine(image_path)
        assert reopened.ops.search("/f", b"searchable") == [0, 19]
        reopened.ops.delete("/f", 0, 11)
        assert reopened.read_file("/f") == b"content searchable"
        reopened.check_invariants()

"""Tests for the ``compressdb`` command-line tool."""

import pytest

from repro.cli import main


@pytest.fixture
def image(tmp_path):
    path = str(tmp_path / "store.img")
    assert main(["init", path, "--block-size", "256"]) == 0
    return path


@pytest.fixture
def corpus(tmp_path):
    path = tmp_path / "corpus.txt"
    path.write_bytes(b"the quick brown fox jumps over the lazy dog " * 40)
    return str(path)


class TestLifecycle:
    def test_init_creates_image(self, tmp_path, capsys):
        path = str(tmp_path / "fresh.img")
        assert main(["init", path, "--block-size", "256"]) == 0
        assert "initialised" in capsys.readouterr().out
        assert (tmp_path / "fresh.img").exists()

    def test_put_ls_get_roundtrip(self, image, corpus, tmp_path, capsys):
        assert main(["put", image, corpus, "/corpus.txt"]) == 0
        assert main(["ls", image]) == 0
        out = capsys.readouterr().out
        assert "/corpus.txt" in out
        target = str(tmp_path / "out.txt")
        assert main(["get", image, "/corpus.txt", "-o", target]) == 0
        assert open(target, "rb").read() == open(corpus, "rb").read()

    def test_get_to_stdout(self, image, corpus, capsys):
        main(["put", image, corpus, "/c"])
        capsys.readouterr()
        assert main(["get", image, "/c"]) == 0

    def test_rm(self, image, corpus, capsys):
        main(["put", image, corpus, "/c"])
        assert main(["rm", image, "/c"]) == 0
        capsys.readouterr()
        main(["ls", image])
        assert "/c" not in capsys.readouterr().out

    def test_missing_source_file_errors(self, image, capsys):
        assert main(["put", image, "/no/such/file", "/x"]) == 2
        assert "error" in capsys.readouterr().err


class TestManipulation:
    def test_insert_persists(self, image, corpus, tmp_path, capsys):
        main(["put", image, corpus, "/c"])
        assert main(["insert", image, "/c", "4", "INSERTED "]) == 0
        target = str(tmp_path / "after.txt")
        main(["get", image, "/c", "-o", target])
        assert open(target, "rb").read().startswith(b"the INSERTED quick")

    def test_delete_persists(self, image, corpus, tmp_path):
        main(["put", image, corpus, "/c"])
        assert main(["delete", image, "/c", "0", "4"]) == 0
        target = str(tmp_path / "after.txt")
        main(["get", image, "/c", "-o", target])
        assert open(target, "rb").read().startswith(b"quick brown")

    def test_replace(self, image, corpus, tmp_path):
        main(["put", image, corpus, "/c"])
        assert main(["replace", image, "/c", "0", "THE"]) == 0
        target = str(tmp_path / "after.txt")
        main(["get", image, "/c", "-o", target])
        assert open(target, "rb").read().startswith(b"THE quick")

    def test_append_from_file(self, image, corpus, tmp_path):
        main(["put", image, corpus, "/c"])
        extra = tmp_path / "extra.bin"
        extra.write_bytes(b"[tail]")
        assert main(["append", image, "/c", "--from-file", str(extra)]) == 0
        target = str(tmp_path / "after.txt")
        main(["get", image, "/c", "-o", target])
        assert open(target, "rb").read().endswith(b"[tail]")

    def test_missing_payload_errors(self, image, corpus, capsys):
        main(["put", image, corpus, "/c"])
        assert main(["append", image, "/c"]) == 2
        assert "provide DATA" in capsys.readouterr().err


class TestQueries:
    def test_search(self, image, corpus, capsys):
        main(["put", image, corpus, "/c"])
        capsys.readouterr()
        assert main(["search", image, "/c", "fox"]) == 0
        captured = capsys.readouterr()
        offsets = [int(line) for line in captured.out.split()]
        assert len(offsets) == 40
        assert "40 occurrence(s)" in captured.err

    def test_count(self, image, corpus, capsys):
        main(["put", image, corpus, "/c"])
        capsys.readouterr()
        assert main(["count", image, "/c", "the"]) == 0
        assert capsys.readouterr().out.strip() == "80"

    def test_stats(self, image, corpus, capsys):
        main(["put", image, corpus, "/c"])
        main(["put", image, corpus, "/c2"])  # duplicate content
        capsys.readouterr()
        assert main(["stats", image]) == 0
        out = capsys.readouterr().out
        assert "compression ratio" in out
        ratio = float(out.split("compression ratio:")[1].split()[0])
        assert ratio > 1.5  # the duplicate file dedups

    def test_stats_json_is_byte_stable(self, image, corpus, capsys):
        import json

        main(["put", image, corpus, "/c"])
        capsys.readouterr()
        assert main(["stats", image, "--json"]) == 0
        first = capsys.readouterr().out
        payload = json.loads(first)
        assert payload["version"] == 1
        assert payload["gauges"]["engine.space.files"] == 1
        assert payload["counters"]["storage.device.block_reads"] > 0
        assert main(["stats", image, "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_stats_prom_validates(self, image, corpus, capsys):
        from tests.test_obs import validate_prometheus_text

        main(["put", image, corpus, "/c"])
        capsys.readouterr()
        assert main(["stats", image, "--prom"]) == 0
        out = capsys.readouterr().out
        assert validate_prometheus_text(out) > 0
        assert "repro_engine_space_compression_ratio" in out


class TestTrace:
    def test_trace_subcommand_writes_chrome_json(
        self, image, corpus, tmp_path, capsys
    ):
        import json

        main(["put", image, corpus, "/c"])
        capsys.readouterr()
        out = str(tmp_path / "trace.json")
        assert main(["trace", "--out", out, "search", image, "/c", "fox"]) == 0
        captured = capsys.readouterr()
        assert "40 occurrence(s)" in captured.err  # workload still ran
        payload = json.load(open(out))
        events = payload["traceEvents"]
        assert events, "trace must contain spans"
        cats = {event["cat"] for event in events}
        assert "device" in cats  # the scan's block reads are traced

    def test_trace_script_covers_four_layers(self, tmp_path, capsys):
        import json
        import os

        quickstart = os.path.join(
            os.path.dirname(__file__), "..", "examples", "quickstart.py"
        )
        out = str(tmp_path / "trace.json")
        assert main(["trace", "--out", out, quickstart]) == 0
        capsys.readouterr()
        payload = json.load(open(out))
        events = payload["traceEvents"]
        cats = {event["cat"] for event in events}
        assert {"vfs", "engine", "journal", "device"} <= cats
        # Parent/child links resolve within the trace.
        ids = {event["args"]["span_id"] for event in events}
        parented = [
            event for event in events if event["args"]["parent_id"] is not None
        ]
        assert parented
        assert all(event["args"]["parent_id"] in ids for event in parented)

    def test_trace_without_workload_errors(self, tmp_path, capsys):
        assert main(["trace", "--out", str(tmp_path / "t.json")]) == 2
        assert "workload" in capsys.readouterr().err


class TestMaintenance:
    def test_fsck_on_healthy_image(self, image, corpus, capsys):
        main(["put", image, corpus, "/c"])
        capsys.readouterr()
        assert main(["fsck", image]) == 0
        out = capsys.readouterr().out
        assert "refcounts fixed:  0" in out
        assert "blocks reclaimed: 0" in out

    def test_defrag(self, image, corpus, capsys):
        main(["put", image, corpus, "/c"])
        for offset in (10, 50, 90):
            main(["insert", image, "/c", str(offset), "frag"])
        capsys.readouterr()
        assert main(["defrag", image, "/c"]) == 0
        assert "reclaimed" in capsys.readouterr().out
        # Content still correct after defrag.
        main(["count", image, "/c", "frag"])
        assert capsys.readouterr().out.strip() == "3"


class TestClone:
    def test_cp_is_metadata_only(self, image, corpus, capsys):
        main(["put", image, corpus, "/a"])
        size_before = __import__("os").path.getsize(image)
        assert main(["cp", image, "/a", "/b"]) == 0
        capsys.readouterr()
        main(["ls", image])
        out = capsys.readouterr().out
        assert "/a" in out and "/b" in out
        # Image grows by metadata only, not another copy of the data.
        size_after = __import__("os").path.getsize(image)
        data_size = __import__("os").path.getsize(corpus)
        assert size_after - size_before < data_size / 2

    def test_clone_content_identical(self, image, corpus, tmp_path):
        main(["put", image, corpus, "/a"])
        main(["cp", image, "/a", "/b"])
        out_a = str(tmp_path / "a.out")
        out_b = str(tmp_path / "b.out")
        main(["get", image, "/a", "-o", out_a])
        main(["get", image, "/b", "-o", out_b])
        assert open(out_a, "rb").read() == open(out_b, "rb").read()


class TestDescribe:
    def test_describe_reports_structure(self, image, corpus, capsys):
        main(["put", image, corpus, "/c"])
        main(["cp", image, "/c", "/c2"])
        main(["insert", image, "/c", "10", "holey"])
        capsys.readouterr()
        assert main(["describe", image, "/c"]) == 0
        out = capsys.readouterr().out
        assert "slots" in out and "hole_bytes" in out
        assert "depth             2" in out.replace("  ", " ") or "depth" in out

    def test_describe_shared_blocks(self, image, corpus, capsys):
        main(["put", image, corpus, "/c"])
        main(["cp", image, "/c", "/clone"])
        capsys.readouterr()
        main(["describe", image, "/clone"])
        out = capsys.readouterr().out
        shared = int(out.split("shared_blocks")[1].split()[0])
        distinct = int(out.split("distinct_blocks")[1].split()[0])
        assert shared == distinct  # every block shared with the original


class TestWordcountCommand:
    def test_wordcount_top(self, image, corpus, capsys):
        main(["put", image, corpus, "/c"])
        capsys.readouterr()
        assert main(["wordcount", image, "/c", "--top", "2"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2
        assert out[0].split()[0] == "80"  # "the" appears 2x per sentence

"""Tests for the Bloom filter and its SSTable integration."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.databases.bloom import BloomFilter
from repro.databases.minileveldb import MiniLevelDB
from repro.databases.sstable import SSTableReader, SSTableWriter
from repro.fs import PassthroughFS


class TestBloomFilter:
    def test_added_keys_always_found(self):
        bloom = BloomFilter.for_capacity(100)
        keys = [b"key-%d" % i for i in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)  # no false negatives

    def test_false_positive_rate_in_regime(self):
        bloom = BloomFilter.for_capacity(500, false_positive_rate=0.01)
        for i in range(500):
            bloom.add(b"member-%d" % i)
        false_positives = sum(
            1 for i in range(5000) if b"absent-%d" % i in bloom
        )
        assert false_positives / 5000 < 0.05

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter.for_capacity(10)
        assert b"anything" not in bloom
        assert bloom.fill_ratio() == 0.0

    def test_serialize_roundtrip(self):
        bloom = BloomFilter.for_capacity(50)
        for i in range(50):
            bloom.add(b"k%d" % i)
        restored = BloomFilter.deserialize(bloom.serialize())
        assert restored.bits == bloom.bits
        assert restored.hashes == bloom.hashes
        assert all(b"k%d" % i in restored for i in range(50))

    def test_sizing_validations(self):
        with pytest.raises(ValueError):
            BloomFilter(bits=0, hashes=1)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, false_positive_rate=1.5)

    def test_lower_fp_rate_uses_more_bits(self):
        loose = BloomFilter.for_capacity(1000, 0.1)
        tight = BloomFilter.for_capacity(1000, 0.001)
        assert tight.bits > loose.bits


@given(st.sets(st.binary(min_size=1, max_size=12), max_size=60))
@settings(max_examples=60, deadline=None)
def test_bloom_never_false_negative(keys):
    bloom = BloomFilter.for_capacity(len(keys) or 1)
    for key in keys:
        bloom.add(key)
    assert all(key in bloom for key in keys)


class TestSSTableBloom:
    def test_absent_key_skips_block_reads(self):
        fs = PassthroughFS(block_size=256)
        writer = SSTableWriter(fs, "/t.sst", block_target=128)
        for i in range(200):
            writer.add(b"key%04d" % (i * 2), b"value")
        writer.finish()
        reader = SSTableReader(fs, "/t.sst")
        fs.device.stats.reset()
        misses = 0
        for i in range(200):
            found, __ = reader.get(b"absent%04d" % i)
            assert not found
            misses += 1
        # Nearly every lookup must be answered by the filter alone.
        assert reader.bloom_negatives > misses * 0.9
        assert fs.device.stats.block_reads < misses

    def test_present_keys_unaffected(self):
        fs = PassthroughFS(block_size=256)
        writer = SSTableWriter(fs, "/t.sst", block_target=128)
        entries = [(b"key%04d" % i, b"v%d" % i) for i in range(100)]
        for key, value in entries:
            writer.add(key, value)
        writer.finish()
        reader = SSTableReader(fs, "/t.sst")
        for key, value in entries:
            assert reader.get(key) == (True, value)

    def test_lsm_negative_lookups_get_cheaper(self):
        """End to end: absent-key Gets mostly cost no table I/O."""
        fs = PassthroughFS(block_size=256)
        db = MiniLevelDB(fs, memtable_limit=1024, l0_limit=8)
        rng = random.Random(3)
        for i in range(300):
            db.put(b"present%04d" % i, b"v" * rng.randrange(1, 30))
        db.close()
        fs.device.stats.reset()
        for i in range(300):
            assert db.get(b"missing%04d" % i) is None
        reads_with_bloom = fs.device.stats.block_reads
        # The same lookups without filters would touch a data block per
        # (table, key) pair; with filters almost nothing is read.
        assert reads_with_bloom < 50

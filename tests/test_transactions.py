"""Tests for MiniSQL transactions (BEGIN / COMMIT / ROLLBACK)."""

import pytest

from repro.databases.minisql import MiniSQL, TableError
from repro.fs import CompressFS, PassthroughFS


@pytest.fixture(params=["passthrough", "compress"])
def db(request):
    fs = PassthroughFS(block_size=256) if request.param == "passthrough" else CompressFS(block_size=256)
    database = MiniSQL(fs, page_size=512)
    database.execute("CREATE TABLE acc (id INT PRIMARY KEY, owner TEXT, balance INT)")
    for i in range(10):
        database.execute(f"INSERT INTO acc VALUES ({i}, 'u{i}', 100)")
    return database


def balances(db):
    return {row["id"]: row["balance"] for row in db.execute("SELECT id, balance FROM acc")}


class TestLifecycle:
    def test_commit_keeps_changes(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE acc SET balance = 0 WHERE id = 1")
        db.execute("COMMIT")
        assert balances(db)[1] == 0

    def test_rollback_discards_changes(self, db):
        before = balances(db)
        db.execute("BEGIN TRANSACTION")
        db.execute("UPDATE acc SET balance = 0 WHERE id = 1")
        db.execute("INSERT INTO acc VALUES (99, 'x', 5)")
        db.execute("DELETE FROM acc WHERE id = 2")
        db.execute("ROLLBACK")
        assert balances(db) == before

    def test_nested_begin_rejected(self, db):
        db.execute("BEGIN")
        with pytest.raises(TableError):
            db.execute("BEGIN")
        db.execute("ROLLBACK")

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(TableError):
            db.execute("COMMIT")

    def test_rollback_without_begin_rejected(self, db):
        with pytest.raises(TableError):
            db.execute("ROLLBACK")

    def test_ddl_inside_transaction_rejected(self, db):
        db.execute("BEGIN")
        with pytest.raises(TableError):
            db.execute("CREATE TABLE other (a INT)")
        with pytest.raises(TableError):
            db.execute("CREATE INDEX i ON acc (owner)")
        db.execute("ROLLBACK")


class TestRollbackSemantics:
    def test_reads_see_own_writes(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE acc SET balance = 42 WHERE id = 3")
        assert balances(db)[3] == 42  # visible inside the transaction
        db.execute("ROLLBACK")
        assert balances(db)[3] == 100

    def test_transfer_rolls_back_atomically(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE acc SET balance = balance - 30 WHERE id = 4")
        db.execute("UPDATE acc SET balance = balance + 30 WHERE id = 5")
        db.execute("ROLLBACK")
        state = balances(db)
        assert state[4] == 100 and state[5] == 100

    def test_multiple_updates_same_row_unwind(self, db):
        db.execute("BEGIN")
        for value in (1, 2, 3):
            db.execute(f"UPDATE acc SET balance = {value} WHERE id = 6")
        db.execute("ROLLBACK")
        assert balances(db)[6] == 100

    def test_insert_then_update_then_rollback(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO acc VALUES (50, 'new', 1)")
        db.execute("UPDATE acc SET balance = 2 WHERE id = 50")
        db.execute("ROLLBACK")
        assert db.execute("SELECT * FROM acc WHERE id = 50") == []

    def test_delete_then_rollback_restores_row(self, db):
        db.execute("BEGIN")
        db.execute("DELETE FROM acc WHERE id = 7")
        db.execute("ROLLBACK")
        rows = db.execute("SELECT * FROM acc WHERE id = 7")
        assert rows == [{"id": 7, "owner": "u7", "balance": 100}]

    def test_rollback_restores_index_consistency(self, db):
        db.execute("CREATE INDEX idx_owner ON acc (owner)")
        db.execute("BEGIN")
        db.execute("UPDATE acc SET owner = 'renamed' WHERE id = 1")
        db.execute("DELETE FROM acc WHERE id = 2")
        db.execute("INSERT INTO acc VALUES (60, 'fresh', 0)")
        db.execute("ROLLBACK")
        assert db.execute("SELECT id FROM acc WHERE owner = 'u1'") == [{"id": 1}]
        assert db.execute("SELECT id FROM acc WHERE owner = 'u2'") == [{"id": 2}]
        assert db.execute("SELECT id FROM acc WHERE owner = 'renamed'") == []
        assert db.execute("SELECT id FROM acc WHERE owner = 'fresh'") == []

    def test_second_transaction_after_rollback(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE acc SET balance = 0 WHERE id = 8")
        db.execute("ROLLBACK")
        db.execute("BEGIN")
        db.execute("UPDATE acc SET balance = 55 WHERE id = 8")
        db.execute("COMMIT")
        assert balances(db)[8] == 55

    def test_autocommit_outside_transactions(self, db):
        db.execute("UPDATE acc SET balance = 1 WHERE id = 9")
        assert balances(db)[9] == 1  # immediate, no BEGIN required


class TestRandomisedRollback:
    def test_random_transactions_leave_no_trace(self, db):
        import random

        rng = random.Random(12)
        before = db.execute("SELECT * FROM acc")
        db.execute("BEGIN")
        next_key = 1000
        for __ in range(40):
            action = rng.random()
            if action < 0.4:
                db.execute(
                    f"UPDATE acc SET balance = {rng.randrange(1000)} "
                    f"WHERE id = {rng.randrange(10)}"
                )
            elif action < 0.7:
                db.execute(f"INSERT INTO acc VALUES ({next_key}, 'r', 0)")
                next_key += 1
            else:
                live = [row["id"] for row in db.execute("SELECT id FROM acc")]
                db.execute(f"DELETE FROM acc WHERE id = {rng.choice(live)}")
        db.execute("ROLLBACK")
        assert db.execute("SELECT * FROM acc") == before

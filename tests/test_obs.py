"""Tests for repro.obs: metrics, tracing, hooks, exporters, and the
redesigned stats surface (DESIGN.md §9).

Covers the registry's typed instruments and snapshot algebra, lexical
span nesting within one component and *across* layers (a journaled
CompressFS write producing one connected VFS → engine → journal →
device trace), the sampled hook sites, byte-stable exporter output
against golden files, a Prometheus text-format validator over
``repro stats --prom``, the identity-deduplication fix in
``StatsRegistry.total()``, and the deprecated attribute shims on the
four legacy stats classes.
"""

from __future__ import annotations

import json
import os
import re
import warnings

import pytest

from repro.core.compressor import CompressorStats
from repro.core.engine import CompressDB
from repro.fs.compressfs import CompressFS
from repro.fs.fd import O_CREAT, O_RDWR
from repro.fs.vfs import PassthroughFS
from repro.obs import (
    MetricsRegistry,
    Observability,
    Tracer,
    disable_global_tracing,
    enable_global_tracing,
)
from repro.obs.exporters import chrome_trace_json, metrics_json, prometheus_text
from repro.obs.hooks import HookRegistry
from repro.obs.trace import Span
from repro.storage.block_device import MemoryBlockDevice
from repro.storage.simclock import SimClock
from repro.storage.stats import IOStats, IOStatsSnapshot, StatsRegistry

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")


# ---------------------------------------------------------------------------
# Metrics instruments and registry
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_monotone(self):
        registry = MetricsRegistry()
        c = registry.counter("a.b")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.gauge("a.b")

    def test_name_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("Not.Valid")

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat.ms", bounds=(1.0, 5.0))
        for value in (0.5, 3.0, 42.0):
            h.observe(value)
        snap = registry.snapshot().histograms["lat.ms"]
        assert snap.counts == (1, 1, 1)  # <=1, <=5, overflow
        assert snap.cumulative() == (1, 2, 3)
        assert snap.count == 3 and snap.sum == 45.5

    def test_histogram_bounds_conflict(self):
        registry = MetricsRegistry()
        registry.histogram("lat.ms", bounds=(1.0, 5.0))
        with pytest.raises(ValueError, match="different bounds"):
            registry.histogram("lat.ms", bounds=(2.0,))

    def test_snapshot_delta_and_merge(self):
        registry = MetricsRegistry()
        c = registry.counter("a.b")
        g = registry.gauge("c.d")
        c.inc(3)
        g.set(1.0)
        earlier = registry.snapshot()
        c.inc(2)
        g.set(9.0)
        later = registry.snapshot()
        delta = later.delta(earlier)
        assert delta.counter("a.b") == 2  # counters subtract
        assert delta.gauge("c.d") == 9.0  # gauges keep the later value
        merged = later.merge(later)
        assert merged.counter("a.b") == 10

    def test_snapshot_filter(self):
        registry = MetricsRegistry()
        registry.counter("storage.device.block_reads").inc()
        registry.counter("engine.txn.commits").inc()
        filtered = registry.snapshot(prefix="storage")
        assert list(filtered.counters) == ["storage.device.block_reads"]

    def test_disabled_registry_hands_out_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("a.b")
        c.inc(1000)
        assert c.value == 0
        registry.gauge("c.d").set(5.0)
        registry.histogram("e.f").observe(1.0)
        snap = registry.snapshot()
        assert not snap.counters and not snap.gauges and not snap.histograms


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------

class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        with tracer.span("a.b"):
            pass
        assert tracer.spans() == []

    def test_nesting_and_deterministic_ids(self):
        clock = SimClock()
        tracer = Tracer(clock=clock, enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]  # completion order
        assert outer.span_id == 1 and inner.span_id == 2
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("engine.write"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "RuntimeError"

    def test_ring_buffer_bounds_retention(self):
        tracer = Tracer(capacity=4, enabled=True)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        names = [s.name for s in tracer.spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_timestamps_from_simclock(self):
        clock = SimClock()
        tracer = Tracer(clock=clock, enabled=True)
        with tracer.span("timed"):
            clock.charge(0.25)
        (span,) = tracer.spans()
        assert span.duration == pytest.approx(0.25)


class TestGlobalTracing:
    def test_new_bundles_adopt_global_tracer(self):
        tracer = enable_global_tracing()
        try:
            a = Observability()
            b = Observability()
            assert a.tracer is tracer and b.tracer is tracer
        finally:
            disable_global_tracing()
        assert Observability().tracer is not tracer

    def test_first_bundle_donates_its_clock(self):
        tracer = enable_global_tracing()
        try:
            clock = SimClock()
            Observability(clock=clock)
            assert tracer.clock is clock
        finally:
            disable_global_tracing()


# ---------------------------------------------------------------------------
# Cross-layer span nesting: one workload, one connected trace
# ---------------------------------------------------------------------------

class TestCrossLayerTracing:
    def test_journaled_write_connects_four_layers(self):
        tracer = enable_global_tracing()
        try:
            engine = CompressDB.mount(
                MemoryBlockDevice(block_size=1024), journal_blocks=64
            )
            fs = CompressFS(engine=engine)
            fd = fs.open("/f", O_RDWR | O_CREAT)
            fs.write(fd, b"observable bytes " * 200)
            fs.close(fd)  # close == commit point: flush + journal commit
        finally:
            disable_global_tracing()
        spans = tracer.spans()
        by_id = {s.span_id: s for s in spans}
        layers = {s.name.split(".", 1)[0] for s in spans}
        assert {"vfs", "engine", "journal", "device"} <= layers

        def ancestors(span):
            chain = []
            while span.parent_id is not None:
                span = by_id[span.parent_id]
                chain.append(span.name)
            return chain

        # A journal phase's device write sits under the whole stack.
        device_writes = [
            s
            for s in spans
            if s.name == "device.write"
            and any(a.startswith("journal.phase.") for a in ancestors(s))
        ]
        assert device_writes, "no device.write nested under a journal phase"
        chain = ancestors(device_writes[0])
        assert "journal.commit" in chain
        assert "engine.flush" in chain
        assert "vfs.close" in chain
        # Parent intervals contain their children.
        for span in spans:
            if span.parent_id in by_id:
                parent = by_id[span.parent_id]
                assert parent.start <= span.start
                assert span.end <= parent.end

    def test_vfs_write_span_wraps_engine_write(self):
        tracer = enable_global_tracing()
        try:
            fs = CompressFS(block_size=1024)
            fd = fs.open("/f", O_RDWR | O_CREAT)
            fs.write(fd, b"x" * 4096)
            fs.close(fd)
        finally:
            disable_global_tracing()
        spans = tracer.spans()
        by_id = {s.span_id: s for s in spans}
        engine_writes = [s for s in spans if s.name == "engine.write"]
        assert engine_writes
        assert by_id[engine_writes[0].parent_id].name == "vfs.write"


# ---------------------------------------------------------------------------
# Hooks
# ---------------------------------------------------------------------------

class TestHooks:
    def test_register_fire_unregister(self):
        hooks = HookRegistry()
        seen = []
        sub = hooks.register("storage.cache.evict", lambda site, p: seen.append(p))
        assert hooks.active("storage.cache.evict")
        assert hooks.fire("storage.cache.evict", block_no=7, cache_blocks=3) == 1
        assert seen == [{"block_no": 7, "cache_blocks": 3}]
        hooks.unregister(sub)
        assert not hooks.active("storage.cache.evict")
        assert hooks.fire("storage.cache.evict", block_no=8, cache_blocks=3) == 0

    def test_sampling_delivers_every_nth_event(self):
        hooks = HookRegistry()
        seen = []
        hooks.register("journal.commit.phase", lambda s, p: seen.append(p), sample=3)
        for i in range(9):
            hooks.fire("journal.commit.phase", phase="apply", blocks=i, lsn=0)
        assert [p["blocks"] for p in seen] == [2, 5, 8]

    def test_sample_must_be_positive(self):
        with pytest.raises(ValueError):
            HookRegistry().register("x", lambda s, p: None, sample=0)

    def test_cache_eviction_site_fires(self):
        device = MemoryBlockDevice(block_size=64, cache_blocks=2)
        evicted = []
        device.obs.hooks.register(
            "storage.cache.evict", lambda site, p: evicted.append(p["block_no"])
        )
        blocks = [device.allocate() for __ in range(4)]
        for no in blocks:
            device.write_block(no, b"x" * 64)
        for no in blocks:
            device.read_block(no)
        assert evicted, "filling a 2-block cache with 4 blocks must evict"

    def test_journal_commit_phases_fire_in_order(self):
        engine = CompressDB.mount(
            MemoryBlockDevice(block_size=1024), journal_blocks=64
        )
        events = []
        engine.obs.hooks.register(
            "journal.commit.phase",
            lambda site, p: events.append((p["lsn"], p["phase"])),
        )
        engine.create("/f")
        engine.write("/f", 0, b"y" * 3000)
        engine.fsync("/f")
        # Overwriting committed blocks shadows them and defers the frees.
        engine.write("/f", 0, b"z" * 3000)
        engine.fsync("/f")
        assert {"fresh", "frees"} <= {phase for __, phase in events}
        order = {"fresh": 0, "append": 1, "apply": 2, "frees": 3}
        by_lsn: dict = {}
        for lsn, phase in events:
            by_lsn.setdefault(lsn, []).append(order[phase])
        for ranks in by_lsn.values():  # phases fire in protocol order
            assert ranks == sorted(ranks)

    def test_coalesce_flush_site_fires(self):
        engine = CompressDB(block_size=1024)
        flushes = []
        engine.obs.hooks.register(
            "engine.coalesce.flush", lambda site, p: flushes.append(p)
        )
        engine.create("/f")
        engine.write("/f", 0, b"a" * 100)
        engine.write("/f", 100, b"b" * 100)  # sequential: coalesces
        engine.flush()
        assert flushes and flushes[0]["path"] == "/f"
        assert flushes[0]["nbytes"] == 200


# ---------------------------------------------------------------------------
# Exporters (golden files) and the Prometheus text-format validator
# ---------------------------------------------------------------------------

def _golden_snapshot():
    registry = MetricsRegistry()
    registry.counter("storage.device.block_reads").inc(3)
    registry.counter("engine.txn.commits").inc(1)
    registry.gauge("engine.space.compression_ratio").set(2.5)
    h = registry.histogram("engine.txn.commit_ms", bounds=(1.0, 5.0))
    for value in (0.5, 3.0, 42.0):
        h.observe(value)
    return registry.snapshot()


def _golden_spans():
    return [
        Span(span_id=2, parent_id=1, name="engine.write", start=0.25, end=1.0,
             attrs={"path": "/f", "nbytes": 100}),
        Span(span_id=1, parent_id=None, name="vfs.write", start=0.0, end=1.5,
             attrs={"path": "/f"}),
    ]


_PROM_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? "
    r"(-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$"
)


def validate_prometheus_text(text: str) -> int:
    """A strict validator for the Prometheus text exposition format.

    Checks line syntax, HELP/TYPE preceding each family, histogram
    bucket monotonicity, and the ``+Inf`` bucket equalling ``_count``.
    Returns the number of samples validated.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    typed: dict[str, str] = {}
    helped: set[str] = set()
    samples = 0
    buckets: dict[str, list[tuple[float, float]]] = {}
    values: dict[str, float] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            helped.add(line.split(" ", 3)[2])
            continue
        if line.startswith("# TYPE "):
            __, __, family, kind = line.split(" ", 3)
            assert kind in {"counter", "gauge", "histogram"}, kind
            assert family in helped, f"TYPE before HELP for {family}"
            typed[family] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        assert _PROM_METRIC_LINE.match(line), f"bad sample line: {line!r}"
        name = line.split("{", 1)[0].split(" ", 1)[0]
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in typed or family in typed, f"sample {name} lacks TYPE"
        raw = line.rsplit(" ", 1)[1]
        value = float("inf") if raw == "+Inf" else float(raw)
        if name.endswith("_bucket"):
            le = line.split('le="', 1)[1].split('"', 1)[0]
            bound = float("inf") if le == "+Inf" else float(le)
            buckets.setdefault(family, []).append((bound, value))
        else:
            values[name] = value
        samples += 1
    for family, series in buckets.items():
        bounds = [b for b, __ in series]
        counts = [c for __, c in series]
        assert bounds == sorted(bounds), f"{family}: le bounds out of order"
        assert counts == sorted(counts), f"{family}: buckets not cumulative"
        assert bounds[-1] == float("inf"), f"{family}: missing +Inf bucket"
        assert counts[-1] == values[f"{family}_count"], (
            f"{family}: +Inf bucket != _count"
        )
    return samples


class TestExporters:
    def _check_golden(self, name: str, rendered: str):
        path = os.path.join(GOLDEN_DIR, name)
        with open(path, "r", encoding="utf-8") as handle:
            assert rendered == handle.read(), f"golden mismatch: {path}"

    def test_prometheus_text_matches_golden(self):
        self._check_golden("metrics.prom", prometheus_text(_golden_snapshot()))

    def test_metrics_json_matches_golden(self):
        self._check_golden("metrics.json", metrics_json(_golden_snapshot()) + "\n")

    def test_chrome_trace_matches_golden(self):
        self._check_golden("trace.json", chrome_trace_json(_golden_spans()) + "\n")

    def test_prometheus_output_validates(self):
        assert validate_prometheus_text(prometheus_text(_golden_snapshot())) > 0

    def test_metrics_json_is_byte_stable(self):
        assert metrics_json(_golden_snapshot()) == metrics_json(_golden_snapshot())

    def test_chrome_trace_parent_links(self):
        payload = json.loads(chrome_trace_json(_golden_spans()))
        events = payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"
        child = next(e for e in events if e["name"] == "engine.write")
        parent = next(e for e in events if e["name"] == "vfs.write")
        assert child["args"]["parent_id"] == parent["args"]["span_id"]
        assert child["ts"] == 250000.0 and child["dur"] == 750000.0  # µs


# ---------------------------------------------------------------------------
# Redesigned stats surface: registry-backed classes + legacy shims
# ---------------------------------------------------------------------------

class TestStatsRegistryDedup:
    def test_total_counts_aliased_component_once(self):
        # Regression: total() used to double-count an IOStats object
        # registered under two names.
        registry = StatsRegistry()
        primary = registry.register("node0")
        registry.attach("primary", primary)
        primary.record_read(1024)
        total = registry.total()
        assert total.block_reads == 1
        assert total.bytes_read == 1024

    def test_distinct_components_still_sum(self):
        registry = StatsRegistry()
        registry.register("a").record_read(10)
        registry.register("b").record_read(20)
        assert registry.total().block_reads == 2
        assert registry.total().bytes_read == 30

    def test_aggregate_is_deprecated_alias(self):
        registry = StatsRegistry()
        registry.register("a").record_write(7)
        with pytest.warns(DeprecationWarning, match="use total"):
            snap = registry.aggregate()
        assert snap.block_writes == 1


class TestLegacyShims:
    def test_attribute_read_warns_and_matches_snapshot(self):
        stats = IOStats()
        stats.record_read(100)
        with pytest.warns(DeprecationWarning, match="IOStats.block_reads"):
            assert stats.block_reads == 1
        assert stats.snapshot().block_reads == 1

    def test_attribute_write_warns_and_lands_in_registry(self):
        stats = IOStats()
        with pytest.warns(DeprecationWarning):
            stats.allocations = 3
        assert stats.registry.snapshot().counter("storage.device.allocations") == 3

    def test_compressor_stats_shim(self):
        stats = CompressorStats()
        stats.record("dedup_hits")
        with pytest.warns(DeprecationWarning):
            assert stats.dedup_hits == 1

    def test_snapshot_is_frozen(self):
        snap = IOStats().snapshot()
        with pytest.raises(AttributeError):
            snap.block_reads = 5
        assert isinstance(snap, IOStatsSnapshot)


class TestMetricsAccessors:
    def test_filesystem_metrics_accessor(self):
        fs = PassthroughFS(block_size=1024)
        fs.write_file("/f", b"z" * 2048)
        snap = fs.metrics()
        assert snap.counter("storage.device.block_writes") > 0

    def test_compressfs_metrics_publishes_engine_gauges(self):
        fs = CompressFS(block_size=1024)
        fs.write_file("/f", b"z" * 4096)
        snap = fs.metrics()
        assert snap.gauge("engine.space.files") == 1
        assert snap.gauge("engine.space.logical_bytes") == 4096
        assert snap.counter("engine.compressor.stores") > 0

    def test_one_stack_one_registry(self):
        fs = CompressFS(block_size=1024)
        assert fs.obs.registry is fs.engine.obs.registry
        assert fs.engine.obs.registry is fs.device.obs.registry

"""Tests for the MiniLevelDB LSM store."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import SnappyCodec
from repro.databases.minileveldb import MiniLevelDB
from repro.fs import CompressFS, PassthroughFS


@pytest.fixture(params=["passthrough", "compress"])
def db(request):
    if request.param == "passthrough":
        fs = PassthroughFS(block_size=256)
    else:
        fs = CompressFS(block_size=256)
    return MiniLevelDB(fs, memtable_limit=512, l0_limit=3, block_target=256)


class TestBasics:
    def test_put_get(self, db):
        db.put(b"k", b"v")
        assert db.get(b"k") == b"v"

    def test_get_missing(self, db):
        assert db.get(b"missing") is None

    def test_overwrite(self, db):
        db.put(b"k", b"v1")
        db.put(b"k", b"v2")
        assert db.get(b"k") == b"v2"

    def test_delete(self, db):
        db.put(b"k", b"v")
        db.delete(b"k")
        assert db.get(b"k") is None

    def test_delete_missing_is_fine(self, db):
        db.delete(b"never-existed")
        assert db.get(b"never-existed") is None

    def test_empty_value(self, db):
        db.put(b"k", b"")
        assert db.get(b"k") == b""


class TestFlushAndCompaction:
    def test_memtable_flushes_to_l0(self, db):
        for i in range(50):
            db.put(b"key%04d" % i, b"value " * 5)
        assert db.table_count() >= 1

    def test_flushed_keys_still_readable(self, db):
        for i in range(100):
            db.put(b"key%04d" % i, b"v%d" % i)
        for i in range(100):
            assert db.get(b"key%04d" % i) == b"v%d" % i

    def test_compaction_triggered(self, db):
        for i in range(400):
            db.put(b"key%04d" % (i % 120), b"value-%d " % i * 3)
        assert db.compactions >= 1
        # After compaction everything is still there.
        db.close()
        for i in range(120):
            assert db.get(b"key%04d" % i) is not None

    def test_compaction_drops_tombstones(self, db):
        for i in range(60):
            db.put(b"key%04d" % i, b"v" * 30)
        for i in range(60):
            db.delete(b"key%04d" % i)
        db.flush_memtable()
        db.compact()
        assert list(db.scan()) == []

    def test_deleted_key_stays_deleted_across_flushes(self, db):
        db.put(b"target", b"v")
        db.flush_memtable()
        db.delete(b"target")
        db.flush_memtable()
        db.compact()
        assert db.get(b"target") is None

    def test_newest_version_wins_in_merge(self, db):
        db.put(b"k", b"old")
        db.flush_memtable()
        db.put(b"k", b"new")
        db.flush_memtable()
        db.compact()
        assert db.get(b"k") == b"new"


class TestScan:
    def test_scan_sorted(self, db):
        keys = [b"c", b"a", b"b", b"e", b"d"]
        for key in keys:
            db.put(key, b"v-" + key)
        assert [key for key, __ in db.scan()] == sorted(keys)

    def test_scan_range(self, db):
        for i in range(20):
            db.put(b"k%02d" % i, b"v")
        got = [key for key, __ in db.scan(b"k05", b"k10")]
        assert got == [b"k%02d" % i for i in range(5, 10)]

    def test_scan_merges_memtable_and_tables(self, db):
        db.put(b"a", b"1")
        db.flush_memtable()
        db.put(b"b", b"2")  # still in memtable
        assert list(db.scan()) == [(b"a", b"1"), (b"b", b"2")]

    def test_scan_hides_tombstones(self, db):
        db.put(b"a", b"1")
        db.put(b"b", b"2")
        db.flush_memtable()
        db.delete(b"a")
        assert list(db.scan()) == [(b"b", b"2")]


class TestRecovery:
    def test_wal_replay(self, db):
        db.put(b"durable", b"yes")  # stays in memtable + WAL
        reopened = MiniLevelDB(db.fs, memtable_limit=512, l0_limit=3)
        assert reopened.get(b"durable") == b"yes"

    def test_manifest_recovery(self, db):
        for i in range(100):
            db.put(b"key%04d" % i, b"value-%d" % i)
        db.close()
        reopened = MiniLevelDB(db.fs, memtable_limit=512, l0_limit=3)
        for i in range(100):
            assert reopened.get(b"key%04d" % i) == b"value-%d" % i

    def test_wal_tombstone_replay(self, db):
        db.put(b"k", b"v")
        db.flush_memtable()
        db.delete(b"k")
        reopened = MiniLevelDB(db.fs, memtable_limit=512, l0_limit=3)
        assert reopened.get(b"k") is None


class TestModelBased:
    def test_random_ops_match_dict(self, db):
        rng = random.Random(17)
        model = {}
        for i in range(800):
            key = b"key%03d" % rng.randrange(150)
            action = rng.random()
            if action < 0.6:
                value = b"val-%d-" % i * rng.randrange(1, 4)
                db.put(key, value)
                model[key] = value
            elif action < 0.8:
                db.delete(key)
                model.pop(key, None)
            else:
                assert db.get(key) == model.get(key)
        assert list(db.scan()) == sorted(model.items())


class TestSnappyIntegration:
    def test_snappy_tables_save_space(self):
        plain_fs = PassthroughFS(block_size=256)
        snappy_fs = PassthroughFS(block_size=256)
        plain = MiniLevelDB(plain_fs, memtable_limit=512)
        compressed = MiniLevelDB(snappy_fs, codec=SnappyCodec(), memtable_limit=512)
        for i in range(200):
            value = b"repetitive value body " * 4
            plain.put(b"key%04d" % i, value)
            compressed.put(b"key%04d" % i, value)
        plain.close()
        compressed.close()
        assert compressed.storage_bytes() < plain.storage_bytes()
        assert compressed.get(b"key0123") == b"repetitive value body " * 4


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete", "get"]),
            st.integers(0, 20),
            st.binary(max_size=20),
        ),
        max_size=60,
    )
)
@settings(max_examples=30, deadline=None)
def test_lsm_property_vs_dict(ops):
    """DESIGN.md invariant 6."""
    db = MiniLevelDB(PassthroughFS(block_size=128), memtable_limit=256, l0_limit=2)
    model = {}
    for action, key_no, value in ops:
        key = b"k%02d" % key_no
        if action == "put":
            db.put(key, value)
            model[key] = value
        elif action == "delete":
            db.delete(key)
            model.pop(key, None)
        else:
            assert db.get(key) == model.get(key)
    assert list(db.scan()) == sorted(model.items())

"""Tests for the non-POSIX APIs: DirectAPI and the unix-socket protocol."""

import pytest

from repro.core.api import APIError, DirectAPI, SocketClient, SocketServer
from repro.core.engine import CompressDB


@pytest.fixture
def engine_with_file():
    engine = CompressDB(block_size=64)
    engine.write_file("/doc", b"alpha beta gamma alpha beta " * 4)
    return engine


class TestDirectAPI:
    def test_extract(self, engine_with_file):
        api = DirectAPI(engine_with_file)
        assert api.extract("/doc", 0, 5) == b"alpha"

    def test_insert_and_delete(self, engine_with_file):
        api = DirectAPI(engine_with_file)
        api.insert("/doc", 6, b"INS ")
        assert api.extract("/doc", 0, 14) == b"alpha INS beta"
        api.delete("/doc", 6, 4)
        assert api.extract("/doc", 0, 10) == b"alpha beta"

    def test_replace(self, engine_with_file):
        api = DirectAPI(engine_with_file)
        api.replace("/doc", 0, b"ALPHA")
        assert api.extract("/doc", 0, 5) == b"ALPHA"

    def test_append(self, engine_with_file):
        api = DirectAPI(engine_with_file)
        size = engine_with_file.file_size("/doc")
        api.append("/doc", b"tail")
        assert api.extract("/doc", size, 4) == b"tail"

    def test_search_and_count(self, engine_with_file):
        api = DirectAPI(engine_with_file)
        offsets = api.search("/doc", b"beta")
        assert len(offsets) == 8
        assert api.count("/doc", b"beta") == 8


class TestSocketProtocol:
    @pytest.fixture
    def server(self, engine_with_file, tmp_path):
        socket_path = str(tmp_path / "compressdb.sock")
        with SocketServer(engine_with_file, socket_path) as running:
            yield running

    def test_extract_over_socket(self, server):
        with SocketClient(server.socket_path) as client:
            assert client.extract("/doc", 0, 5) == b"alpha"

    def test_manipulation_over_socket(self, server):
        with SocketClient(server.socket_path) as client:
            client.insert("/doc", 0, b">> ")
            client.replace("/doc", 0, b"## ")
            client.append("/doc", b" <<")
            client.delete("/doc", 0, 3)
            data = client.extract("/doc", 0, 5)
            assert data == b"alpha"

    def test_search_over_socket(self, server):
        with SocketClient(server.socket_path) as client:
            offsets = client.search("/doc", b"alpha")
            assert offsets and all(isinstance(off, int) for off in offsets)
            assert client.count("/doc", b"alpha") == len(offsets)

    def test_binary_payload_roundtrip(self, server):
        payload = bytes(range(256))
        original_size = len(b"alpha beta gamma alpha beta " * 4)
        with SocketClient(server.socket_path) as client:
            client.append("/doc", payload)
            assert client.extract("/doc", original_size, 256) == payload

    def test_error_propagates_to_client(self, server):
        with SocketClient(server.socket_path) as client:
            with pytest.raises(APIError):
                client.extract("/missing", 0, 1)

    def test_multiple_sequential_clients(self, server):
        for __ in range(3):
            with SocketClient(server.socket_path) as client:
                assert client.count("/doc", b"gamma") == 4


class TestConcurrentClients:
    def test_parallel_clients_are_served(self, engine_with_file, tmp_path):
        import threading

        socket_path = str(tmp_path / "concurrent.sock")
        with SocketServer(engine_with_file, socket_path) as server:
            errors: list[Exception] = []

            def worker(worker_no: int) -> None:
                try:
                    with SocketClient(server.socket_path) as client:
                        for i in range(10):
                            client.append("/doc", b"w%d-%02d " % (worker_no, i))
                            assert client.count("/doc", b"alpha") >= 8
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            # All 40 appends landed and the engine is consistent.
            with SocketClient(server.socket_path) as client:
                total = sum(
                    client.count("/doc", b"w%d-" % n) for n in range(4)
                )
            assert total == 40
        engine_with_file.check_invariants()

    def test_two_simultaneous_connections(self, engine_with_file, tmp_path):
        socket_path = str(tmp_path / "pair.sock")
        with SocketServer(engine_with_file, socket_path) as server:
            with SocketClient(server.socket_path) as first:
                with SocketClient(server.socket_path) as second:
                    # Interleaved requests on two open connections.
                    assert first.count("/doc", b"alpha") == 8
                    assert second.count("/doc", b"beta") == 8
                    first.append("/doc", b" one")
                    second.append("/doc", b" two")
                    assert first.count("/doc", b"two") == 1


class TestWordCountAPI:
    def test_direct_api(self, engine_with_file):
        api = DirectAPI(engine_with_file)
        counts = api.word_count("/doc")
        assert counts[b"alpha"] == 8

    def test_over_socket(self, engine_with_file, tmp_path):
        socket_path = str(tmp_path / "wc.sock")
        with SocketServer(engine_with_file, socket_path) as server:
            with SocketClient(server.socket_path) as client:
                counts = client.word_count("/doc")
        assert counts[b"beta"] == 8
        assert counts[b"gamma"] == 4

"""Differential property test: both file systems vs a Python model.

The adaptability claim of the paper rests on CompressFS being
observationally identical to a plain file system through the VFS.
This stateful test drives PassthroughFS, CompressFS, and a plain
``dict[str, bytearray]`` model through one random operation stream and
requires every observable result (reads, sizes, listings, errors) to
agree — while CompressFS's internal invariants keep holding.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.fs import CompressFS, FileNotFound, PassthroughFS
from repro.fs.overlay_lz4 import CompressedOverlayFS

_NAMES = st.sampled_from(["/a", "/b", "/dir/c", "/dir/d"])
_DATA = st.binary(max_size=150)


class FSDifferential(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.plain = PassthroughFS(block_size=32)
        self.compress = CompressFS(block_size=32, page_capacity=3)
        self.overlay = CompressedOverlayFS(
            PassthroughFS(block_size=32), segment_bytes=64
        )
        self.model: dict[str, bytearray] = {}

    def _both(self):
        return (self.plain, self.compress, self.overlay)

    @rule(path=_NAMES, data=_DATA)
    def write_file(self, path, data):
        for fs in self._both():
            fs.write_file(path, data)
        self.model[path] = bytearray(data)

    @rule(path=_NAMES, data=_DATA, position=st.floats(0, 1.2))
    def pwrite(self, path, data, position):
        if path not in self.model:
            return
        offset = int(position * (len(self.model[path]) + 1))
        for fs in self._both():
            fs._pwrite(path, offset, data)
        if not data:
            return  # POSIX: zero-length writes never extend the file
        reference = self.model[path]
        if offset > len(reference):
            reference.extend(b"\x00" * (offset - len(reference)))
        reference[offset : offset + len(data)] = data

    @rule(path=_NAMES, data=_DATA)
    def append(self, path, data):
        if path not in self.model:
            return
        for fs in self._both():
            fs.append_file(path, data)
        self.model[path].extend(data)

    @rule(path=_NAMES, position=st.floats(0, 1.2))
    def truncate(self, path, position):
        if path not in self.model:
            return
        size = int(position * (len(self.model[path]) + 8))
        for fs in self._both():
            fs.truncate(path, size)
        reference = self.model[path]
        if size < len(reference):
            del reference[size:]
        else:
            reference.extend(b"\x00" * (size - len(reference)))

    @rule(path=_NAMES)
    def unlink(self, path):
        if path not in self.model:
            for fs in self._both():
                try:
                    fs.unlink(path)
                    raise AssertionError("unlink of missing path must fail")
                except FileNotFound:
                    pass
            return
        for fs in self._both():
            fs.unlink(path)
        del self.model[path]

    @rule(path=_NAMES, position=st.floats(0, 1.2), size=st.integers(0, 120))
    def pread(self, path, position, size):
        if path not in self.model:
            return
        offset = int(position * (len(self.model[path]) + 1))
        expected = bytes(self.model[path][offset : offset + size])
        for fs in self._both():
            assert fs._pread(path, offset, size) == expected

    @invariant()
    def whole_files_match(self):
        for path, reference in self.model.items():
            for fs in self._both():
                assert fs.read_file(path) == bytes(reference)
                assert fs.stat(path).size == len(reference)

    @invariant()
    def listings_match(self):
        expected = sorted(self.model)
        for fs in self._both():
            assert fs.listdir() == expected

    @invariant()
    def compressfs_invariants_hold(self):
        self.compress.engine.check_invariants()

    @invariant()
    def compressfs_never_stores_more_unique_blocks(self):
        # Dedup can only reduce the distinct-block count.
        plain_blocks = self.plain.physical_bytes()
        compress_blocks = self.compress.physical_bytes()
        assert compress_blocks <= plain_blocks


FSDifferentialTest = FSDifferential.TestCase
FSDifferentialTest.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)

"""Tests for the block get/release protocol (Section 4.3)."""

import pytest

from repro.core.engine import CompressDB


@pytest.fixture
def engine_with_file():
    engine = CompressDB(block_size=16)
    engine.write_file("/f", b"0123456789abcdef" * 3)
    return engine


class TestGetRelease:
    def test_get_returns_valid_bytes(self, engine_with_file):
        handle = engine_with_file.get_block("/f", 1)
        assert bytes(handle.data) == b"0123456789abcdef"
        assert handle.used == 16

    def test_get_respects_holes(self, engine_with_file):
        engine_with_file.ops.insert("/f", 4, b"xy")  # creates a holey slot
        inode = engine_with_file.inode("/f")
        for index in range(inode.num_slots):
            handle = engine_with_file.get_block("/f", index)
            assert handle.used == inode.slot_at(index).used

    def test_release_commits_modification(self, engine_with_file):
        handle = engine_with_file.get_block("/f", 0)
        handle.data[0:4] = b"WXYZ"
        engine_with_file.release_block(handle)
        assert engine_with_file.read_file("/f").startswith(b"WXYZ456789abcdef")
        engine_with_file.check_invariants()

    def test_release_unchanged_is_noop(self, engine_with_file):
        writes_before = engine_with_file.device.stats.block_writes
        handle = engine_with_file.get_block("/f", 0)
        engine_with_file.release_block(handle)
        assert engine_with_file.device.stats.block_writes == writes_before

    def test_release_can_shrink_block(self, engine_with_file):
        handle = engine_with_file.get_block("/f", 2)
        del handle.data[8:]
        engine_with_file.release_block(handle)
        assert engine_with_file.file_size("/f") == 40
        assert engine_with_file.inode("/f").hole_bytes == 8

    def test_release_can_grow_into_hole(self, engine_with_file):
        handle = engine_with_file.get_block("/f", 2)
        del handle.data[8:]
        engine_with_file.release_block(handle)
        handle = engine_with_file.get_block("/f", 2)
        handle.data += b"FILLED!!"
        engine_with_file.release_block(handle)
        assert engine_with_file.read_file("/f").endswith(b"01234567FILLED!!")

    def test_double_release_rejected(self, engine_with_file):
        handle = engine_with_file.get_block("/f", 0)
        engine_with_file.release_block(handle)
        with pytest.raises(ValueError):
            engine_with_file.release_block(handle)

    def test_oversized_release_rejected(self, engine_with_file):
        handle = engine_with_file.get_block("/f", 0)
        handle.data += b"way too many extra bytes"
        with pytest.raises(ValueError):
            engine_with_file.release_block(handle)

    def test_release_dedups_against_other_blocks(self, engine_with_file):
        # Make block 1 identical to block 0: they must share storage.
        blocks_before = engine_with_file.physical_data_blocks()
        handle = engine_with_file.get_block("/f", 1)
        # Blocks 0 and 1 are already identical content; modify block 1
        # to something unique first, then back.
        handle.data[:] = b"UNIQUE-CONTENT-1"
        engine_with_file.release_block(handle)
        assert engine_with_file.physical_data_blocks() == blocks_before + 1
        handle = engine_with_file.get_block("/f", 1)
        handle.data[:] = b"0123456789abcdef"
        engine_with_file.release_block(handle)
        assert engine_with_file.physical_data_blocks() == blocks_before
        engine_with_file.check_invariants()

"""Tests for the LZ4 segment-overlay file system."""

import random

import pytest

from repro.compression.lz import SnappyCodec
from repro.fs.compressfs import CompressFS
from repro.fs.overlay_lz4 import CompressedOverlayFS
from repro.fs.vfs import PassthroughFS


@pytest.fixture(params=["passthrough", "compress"])
def overlay(request):
    if request.param == "passthrough":
        backing = PassthroughFS(block_size=64)
    else:
        backing = CompressFS(block_size=64, page_capacity=3)
    return CompressedOverlayFS(backing, segment_bytes=128)


class TestBasicIO:
    def test_write_read_roundtrip(self, overlay):
        data = b"compressible content! " * 40
        overlay.write_file("/f", data)
        assert overlay.read_file("/f") == data

    def test_partial_reads(self, overlay):
        data = bytes(range(256)) * 4
        overlay.write_file("/f", data)
        assert overlay._pread("/f", 100, 300) == data[100:400]

    def test_overwrite_within_segment(self, overlay):
        overlay.write_file("/f", b"a" * 500)
        overlay._pwrite("/f", 130, b"BBB")
        expected = b"a" * 130 + b"BBB" + b"a" * 367
        assert overlay.read_file("/f") == expected

    def test_write_across_segments(self, overlay):
        overlay.write_file("/f", b"x" * 400)
        overlay._pwrite("/f", 120, b"Y" * 100)  # spans segment boundary at 128
        data = overlay.read_file("/f")
        assert data == b"x" * 120 + b"Y" * 100 + b"x" * 180

    def test_extend_past_end(self, overlay):
        overlay.write_file("/f", b"ab")
        overlay._pwrite("/f", 200, b"far")
        data = overlay.read_file("/f")
        assert data == b"ab" + b"\x00" * 198 + b"far"

    def test_truncate_shrink(self, overlay):
        overlay.write_file("/f", b"0123456789" * 30)
        overlay.truncate("/f", 135)
        assert overlay.read_file("/f") == (b"0123456789" * 30)[:135]

    def test_truncate_grow(self, overlay):
        overlay.write_file("/f", b"ab")
        overlay.truncate("/f", 10)
        assert overlay.read_file("/f") == b"ab" + b"\x00" * 8


class TestLogStructure:
    def test_rewrites_trigger_compaction(self, overlay):
        overlay.write_file("/f", b"seed" * 64)
        for i in range(40):
            overlay._pwrite("/f", 0, b"version-%02d" % i)
        assert overlay.compactions > 0
        assert overlay.read_file("/f").startswith(b"version-39")

    def test_live_compressed_bytes_below_raw(self, overlay):
        data = b"very repetitive data " * 100
        overlay.write_file("/f", data)
        assert overlay.live_compressed_bytes() < len(data) / 2

    def test_unlink_releases_backing_file(self, overlay):
        overlay.write_file("/f", b"data")
        overlay.unlink("/f")
        assert not overlay.exists("/f")
        assert not overlay.backing.exists("/f")


class TestModelEquivalence:
    def test_random_ops_match_bytearray(self, overlay):
        rng = random.Random(12)
        reference = bytearray()
        overlay.write_file("/f", b"")
        for __ in range(60):
            op = rng.randrange(3)
            if op == 0:
                payload = bytes(rng.randrange(97, 123) for __ in range(rng.randrange(200)))
                offset = rng.randrange(len(reference) + 1)
                overlay._pwrite("/f", offset, payload)
                if offset > len(reference):
                    reference.extend(b"\x00" * (offset - len(reference)))
                reference[offset : offset + len(payload)] = payload
            elif op == 1 and reference:
                size = rng.randrange(len(reference) + 8)
                overlay.truncate("/f", size)
                if size < len(reference):
                    del reference[size:]
                else:
                    reference.extend(b"\x00" * (size - len(reference)))
            else:
                offset = rng.randrange(len(reference) + 1)
                length = rng.randrange(260)
                assert overlay._pread("/f", offset, length) == bytes(
                    reference[offset : offset + length]
                )
        assert overlay.read_file("/f") == bytes(reference)


class TestCodecChoice:
    def test_snappy_codec_works(self):
        overlay = CompressedOverlayFS(
            PassthroughFS(block_size=64), segment_bytes=128, codec=SnappyCodec()
        )
        data = b"snappy snappy snappy " * 50
        overlay.write_file("/f", data)
        assert overlay.read_file("/f") == data
        assert overlay.live_compressed_bytes() < len(data)

    def test_invalid_segment_size(self):
        with pytest.raises(ValueError):
            CompressedOverlayFS(PassthroughFS(block_size=64), segment_bytes=0)

"""Tests for the MiniColumn column store."""

import pytest

from repro.databases.minicolumn import ColumnStoreError, MiniColumn
from repro.fs import CompressFS, PassthroughFS


@pytest.fixture(params=["passthrough", "compress"])
def db(request):
    if request.param == "passthrough":
        fs = PassthroughFS(block_size=256)
    else:
        fs = CompressFS(block_size=256)
    database = MiniColumn(fs)
    database.execute("CREATE TABLE t (id INT, idx INT, score REAL, name TEXT)")
    return database


def insert_rows(db, count=50):
    values = ", ".join(
        f"({i}, {i % 5}, {i}.5, 'name-{i % 7}')" for i in range(count)
    )
    db.execute(f"INSERT INTO t VALUES {values}")


class TestDDL:
    def test_duplicate_table_rejected(self, db):
        with pytest.raises(ColumnStoreError):
            db.execute("CREATE TABLE t (a INT)")

    def test_unknown_table(self, db):
        with pytest.raises(ColumnStoreError):
            db.execute("SELECT * FROM nope")

    def test_delete_is_lightweight(self, db):
        insert_rows(db, 10)
        db.execute("DELETE FROM t WHERE id = 1")
        # The row is hidden but physically present until OPTIMIZE.
        assert db.execute("SELECT count(*) c FROM t")[0]["c"] == 9
        assert db.table("t").row_count() == 10


class TestInsertSelect:
    def test_roundtrip_all_types(self, db):
        db.execute("INSERT INTO t VALUES (1, 2, 3.5, 'text value')")
        rows = db.execute("SELECT * FROM t")
        assert rows == [{"id": 1, "idx": 2, "score": 3.5, "name": "text value"}]

    def test_null_values(self, db):
        db.execute("INSERT INTO t VALUES (1, NULL, NULL, NULL)")
        rows = db.execute("SELECT * FROM t")
        assert rows == [{"id": 1, "idx": None, "score": None, "name": None}]

    def test_batch_insert(self, db):
        insert_rows(db, 100)
        assert db.execute("SELECT count(*) c FROM t")[0]["c"] == 100

    def test_where_filter(self, db):
        insert_rows(db, 50)
        rows = db.execute("SELECT id FROM t WHERE idx = 3")
        assert [row["id"] for row in rows] == [i for i in range(50) if i % 5 == 3]

    def test_group_by_aggregate(self, db):
        insert_rows(db, 50)
        rows = db.execute("SELECT idx, count(*) c FROM t GROUP BY idx ORDER BY idx")
        assert all(row["c"] == 10 for row in rows)

    def test_paper_range_scan_query(self, db):
        insert_rows(db, 60)
        rows = db.execute(
            "SELECT id, sum(score)/count(name) r FROM t "
            "WHERE idx >= 0 AND idx <= 3 GROUP BY id ORDER BY r DESC"
        )
        assert len(rows) == 48
        values = [row["r"] for row in rows]
        assert values == sorted(values, reverse=True)

    def test_value_count_mismatch(self, db):
        with pytest.raises(ColumnStoreError):
            db.execute("INSERT INTO t VALUES (1, 2)")


class TestColumnarAccess:
    def test_projection_pruning_reads_fewer_blocks(self, db):
        insert_rows(db, 200)
        db.fs.device.stats.reset()
        db.execute("SELECT idx FROM t")
        pruned = db.fs.device.stats.bytes_read
        db.fs.device.stats.reset()
        db.execute("SELECT * FROM t")
        full = db.fs.device.stats.bytes_read
        assert pruned < full / 2

    def test_count_star_scans_one_column(self, db):
        insert_rows(db, 10)
        table = db.table("t")
        assert db._referenced_columns(
            __import__("repro.databases.sql_parser", fromlist=["parse"]).parse(
                "SELECT count(*) FROM t"
            ),
            table,
        ) == ["id"]

    def test_scan_unknown_column_rejected(self, db):
        insert_rows(db, 5)
        with pytest.raises(ColumnStoreError):
            list(db.table("t").scan(columns=["nope"]))

    def test_read_row(self, db):
        insert_rows(db, 20)
        row = db.table("t").read_row(7)
        assert row["id"] == 7 and row["name"] == "name-0"


class TestUpdate:
    def test_update_fixed_width(self, db):
        insert_rows(db, 30)
        db.execute("UPDATE t SET score = 0.0 WHERE id = 7")
        assert db.execute("SELECT score FROM t WHERE id = 7")[0]["score"] == 0.0

    def test_update_text_relocates(self, db):
        insert_rows(db, 10)
        db.execute("UPDATE t SET name = 'a much longer replacement string' WHERE id = 3")
        assert (
            db.execute("SELECT name FROM t WHERE id = 3")[0]["name"]
            == "a much longer replacement string"
        )
        # Neighbours untouched.
        assert db.execute("SELECT name FROM t WHERE id = 2")[0]["name"] == "name-2"
        assert db.execute("SELECT name FROM t WHERE id = 4")[0]["name"] == "name-4"

    def test_update_text_to_null(self, db):
        insert_rows(db, 5)
        db.execute("UPDATE t SET name = NULL WHERE id = 1")
        assert db.execute("SELECT name FROM t WHERE id = 1")[0]["name"] is None

    def test_update_with_expression(self, db):
        insert_rows(db, 5)
        db.execute("UPDATE t SET idx = idx + 100 WHERE id = 2")
        assert db.execute("SELECT idx FROM t WHERE id = 2")[0]["idx"] == 102

    def test_update_all_rows(self, db):
        insert_rows(db, 10)
        db.execute("UPDATE t SET idx = 0")
        assert all(row["idx"] == 0 for row in db.execute("SELECT idx FROM t"))


class TestPersistence:
    def test_reopen_from_catalog(self, db):
        insert_rows(db, 25)
        db.execute("UPDATE t SET name = 'changed' WHERE id = 5")
        reopened = MiniColumn(db.fs)
        assert reopened.execute("SELECT count(*) c FROM t")[0]["c"] == 25
        assert reopened.execute("SELECT name FROM t WHERE id = 5")[0]["name"] == "changed"


class TestBenchInterface:
    def test_bench_read_write(self, db):
        db.bench_setup()
        db.bench_write("3", "payload")
        assert db.bench_read("3") == "payload"
        db.bench_write("3", "new payload")
        assert db.bench_read("3") == "new payload"
        assert db.bench_read("404") is None

"""Tests for the YCSB workload generator."""

import pytest

from repro.databases.minileveldb import MiniLevelDB
from repro.fs import CompressFS, PassthroughFS
from repro.workloads.ycsb import PROFILES, YCSBGenerator, YCSBProfile, run_ycsb


class TestProfiles:
    def test_all_six_defined(self):
        assert set(PROFILES) == set("ABCDEF")

    def test_mixes_sum_to_one(self):
        for profile in PROFILES.values():
            total = profile.read + profile.update + profile.insert + profile.scan + profile.rmw
            assert total == pytest.approx(1.0)

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            YCSBProfile("X", 0.5, 0.1, 0.0, 0.0, 0.0, "zipfian")


class TestGenerator:
    def test_workload_a_mix(self):
        generator = YCSBGenerator("A", record_count=100)
        ops = list(generator.operations(4000))
        reads = sum(1 for op in ops if op.kind == "read")
        updates = sum(1 for op in ops if op.kind == "update")
        assert reads + updates == 4000
        assert 0.45 < reads / 4000 < 0.55

    def test_workload_c_is_read_only(self):
        ops = list(YCSBGenerator("C", record_count=50).operations(500))
        assert all(op.kind == "read" for op in ops)

    def test_workload_d_inserts_grow_keyspace(self):
        generator = YCSBGenerator("D", record_count=100)
        ops = list(generator.operations(2000))
        inserted = [op.key for op in ops if op.kind == "insert"]
        assert inserted == list(range(100, 100 + len(inserted)))

    def test_workload_d_reads_favour_latest(self):
        generator = YCSBGenerator("D", record_count=1000)
        reads = [op.key for op in generator.operations(3000) if op.kind == "read"]
        recent = sum(1 for key in reads if key >= 900)
        assert recent > len(reads) * 0.5

    def test_workload_e_scans(self):
        ops = list(YCSBGenerator("E", record_count=100, max_scan_length=10).operations(500))
        scans = [op for op in ops if op.kind == "scan"]
        assert scans and all(1 <= op.scan_length <= 10 for op in scans)

    def test_keys_in_range(self):
        generator = YCSBGenerator("A", record_count=77)
        assert all(0 <= op.key < 77 for op in generator.operations(1000))

    def test_deterministic(self):
        first = [(op.kind, op.key) for op in YCSBGenerator("A", seed=5).operations(100)]
        second = [(op.kind, op.key) for op in YCSBGenerator("A", seed=5).operations(100)]
        assert first == second

    def test_zipfian_is_skewed(self):
        generator = YCSBGenerator("B", record_count=1000)
        keys = [op.key for op in generator.operations(3000)]
        assert sum(1 for key in keys if key < 10) > len(keys) * 0.25


class TestRunner:
    @pytest.mark.parametrize("workload", list("ABCDEF"))
    def test_runs_on_lsm_store(self, workload):
        db = MiniLevelDB(PassthroughFS(block_size=512), memtable_limit=8 * 1024)
        counts = run_ycsb(db, workload, operations=120, record_count=60)
        assert sum(counts.values()) == 120

    def test_compressdb_saves_space_on_redundant_values(self):
        corpus = b"the same paragraph of text repeated over and over. " * 200
        base_fs = PassthroughFS(block_size=512)
        comp_fs = CompressFS(block_size=512)
        for fs in (base_fs, comp_fs):
            db = MiniLevelDB(fs, memtable_limit=8 * 1024)
            run_ycsb(db, "A", operations=200, record_count=100, corpus=corpus)
            db.close()
        assert comp_fs.physical_bytes() <= base_fs.physical_bytes()

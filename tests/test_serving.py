"""Serving-layer tests: protocol framing, tenancy, admission, facade.

Four concerns, matching the layer's four moving parts:

* **framing** — golden bytes, round trips, and hostile input (truncated
  frames, bad CRCs, unknown opcodes) must fail cleanly and never kill
  the connection;
* **tenancy** — namespaces are disjoint, quotas bind, and one tenant's
  flood cannot starve another (fair-share scheduling);
* **admission** — under overload the server sheds with retry-after
  instead of queueing unboundedly, and accepted latency stays bounded;
* **the facade** — ``repro.api`` behaves identically over the wire and
  in-process, and a crash mid-request leaves a recoverable image.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

import repro.api as api
from repro.core.engine import CompressDB
from repro.fs.compressfs import CompressFS
from repro.fs.errors import (
    FileNotFound,
    PermissionDenied,
    QuotaExceeded,
    TryAgain,
    WIRE_CODES,
    wire_code,
    wire_error_payload,
)
from repro.mvcc.session import WriteConflict
from repro.serving import (
    AdmissionController,
    DeficitRoundRobin,
    FramedSocketServer,
    LoopbackTransport,
    RemoteFS,
    Server,
    ServerConfig,
    ServingRequest,
    SocketTransport,
    TenantConfig,
    TokenBucket,
    WireClient,
    exact_percentile,
    jain_fairness,
)
from repro.serving import protocol
from repro.serving.slo import metric_segment
from repro.storage.block_device import CrashPointDevice, MemoryBlockDevice
from repro.workloads import open_loop_arrivals

GOLDENS = Path(__file__).parent / "goldens"


def make_server(**config_kwargs) -> Server:
    config = ServerConfig(**config_kwargs) if config_kwargs else None
    return Server(fs=CompressFS(block_size=256, page_capacity=8), config=config)


def make_client(server: Server, tenant: str) -> WireClient:
    return WireClient(LoopbackTransport(server, tenant))


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


class TestFraming:
    def test_golden_frame_bytes(self):
        """The encoding is frozen: same payload, same bytes, forever."""
        frame = protocol.encode_frame(
            protocol.OPCODES["FS_PWRITE"],
            7,
            {"path": "/a", "offset": 3, "data": b"\x00\x01"},
        )
        assert frame.hex() == (
            "43444257011300000000000700000020"  # magic, v1, FS_PWRITE, id 7
            "4a23e853"  # crc32 of the payload
            "640373047061746873022f6173066f6666736574690673046461746162020001"
        )

    def test_roundtrip_all_value_types(self):
        payload = {
            "none": None,
            "true": True,
            "false": False,
            "int": -(1 << 40),
            "float": 2.5,
            "str": "héllo",
            "bytes": b"\x00\xff",
            "list": [1, "two", [3.0]],
            "dict": {"nested": b"ok"},
        }
        raw = protocol.encode_frame(protocol.OPCODES["PING"], 42, payload)
        frame, end = protocol.decode_frame(raw)
        assert end == len(raw)
        assert frame.request_id == 42
        assert frame.payload == payload

    def test_truncated_frame_waits_for_more(self):
        raw = protocol.encode_frame(protocol.OPCODES["PING"], 1, {"k": "v"})
        for cut in (0, 4, protocol.HEADER_BYTES, len(raw) - 1):
            with pytest.raises(protocol.TruncatedFrame):
                protocol.decode_frame(raw[:cut])

    def test_bad_crc_is_checksum_error(self):
        raw = bytearray(protocol.encode_frame(protocol.OPCODES["PING"], 1, {"k": "v"}))
        raw[-1] ^= 0xFF
        with pytest.raises(protocol.ChecksumError):
            protocol.decode_frame(bytes(raw))

    def test_bad_magic_and_version(self):
        raw = bytearray(protocol.encode_frame(protocol.OPCODES["PING"], 1, {}))
        wrong_magic = b"XXXX" + bytes(raw[4:])
        with pytest.raises(protocol.BadMagic):
            protocol.decode_frame(wrong_magic)
        raw[4] = 99
        with pytest.raises(protocol.BadVersion):
            protocol.decode_frame(bytes(raw))

    def test_decoder_reassembles_byte_at_a_time(self):
        frames = [
            protocol.encode_frame(protocol.OPCODES["PING"], i, {"i": i})
            for i in range(3)
        ]
        decoder = protocol.FrameDecoder()
        seen = []
        for byte in b"".join(frames):
            seen += decoder.feed(bytes([byte]))
        assert [f.payload["i"] for f in seen] == [0, 1, 2]

    def test_decoder_poisons_on_framing_error(self):
        decoder = protocol.FrameDecoder()
        with pytest.raises(protocol.BadMagic):
            decoder.feed(b"GARBAGE-GARBAGE-GARBAGE-")
        with pytest.raises(protocol.ProtocolError):
            decoder.feed(protocol.encode_frame(protocol.OPCODES["PING"], 1, {}))

    def test_fuzz_mutations_never_escape_protocol_error(self):
        """Arbitrary corruption either decodes or raises ProtocolError —
        nothing else (no struct.error, no KeyError) reaches the caller."""
        rng = random.Random(20260808)
        base = protocol.encode_frame(
            protocol.OPCODES["SQL_EXECUTE"], 9, {"sql": "SELECT 1", "rows": [1, 2]}
        )
        for __ in range(400):
            mutated = bytearray(base)
            for __ in range(rng.randint(1, 6)):
                mutated[rng.randrange(len(mutated))] = rng.randrange(256)
            try:
                protocol.decode_frame(bytes(mutated[: rng.randint(0, len(mutated))]))
            except protocol.ProtocolError:
                pass

    def test_oversized_payload_rejected_both_ways(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_frame(
                protocol.OPCODES["PING"], 1, {"d": b"x" * (protocol.MAX_PAYLOAD + 1)}
            )
        # A forged header advertising a huge payload must be rejected
        # before any attempt to buffer it.
        header = protocol.encode_frame(protocol.OPCODES["PING"], 1, {})[
            : protocol.HEADER_BYTES
        ]
        forged = bytearray(header)
        forged[12:16] = (protocol.MAX_PAYLOAD + 1).to_bytes(4, "big")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(bytes(forged))


class TestWireCodes:
    def test_golden_wire_codes(self):
        """Codes are a wire contract: changing one breaks every client."""
        golden = json.loads((GOLDENS / "wire_codes.json").read_text())
        assert WIRE_CODES == golden

    def test_codes_are_injective(self):
        assert len(set(WIRE_CODES.values())) == len(WIRE_CODES)

    def test_mro_matching(self):
        assert wire_code(protocol.ChecksumError("x")) == WIRE_CODES["ChecksumError"]
        assert wire_code(protocol.BadMagic("x")) == WIRE_CODES["ProtocolError"]
        assert wire_code(RuntimeError("x")) == WIRE_CODES["FSError"]

    def test_retry_after_travels(self):
        body = wire_error_payload(TryAgain("busy", retry_after_ms=12.5))
        assert body["retry_after_ms"] == 12.5


# ---------------------------------------------------------------------------
# Server: hostile frames and error normalization
# ---------------------------------------------------------------------------


class TestServerRobustness:
    def test_unknown_opcode_is_clean_error_and_connection_survives(self):
        server = make_server()
        server.add_tenant("t")
        client = make_client(server, "t")
        raw = server.serve_frame(
            "t", protocol.encode_frame(0x7F, 5, {})
        )
        frame, __ = protocol.decode_frame(raw)
        assert frame.is_error
        assert frame.request_id == 5
        assert frame.payload["error"] == "UnknownOpcode"
        assert frame.payload["code"] == WIRE_CODES["UnknownOpcode"]
        # Same connection keeps working.
        assert client.ping()["pong"] is True

    def test_corrupt_frame_answers_error_on_id_zero(self):
        server = make_server()
        server.add_tenant("t")
        good = protocol.encode_frame(protocol.OPCODES["PING"], 3, {})
        corrupt = bytearray(good)
        corrupt[-1] ^= 0xFF
        frame, __ = protocol.decode_frame(server.serve_frame("t", bytes(corrupt)))
        assert frame.is_error and frame.request_id == 0
        assert frame.payload["error"] == "ChecksumError"
        frame, __ = protocol.decode_frame(server.serve_frame("t", good))
        assert not frame.is_error and frame.request_id == 3

    def test_engine_errors_normalize_to_wire_codes(self):
        server = make_server()
        server.add_tenant("t")
        client = make_client(server, "t")
        with pytest.raises(FileNotFound):
            RemoteFS(client).read_file("/missing")

    def test_unprovisioned_tenant_denied(self):
        server = make_server()
        client = make_client(server, "ghost")
        with pytest.raises(PermissionDenied):
            client.ping()


# ---------------------------------------------------------------------------
# Tenancy: namespaces, quotas, fairness
# ---------------------------------------------------------------------------


class TestTenantIsolation:
    def test_namespaces_are_disjoint(self):
        server = make_server()
        server.add_tenant("alice")
        server.add_tenant("bob")
        alice = RemoteFS(make_client(server, "alice"))
        bob = RemoteFS(make_client(server, "bob"))
        alice.write_file("/same-path", b"alice's data")
        bob.write_file("/same-path", b"bob's data")
        assert alice.read_file("/same-path") == b"alice's data"
        assert bob.read_file("/same-path") == b"bob's data"
        alice.write_file("/only-alice", b"private")
        assert not bob.exists("/only-alice")
        assert sorted(bob.listdir()) == ["/same-path"]

    def test_byte_quota_binds_and_frees(self):
        server = make_server()
        server.add_tenant(TenantConfig(name="small", quota_bytes=512))
        fs = RemoteFS(make_client(server, "small"))
        fs.write_file("/a", b"x" * 400)
        with pytest.raises(QuotaExceeded):
            fs.write_file("/b", b"y" * 400)
        fs.unlink("/a")
        fs.write_file("/b", b"y" * 400)

    def test_inode_and_fd_quotas(self):
        server = make_server()
        server.add_tenant(TenantConfig(name="t", quota_inodes=2, fd_limit=1))
        client = make_client(server, "t")
        fs = RemoteFS(client)
        fs.write_file("/one", b"1")
        fs.write_file("/two", b"2")
        with pytest.raises(QuotaExceeded):
            fs.write_file("/three", b"3")
        fd = client.call("FS_OPEN", path="/one")["fd"]
        with pytest.raises(QuotaExceeded):
            client.call("FS_OPEN", path="/two")
        client.call("FS_CLOSE", fd=fd)
        client.call(
            "FS_CLOSE", fd=client.call("FS_OPEN", path="/two")["fd"]
        )

    def test_quota_is_not_charged_for_aborted_session(self):
        server = make_server()
        server.add_tenant(TenantConfig(name="t", quota_bytes=512))
        client = make_client(server, "t")
        sid = client.session_begin()
        RemoteFS(client, session_id=sid).write_file("/big", b"x" * 400)
        client.session_abort(sid)
        # The provisional charge was dropped with the session.
        RemoteFS(make_client(server, "t")).write_file("/after", b"y" * 400)

    def test_flood_cannot_starve_other_tenants(self):
        """One tenant offering 10x the load of three others: DRR keeps
        the quiet tenants' latency in the same band as each other and
        fairness across equal weights stays high."""
        server = make_server(admission=False)
        for name in ("flood", "q1", "q2", "q3"):
            server.add_tenant(name)
        payload = {"path": "/f", "data": b"z" * 64}
        requests = []
        for i in range(300):
            requests.append(
                ServingRequest(i * 1e-4, "flood", protocol.OPCODES["FS_WRITE_FILE"], payload)
            )
        for i in range(30):
            for name in ("q1", "q2", "q3"):
                requests.append(
                    ServingRequest(i * 1e-3, name, protocol.OPCODES["FS_WRITE_FILE"], payload)
                )
        outcome = server.run_open_loop(requests)
        quiet_p95 = [
            exact_percentile(outcome[name]["latencies"], 0.95)
            for name in ("q1", "q2", "q3")
        ]
        assert jain_fairness(quiet_p95) > 0.9
        # The flood tenant bears its own queueing; the quiet tenants
        # must not be dragged to its latency.
        flood_p95 = exact_percentile(outcome["flood"]["latencies"], 0.95)
        assert max(quiet_p95) < flood_p95


# ---------------------------------------------------------------------------
# Admission control and scheduling units
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_token_bucket_refills(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.retry_after(0.0) == pytest.approx(0.1)
        assert bucket.try_take(0.1)

    def test_admit_sheds_on_rate_then_recovers(self):
        control = AdmissionController(enabled=True)
        control.configure_tenant("t", rate_per_s=10.0, burst=1.0)
        assert control.admit("t", 0.0, 0, 0.0) is None
        shed = control.admit("t", 0.0, 0, 0.0)
        assert shed is not None and shed.retry_after_s > 0
        assert control.admit("t", 1.0, 0, 0.0) is None

    def test_admit_bounds_queue_depth_and_delay(self):
        control = AdmissionController(
            enabled=True, per_tenant_queue_limit=4, max_queue_delay_s=0.5
        )
        assert control.admit("t", 0.0, tenant_queued=4, queued_cost_s=0.0) is not None
        assert control.admit("t", 0.0, tenant_queued=0, queued_cost_s=0.9) is not None
        assert control.admit("t", 0.0, tenant_queued=3, queued_cost_s=0.1) is None

    def test_disabled_admission_accepts_everything(self):
        control = AdmissionController(enabled=False, per_tenant_queue_limit=1)
        assert control.admit("t", 0.0, tenant_queued=99, queued_cost_s=99.0) is None

    def test_drr_weighted_shares(self):
        # Quantum on the order of one request's cost estimate, so one
        # rotation grants a few requests, proportional to weight.
        drr = DeficitRoundRobin(quantum_s=1e-4)
        drr.lane("heavy", weight=3.0)
        drr.lane("light", weight=1.0)
        for i in range(40):
            drr.enqueue("heavy", f"h{i}")
            drr.enqueue("light", f"l{i}")
        drained = [drr.next()[0] for __ in range(40)]
        heavy_share = drained.count("heavy") / len(drained)
        assert 0.65 < heavy_share < 0.85

    def test_shed_surfaces_as_try_again_with_retry_after(self):
        server = make_server(default_rate_per_s=1.0)
        server.add_tenant(TenantConfig(name="t", burst=1.0))
        client = make_client(server, "t")
        assert client.ping()["pong"] is True
        with pytest.raises(TryAgain) as excinfo:
            client.ping()
        assert excinfo.value.retry_after_ms > 0


# ---------------------------------------------------------------------------
# Open-loop serving and graceful degradation
# ---------------------------------------------------------------------------


def _write_requests(tenants, rate_per_s, duration_s, nbytes=64):
    requests = []
    for tenant in tenants:
        gap = 1.0 / rate_per_s
        now = 0.0
        i = 0
        while now < duration_s:
            requests.append(
                ServingRequest(
                    now,
                    tenant,
                    protocol.OPCODES["FS_WRITE_FILE"],
                    {"path": f"/w{i % 8}", "data": b"x" * nbytes},
                )
            )
            now += gap
            i += 1
    return requests


class TestOpenLoop:
    def test_admission_bounds_overload_latency(self):
        """2x overload: with admission on, accepted p99 stays within 5x
        of the uncontended p99; with admission off the p99 blows up."""
        def run(admission: bool, rate_per_s: float):
            server = make_server(
                admission=admission, max_queue_delay_s=0.002, default_rate_per_s=400.0
            )
            for i in range(4):
                server.add_tenant(TenantConfig(name=f"t{i}", burst=8.0))
            outcome = server.run_open_loop(
                _write_requests([f"t{i}" for i in range(4)], rate_per_s, 0.25)
            )
            latencies = [
                lat for r in outcome.values() for lat in r["latencies"]
            ]
            shed = sum(r["shed"] for r in outcome.values())
            return exact_percentile(latencies, 0.99), shed

        uncontended_p99, __ = run(admission=True, rate_per_s=40.0)
        overload_p99, overload_shed = run(admission=True, rate_per_s=700.0)
        baseline_p99, baseline_shed = run(admission=False, rate_per_s=700.0)
        assert overload_shed > 0
        assert baseline_shed == 0
        assert overload_p99 <= 5.0 * uncontended_p99
        assert baseline_p99 > 10.0 * overload_p99

    def test_slo_report_counts_and_percentiles(self):
        server = make_server()
        server.add_tenant("t")
        outcome = server.run_open_loop(_write_requests(["t"], 100.0, 0.1))
        report = server.report()
        assert len(report) == 1
        entry = report[0]
        assert entry["tenant"] == "t"
        assert entry["completed"] == len(outcome["t"]["latencies"])
        assert entry["offered"] == entry["accepted"] + entry["shed"]
        assert 0.0 < entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]

    def test_ycsb_open_loop_arrivals_deterministic(self):
        first = open_loop_arrivals("A", 200.0, 0.2, record_count=50, seed=3)
        second = open_loop_arrivals("A", 200.0, 0.2, record_count=50, seed=3)
        assert [t.arrival_s for t in first] == [t.arrival_s for t in second]
        assert [t.op.kind for t in first] == [t.op.kind for t in second]
        different = open_loop_arrivals("A", 200.0, 0.2, record_count=50, seed=4)
        assert [t.arrival_s for t in first] != [t.arrival_s for t in different]
        # Poisson arrivals at 200/s over 0.2s: expect ~40, loosely.
        assert 15 <= len(first) <= 80
        assert all(first[i].arrival_s <= first[i + 1].arrival_s for i in range(len(first) - 1))


class TestSLOHelpers:
    def test_exact_percentile_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert exact_percentile(samples, 0.50) == 50.0
        assert exact_percentile(samples, 0.99) == 99.0
        assert exact_percentile(samples, 1.0) == 100.0

    def test_jain_fairness(self):
        assert jain_fairness([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_fairness([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
        assert jain_fairness([]) == 1.0

    def test_metric_segment_sanitizes(self):
        assert metric_segment("Tenant-7!") == "tenant_7"
        assert metric_segment("ok_name") == "ok_name"


# ---------------------------------------------------------------------------
# Sessions over the wire
# ---------------------------------------------------------------------------


class TestWireSessions:
    def test_commit_publishes_abort_discards(self):
        server = make_server()
        server.add_tenant("t")
        client = make_client(server, "t")
        base = RemoteFS(client)

        sid = client.session_begin()
        RemoteFS(client, session_id=sid).write_file("/committed", b"yes")
        client.session_commit(sid)
        assert base.read_file("/committed") == b"yes"

        sid = client.session_begin()
        RemoteFS(client, session_id=sid).write_file("/aborted", b"no")
        client.session_abort(sid)
        assert not base.exists("/aborted")

    def test_first_committer_wins_over_wire(self):
        server = make_server()
        server.add_tenant("t")
        client = make_client(server, "t")
        RemoteFS(client).write_file("/contended", b"base")
        a = client.session_begin()
        b = client.session_begin()
        RemoteFS(client, session_id=a).write_file("/contended", b"from a")
        RemoteFS(client, session_id=b).write_file("/contended", b"from b")
        client.session_commit(a)
        with pytest.raises(WriteConflict):
            client.session_commit(b)
        assert RemoteFS(client).read_file("/contended") == b"from a"

    def test_goodbye_aborts_open_sessions(self):
        server = make_server()
        server.add_tenant("t")
        client = make_client(server, "t")
        sid = client.session_begin()
        RemoteFS(client, session_id=sid).write_file("/dangling", b"x")
        farewell = client.goodbye()
        assert farewell["sessions_aborted"] == 1
        assert not RemoteFS(make_client(server, "t")).exists("/dangling")


# ---------------------------------------------------------------------------
# Databases over the wire
# ---------------------------------------------------------------------------


class TestWireDatabases:
    def test_sql_kv_column_and_pushdown(self):
        server = make_server()
        server.add_tenant("t")
        client = make_client(server, "t")

        client.sql("CREATE TABLE kvs (id INT, v INT)")
        client.sql("INSERT INTO kvs VALUES (1, 10)")
        client.sql("INSERT INTO kvs VALUES (2, 20)")
        rows = client.sql("SELECT id, v FROM kvs WHERE v > 15")
        assert rows == [{"id": 2, "v": 20}]

        client.kv_put(b"k1", b"v1")
        client.kv_put(b"k2", b"v2")
        assert client.kv_get(b"k1") == b"v1"
        assert [k for k, __ in client.kv_scan()] == [b"k1", b"k2"]
        client.kv_delete(b"k1")
        assert client.kv_get(b"k1") is None

        client.column("CREATE TABLE m (a INT, b INT)")
        client.column("INSERT INTO m VALUES (1, 100)")
        client.column("INSERT INTO m VALUES (2, 200)")
        total = client.aggregate("SELECT SUM(b) FROM m")
        assert list(total[0].values()) == [300]

        RemoteFS(client).write_file("/doc", b"needle in a haystack, needle")
        assert client.search("/doc", b"needle") == [0, 22]
        assert client.count("/doc", b"needle") == 2

    def test_pushdown_on_missing_file(self):
        server = make_server()
        server.add_tenant("t")
        client = make_client(server, "t")
        with pytest.raises(FileNotFound):
            client.search("/nope", b"x")


# ---------------------------------------------------------------------------
# The repro.api facade
# ---------------------------------------------------------------------------


def drive_facade(client: api.Client) -> dict:
    """One scripted op sequence whose outcome fingerprints a backend."""
    client.fs.write_file("/facade", b"facade bytes")
    client.kv.put(b"a", b"1")
    client.kv.put(b"b", b"2")
    client.sql("CREATE TABLE f (id INT, v INT)")
    client.sql("INSERT INTO f VALUES (1, 5)")
    with client.session() as txn:
        txn.fs.write_file("/txn", b"committed")
    try:
        with client.session() as txn:
            txn.fs.write_file("/rolled-back", b"x")
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    return {
        "read": client.fs.read_file("/facade"),
        "kv": list(client.kv.scan()),
        "sql": client.sql("SELECT id, v FROM f"),
        "txn": client.fs.read_file("/txn"),
        "rolled_back": client.fs.exists("/rolled-back"),
        "search": client.search("/facade", b"bytes"),
        "count": client.count("/facade", b"a"),
    }


class TestFacade:
    def test_wire_and_direct_backends_are_equivalent(self):
        direct = drive_facade(api.connect(CompressFS(block_size=256, page_capacity=8)))
        server = make_server()
        server.add_tenant("t")
        wire = drive_facade(api.connect(server, tenant="t"))
        assert direct == wire

    def test_connect_validates_target(self):
        from repro.fs.errors import InvalidArgument

        with pytest.raises(InvalidArgument):
            api.connect(make_server())  # server target requires a tenant
        with pytest.raises(InvalidArgument):
            api.connect(CompressFS(), tenant="t")  # tenant needs a server
        with pytest.raises(InvalidArgument):
            api.connect(object())

    def test_legacy_entry_points_warn_but_work(self):
        from repro.core.api import DirectAPI

        engine = CompressDB(block_size=256, page_capacity=8)
        engine.create("/x")
        with pytest.warns(DeprecationWarning):
            legacy = DirectAPI(engine)
        legacy.append("/x", b"still works")
        assert legacy.extract("/x", 0, 11) == b"still works"


# ---------------------------------------------------------------------------
# Crash mid-request
# ---------------------------------------------------------------------------


class TestCrashMidRequest:
    def test_crash_surfaces_error_and_image_recovers(self):
        device = MemoryBlockDevice(block_size=256)
        engine = CompressDB.mount(device, journal_blocks=64)
        fs = CompressFS(engine=engine)
        server = Server(fs=fs)
        server.add_tenant("t")
        client = make_client(server, "t")
        RemoteFS(client).write_file("/pre-crash", b"durable")
        engine.fsync()

        # Mutations buffer in memory until fsync, so the crash point is
        # armed on the device writes the FS_FSYNC request issues.
        wrapped = CrashPointDevice(device, crash_after=3)
        engine.device.inner = wrapped  # journal wraps the raw device
        write_frame, __ = protocol.decode_frame(
            server.serve_frame(
                "t",
                protocol.encode_frame(
                    protocol.OPCODES["FS_WRITE_FILE"],
                    10,
                    {"path": "/mid-crash", "data": b"y" * 2048},
                ),
            )
        )
        assert not write_frame.is_error
        frame, __ = protocol.decode_frame(
            server.serve_frame(
                "t",
                protocol.encode_frame(protocol.OPCODES["FS_FSYNC"], 11, {}),
            )
        )
        assert frame.is_error and frame.request_id == 11
        assert frame.payload["error"] == "FSError"  # CrashPoint degrades to EIO

        # "Reboot": remount whatever reached the inner device.
        recovered = CompressDB.mount(device)
        report = recovered.fsck(repair=False)
        violations = (
            report["refcounts_fixed"]
            + report["blocks_reclaimed"]
            + report["hole_inconsistencies"]
        )
        assert violations == 0, f"fsck found violations: {report}"
        recovered.check_invariants()
        rfs = CompressFS(engine=recovered)
        assert rfs.read_file("/t/t/pre-crash") == b"durable"


# ---------------------------------------------------------------------------
# Socket transport
# ---------------------------------------------------------------------------


class TestSocketTransport:
    @pytest.fixture
    def stack(self, tmp_path):
        server = make_server()
        server.add_tenant("gold")
        path = str(tmp_path / "serving.sock")
        with FramedSocketServer(server, path) as front:
            yield server, front, path

    def test_request_response_over_socket(self, stack):
        __, __, path = stack
        with SocketTransport(path) as transport:
            client = WireClient(transport)
            assert client.hello("gold")["tenant"] == "gold"
            fs = RemoteFS(client)
            fs.write_file("/sock", b"over a real socket")
            assert fs.read_file("/sock") == b"over a real socket"

    def test_connection_must_hello_first(self, stack):
        __, __, path = stack
        with SocketTransport(path) as transport:
            with pytest.raises(PermissionDenied):
                WireClient(transport).ping()

    def test_unknown_tenant_rejected(self, stack):
        __, __, path = stack
        with SocketTransport(path) as transport:
            with pytest.raises(PermissionDenied):
                WireClient(transport).hello("nobody")

    def test_garbage_gets_error_frame_then_hangup(self, stack):
        import socket

        __, __, path = stack
        peer = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        peer.connect(path)
        peer.settimeout(5)
        peer.sendall(b"NOT-A-FRAME-AT-ALL------")
        frame, __ = protocol.decode_frame(peer.recv(65536))
        assert frame.is_error
        assert frame.payload["error"] == "ProtocolError"
        peer.close()

    def test_auto_provision_mode(self, tmp_path):
        server = make_server()
        path = str(tmp_path / "auto.sock")
        with FramedSocketServer(server, path, auto_provision=True):
            with SocketTransport(path) as transport:
                assert WireClient(transport).hello("walk-in")["tenant"] == "walk-in"
        assert "walk-in" in server.tenants()


# ---------------------------------------------------------------------------
# CLI serve wiring
# ---------------------------------------------------------------------------


class TestCLIServe:
    def test_serving_stack_provisions_tenants(self, tmp_path):
        from repro.cli import _close, _mount, _serving_stack, build_parser, main

        img = str(tmp_path / "store.img")
        assert main(["init", img]) == 0
        args = build_parser().parse_args(
            ["serve", img, str(tmp_path / "s.sock"), "--tenant", "gold:4", "--tenant", "silver"]
        )
        engine = _mount(img)
        try:
            server, front = _serving_stack(engine, args)
            assert server.tenants() == ["gold", "silver"]
            assert server._tenants["gold"].config.weight == 4.0
            assert front.auto_provision is False
            with front:
                with SocketTransport(args.socket) as transport:
                    client = WireClient(transport)
                    assert client.hello("gold")["root"] == "/t/gold"
        finally:
            _close(engine, flush=True)

    def test_invalid_tenant_spec_is_cli_error(self, tmp_path):
        from repro.cli import CLIError, _close, _mount, _serving_stack, build_parser, main

        img = str(tmp_path / "store.img")
        main(["init", img])
        parser = build_parser()
        engine = _mount(img)
        try:
            for spec in (":3", "gold:heavy"):
                args = parser.parse_args(
                    ["serve", img, str(tmp_path / "s.sock"), "--tenant", spec]
                )
                with pytest.raises(CLIError):
                    _serving_stack(engine, args)
        finally:
            _close(engine, flush=False)

"""Compressed-domain column encodings: codecs, picker, scans, morphing.

Three layers of coverage:

* codec round trips (:mod:`repro.databases.colcodec`) over edge cases —
  empty batches, single runs, maximum delta bit width, NULL handling;
* Hypothesis equivalence: a MiniColumn with encodings + vectorized
  execution returns exactly what a plain fixed-width MiniColumn with
  the row interpreter returns, through inserts, updates (which demote
  encoded blocks), deletes, and ``optimize()`` compaction;
* the update/morph life cycle and the zone-map regression of this PR
  (widening patches only the covering ``.zmap`` entry in place).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.databases import colcodec
from repro.databases.colcodec import (
    DELTA,
    DICT,
    MAX_DELTA_BITS,
    PLAIN,
    RLE,
    CodecError,
    choose_encoding,
    decode_block,
    decode_delta,
    decode_dict_parts,
    decode_rle_runs,
    decode_vector,
    encode_block,
    encode_delta,
    encode_dict,
    encode_rle,
    estimate_sizes,
    pack_bits,
    unpack_bits,
)
from repro.databases.minicolumn import MiniColumn
from repro.fs import PassthroughFS


def _column_db(encodings, vectorized=None):
    if vectorized is None:
        vectorized = encodings
    return MiniColumn(
        PassthroughFS(block_size=256), encodings=encodings, vectorized=vectorized
    )


# ---------------------------------------------------------------------------
# codec round trips
# ---------------------------------------------------------------------------

class TestBitPacking:
    @given(
        st.lists(st.integers(0, 2**56 - 1), max_size=60),
        st.just(56),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_max_width(self, values, width):
        assert unpack_bits(pack_bits(values, width), width, len(values)) == values

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_any_width(self, data):
        width = data.draw(st.integers(1, 56))
        values = data.draw(st.lists(st.integers(0, 2**width - 1), max_size=80))
        assert unpack_bits(pack_bits(values, width), width, len(values)) == values

    def test_zero_width(self):
        assert pack_bits([0, 0, 0], 0) == b""
        assert unpack_bits(b"", 0, 3) == [0, 0, 0]


class TestCodecEdgeCases:
    def test_empty_batches(self):
        for encoding in (PLAIN, RLE):
            payload = encode_block("INT", encoding, [])
            assert decode_block("INT", encoding, payload, 0) == []
        # Plain TEXT lives in the heap + offsets form, so only the
        # dictionary codec sees TEXT batches.
        payload = encode_block("TEXT", DICT, [])
        assert decode_block("TEXT", DICT, payload, 0) == []
        assert encode_delta([]) == b""
        assert decode_delta(b"", 0) == []

    def test_single_run(self):
        payload = encode_rle("INT", [7, 7, 7])
        assert decode_rle_runs("INT", payload) == ([7], [3])

    def test_rle_null_runs(self):
        values = [None, None, 3, 3, None]
        payload = encode_rle("INT", values)
        assert decode_block("INT", RLE, payload, len(values)) == values

    def test_rle_real(self):
        values = [1.5, 1.5, None, -2.25]
        payload = encode_rle("REAL", values)
        assert decode_block("REAL", RLE, payload, len(values)) == values

    def test_delta_single_value(self):
        assert decode_delta(encode_delta([42]), 1) == [42]

    def test_delta_descending(self):
        values = [100, 90, 95, 10]
        assert decode_delta(encode_delta(values), len(values)) == values

    def test_delta_max_bit_width(self):
        # Frame-of-reference: the width is the spread between the
        # smallest and largest delta, here exactly MAX_DELTA_BITS.
        values = [0, 0, 2**MAX_DELTA_BITS - 1]
        assert decode_delta(encode_delta(values), len(values)) == values

    def test_delta_single_jump_is_width_zero(self):
        # One delta has zero spread, so any jump fits the frame.
        values = [0, 2**60]
        assert decode_delta(encode_delta(values), len(values)) == values

    def test_delta_overflow_raises(self):
        with pytest.raises(CodecError):
            encode_delta([0, 0, 2**MAX_DELTA_BITS])

    def test_delta_rejected_by_picker_when_too_wide(self):
        wide = [0, 2**60, 5, 2**59, 17]
        assert DELTA not in estimate_sizes("INT", wide)

    def test_dict_with_nulls_and_duplicates(self):
        values = ["a", None, "b", "a", None, ""]
        dictionary, codes = decode_dict_parts(encode_dict(values), len(values))
        assert [dictionary[code] for code in codes] == values

    def test_dict_single_distinct(self):
        values = ["x"] * 9
        payload = encode_dict(values)
        assert decode_block("TEXT", DICT, payload, len(values)) == values

    @given(
        st.lists(
            st.one_of(st.none(), st.integers(-(2**40), 2**40)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_int_block_round_trip_any_encoding(self, values):
        for encoding in (PLAIN, RLE):
            payload = encode_block("INT", encoding, values)
            assert decode_block("INT", encoding, payload, len(values)) == values
            vector = decode_vector("INT", encoding, payload, len(values))
            assert vector.materialize() == values
        if None not in values:
            payload = encode_block("INT", DELTA, values)
            assert decode_block("INT", DELTA, payload, len(values)) == values

    @given(
        st.lists(
            st.one_of(st.none(), st.sampled_from(["", "aa", "bb", "cc-long-value"])),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_text_dict_round_trip(self, values):
        payload = encode_block("TEXT", DICT, values)
        assert decode_block("TEXT", DICT, payload, len(values)) == values
        vector = decode_vector("TEXT", DICT, payload, len(values))
        assert vector.materialize() == values
        # A dictionary predicate evaluates each distinct entry once but
        # must produce the per-row answer.
        wanted = vector.pred_bools(lambda v: v == "aa")
        assert wanted == [v == "aa" for v in values]


class TestPicker:
    def test_constant_column_is_rle(self):
        assert choose_encoding("INT", [5] * 100) == RLE

    def test_sequential_column_is_delta(self):
        assert choose_encoding("INT", list(range(100))) == DELTA

    def test_repetitive_text_is_dict(self):
        assert choose_encoding("TEXT", ["north", "south"] * 50) == DICT

    def test_incompressible_stays_plain(self):
        # All-distinct long strings: the dictionary repeats the whole
        # heap and adds codes, so the estimate cannot clear the
        # PICK_THRESHOLD margin over plain.
        distinct = [f"unique-{i:04d}-" + "x" * 100 for i in range(64)]
        assert choose_encoding("TEXT", distinct) == PLAIN

    def test_picker_tracks_estimates(self):
        values = list(range(0, 400, 3))
        sizes = estimate_sizes("INT", values)
        chosen = choose_encoding("INT", values)
        assert chosen in sizes or chosen == PLAIN
        if chosen != PLAIN:
            assert sizes[chosen] < sizes[PLAIN] * colcodec.PICK_THRESHOLD


# ---------------------------------------------------------------------------
# property: encoded + vectorized == plain + interpreted
# ---------------------------------------------------------------------------

_INT_VALUES = st.one_of(st.none(), st.integers(-1000, 1000))
_TEXT_VALUES = st.one_of(st.none(), st.sampled_from(["red", "green", "blue", "x"]))


@st.composite
def _workload(draw):
    batches = draw(
        st.lists(
            st.lists(
                st.tuples(_INT_VALUES, _TEXT_VALUES), min_size=1, max_size=30
            ),
            min_size=1,
            max_size=4,
        )
    )
    total = sum(len(batch) for batch in batches)
    updates = draw(
        st.lists(
            st.tuples(st.integers(0, total - 1), _INT_VALUES), max_size=5
        )
    )
    deletes = draw(st.lists(st.integers(0, total - 1), max_size=5))
    bounds = sorted(
        (draw(st.integers(-1000, 1000)), draw(st.integers(-1000, 1000)))
    )
    return batches, updates, deletes, bounds


_QUERIES = [
    "SELECT id, v, s FROM t",
    "SELECT id FROM t WHERE v >= {lo} AND v <= {hi}",
    "SELECT s, count(*) c, sum(v) sv, min(v) mn, max(v) mx FROM t GROUP BY s",
    "SELECT count(s) c, count(*) n FROM t",
    "SELECT id, v FROM t WHERE v != {lo} ORDER BY v DESC, id LIMIT 7",
]


def _compare(dbs, bounds):
    lo, hi = bounds
    for query in _QUERIES:
        sql = query.format(lo=lo, hi=hi)
        results = [db.execute(sql) for db in dbs]
        assert results[0] == results[1], sql


@given(_workload())
@settings(max_examples=25, deadline=None)
def test_encoded_scan_equals_plain_scan(workload):
    batches, updates, deletes, bounds = _workload_rows(workload)
    dbs = []
    for encodings in (False, True):
        db = _column_db(encodings)
        db.execute("CREATE TABLE t (id INT, v INT, s TEXT)")
        for batch in batches:
            db.table("t").insert_rows(batch)
        dbs.append(db)
    _compare(dbs, bounds)
    for row_id, value in updates:
        literal = "NULL" if value is None else str(value)
        for db in dbs:
            db.execute(f"UPDATE t SET v = {literal} WHERE id = {row_id}")
    _compare(dbs, bounds)  # UPDATE-after-encode: demoted blocks
    for row_id in deletes:
        for db in dbs:
            db.execute(f"DELETE FROM t WHERE id = {row_id}")
    _compare(dbs, bounds)
    for db in dbs:
        db.table("t").optimize()  # compaction re-runs the picker
    _compare(dbs, bounds)


def _workload_rows(workload):
    batches, updates, deletes, bounds = workload
    rows = []
    next_id = 0
    for batch in batches:
        batch_rows = []
        for value, text in batch:
            batch_rows.append({"id": next_id, "v": value, "s": text})
            next_id += 1
        rows.append(batch_rows)
    return rows, updates, deletes, bounds


# ---------------------------------------------------------------------------
# update/demote/morph life cycle
# ---------------------------------------------------------------------------

class TestMorphing:
    def _constant_table(self, rows=64):
        db = _column_db(True)
        db.execute("CREATE TABLE t (id INT, v INT)")
        db.table("t").insert_rows([{"id": i, "v": 5} for i in range(rows)])
        return db

    def test_update_demotes_to_plain(self):
        db = self._constant_table()
        assert db.table("t").column_encodings()["v"] == [RLE]
        db.execute("UPDATE t SET v = 9 WHERE id = 3")
        assert db.table("t").column_encodings()["v"] == [PLAIN]
        assert db.execute("SELECT v FROM t WHERE id = 3") == [{"v": 9}]

    def test_scan_heavy_mix_remorphs(self):
        db = self._constant_table()
        db.execute("UPDATE t SET v = 9 WHERE id = 3")
        db.execute("UPDATE t SET v = 5 WHERE id = 3")
        for __ in range(db.table("t").MORPH_AFTER_SCANS):
            db.execute("SELECT v FROM t WHERE id >= 0")
        # Back to a constant column: the picker re-chooses RLE.
        assert db.table("t").column_encodings()["v"] == [RLE]

    def test_forced_morph(self):
        db = self._constant_table()
        table = db.table("t")
        assert table.morph(column="v", encoding=PLAIN) == 1
        assert table.column_encodings()["v"] == [PLAIN]
        assert table.morph(column="v") == 1  # picker restores RLE
        assert table.column_encodings()["v"] == [RLE]

    def test_optimize_reencodes_after_deletes(self):
        db = self._constant_table()
        db.execute("UPDATE t SET v = 9 WHERE id = 3")
        db.execute("DELETE FROM t WHERE id = 3")
        assert db.table("t").optimize() == 1
        assert db.table("t").column_encodings()["v"] == [RLE]
        rows = db.execute("SELECT count(*) c, min(v) mn, max(v) mx FROM t")
        assert rows == [{"c": 63, "mn": 5, "mx": 5}]

    def test_large_batch_splits_into_blocks(self):
        db = _column_db(True)
        db.execute("CREATE TABLE t (id INT)")
        rows = db.table("t").BLOCK_ROWS + 10
        db.table("t").insert_rows([{"id": i} for i in range(rows)])
        assert len(db.table("t").column_encodings()["id"]) == 2


# ---------------------------------------------------------------------------
# zone maps after in-place updates (the `_widen_zone` regression)
# ---------------------------------------------------------------------------

class TestZoneWidening:
    @pytest.fixture(params=[False, True], ids=["plain", "encoded"])
    def db(self, request):
        database = _column_db(request.param)
        database.execute("CREATE TABLE t (id INT, v INT)")
        for batch in range(8):
            database.table("t").insert_rows(
                [{"id": batch * 25 + i, "v": batch} for i in range(25)]
            )
        return database

    def test_pruning_correct_after_update(self, db):
        db.execute("UPDATE t SET id = 90000 WHERE id = 30")  # batch 1
        db.execute("UPDATE t SET id = -90000 WHERE id = 120")  # batch 4
        assert db.execute("SELECT id FROM t WHERE id >= 80000") == [{"id": 90000}]
        assert db.execute("SELECT id FROM t WHERE id <= -80000") == [{"id": -90000}]
        # Unaffected ranges still prune and still answer exactly.
        rows = db.execute("SELECT id FROM t WHERE id >= 50 AND id <= 60")
        assert [row["id"] for row in rows] == list(range(50, 61))

    def test_only_covering_entry_patched(self, db):
        column = db.table("t")._files["id"]
        before = column.zone_entries()
        db.execute("UPDATE t SET id = 90000 WHERE id = 30")
        after = column.zone_entries()
        assert len(after) == len(before)
        for index, (old, new) in enumerate(zip(before, after)):
            if index == 1:  # rows 25..49 hold id 30
                assert new[2] == old[2] and new[3] == 90000.0
            else:
                assert new == old

    def test_null_update_sets_has_null(self, db):
        db.execute("UPDATE t SET id = NULL WHERE id = 10")
        entries = db.table("t")._files["id"].zone_entries()
        assert entries[0][4] is True
        assert db.execute("SELECT count(id) c FROM t")[0]["c"] == 199

"""Property-based model tests for the database engines.

Each engine runs random operation sequences against a plain-Python
reference model; the engine is on CompressFS the whole time, so these
double as long-running integration tests of the storage stack.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.databases.minimongo import MiniMongo
from repro.databases.minisql import MiniSQL
from repro.fs.compressfs import CompressFS

_KEYS = st.integers(0, 24)
_TEXT = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x2FF),
    max_size=24,
)


class MiniSQLModel(RuleBasedStateMachine):
    """INSERT/UPDATE/DELETE/SELECT against a dict model."""

    def __init__(self):
        super().__init__()
        fs = CompressFS(block_size=256)
        self.db = MiniSQL(fs, page_size=512)
        self.db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, s TEXT)")
        self.model: dict[int, tuple] = {}

    @rule(key=_KEYS, value=st.integers(-1000, 1000), text=_TEXT)
    def insert(self, key, value, text):
        escaped = text.replace("'", "''")
        if key in self.model:
            return  # duplicate PK would raise; covered by a unit test
        self.db.execute(f"INSERT INTO t VALUES ({key}, {value}, '{escaped}')")
        self.model[key] = (value, text)

    @rule(key=_KEYS, value=st.integers(-1000, 1000))
    def update(self, key, value):
        self.db.execute(f"UPDATE t SET v = {value} WHERE id = {key}")
        if key in self.model:
            self.model[key] = (value, self.model[key][1])

    @rule(key=_KEYS)
    def delete(self, key):
        self.db.execute(f"DELETE FROM t WHERE id = {key}")
        self.model.pop(key, None)

    @rule(key=_KEYS)
    def point_lookup(self, key):
        rows = self.db.execute(f"SELECT v, s FROM t WHERE id = {key}")
        if key in self.model:
            assert rows == [{"v": self.model[key][0], "s": self.model[key][1]}]
        else:
            assert rows == []

    @invariant()
    def full_scan_matches(self):
        rows = self.db.execute("SELECT id, v FROM t")
        assert [(row["id"], row["v"]) for row in rows] == [
            (key, self.model[key][0]) for key in sorted(self.model)
        ]

    @invariant()
    def aggregates_match(self):
        rows = self.db.execute("SELECT count(*) c, sum(v) s FROM t")
        expected_sum = sum(v for v, __ in self.model.values()) if self.model else None
        assert rows[0]["c"] == len(self.model)
        if self.model:
            assert rows[0]["s"] == expected_sum


MiniSQLModelTest = MiniSQLModel.TestCase
MiniSQLModelTest.settings = settings(
    max_examples=20, stateful_step_count=15, deadline=None
)


class MiniMongoModel(RuleBasedStateMachine):
    """insert/update/delete/find against a dict model."""

    def __init__(self):
        super().__init__()
        self.collection = MiniMongo(CompressFS(block_size=256))["c"]
        self.model: dict[str, dict] = {}

    @rule(key=_KEYS, value=st.integers(0, 100))
    def insert(self, key, value):
        doc_id = f"d{key}"
        if doc_id in self.model:
            return
        self.collection.insert_one({"_id": doc_id, "n": value})
        self.model[doc_id] = {"_id": doc_id, "n": value}

    @rule(key=_KEYS, value=st.integers(0, 100))
    def update(self, key, value):
        doc_id = f"d{key}"
        updated = self.collection.update_one({"_id": doc_id}, {"$set": {"n": value}})
        assert updated == (doc_id in self.model)
        if updated:
            self.model[doc_id]["n"] = value

    @rule(key=_KEYS)
    def delete(self, key):
        doc_id = f"d{key}"
        deleted = self.collection.delete_one({"_id": doc_id})
        assert deleted == (doc_id in self.model)
        self.model.pop(doc_id, None)

    @rule(key=_KEYS)
    def find_one(self, key):
        doc_id = f"d{key}"
        assert self.collection.find_one({"_id": doc_id}) == self.model.get(doc_id)

    @rule(threshold=st.integers(0, 100))
    def range_query(self, threshold):
        found = sorted(
            doc["_id"] for doc in self.collection.find({"n": {"$gte": threshold}})
        )
        expected = sorted(
            doc_id for doc_id, doc in self.model.items() if doc["n"] >= threshold
        )
        assert found == expected

    @invariant()
    def counts_match(self):
        assert self.collection.count_documents() == len(self.model)


MiniMongoModelTest = MiniMongoModel.TestCase
MiniMongoModelTest.settings = settings(
    max_examples=20, stateful_step_count=15, deadline=None
)

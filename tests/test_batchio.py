"""Batched scatter-gather I/O: device, compressor, engine, and VFS layers.

Covers the vectored fast path end to end:

* ``BlockDevice.read_blocks`` / ``write_blocks`` semantics, stats, and
  the one-seek-per-batch cost model;
* the page-cache recency regression (a rewrite must move a cached
  block to MRU, not leave it in its old position);
* ``Compressor.store_many`` / ``commit_many`` intra-batch dedup;
* the engine's write-coalescing buffer and its flush triggers;
* a Hypothesis property: batched reads/writes are byte-identical to
  loops of single-block operations — including over hole-bearing
  blocks — with identical compression ratios and clean invariants.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import CompressDB
from repro.fs import fd as fdmod
from repro.storage.block_device import BlockDeviceError, MemoryBlockDevice
from repro.storage.simclock import HDD_5400RPM, SimClock


class TestReadBlocks:
    def test_preserves_request_order_and_duplicates(self, device):
        blocks = [device.allocate() for __ in range(3)]
        for index, block in enumerate(blocks):
            device.write_block(block, bytes([index]) * device.block_size)
        request = [blocks[2], blocks[0], blocks[2], blocks[1]]
        result = device.read_blocks(request)
        assert result == [
            b"\x02" * 64,
            b"\x00" * 64,
            b"\x02" * 64,
            b"\x01" * 64,
        ]

    def test_batch_counts_once_in_batched_stats(self, device):
        blocks = [device.allocate() for __ in range(4)]
        device.stats.reset()
        device.read_blocks(blocks)
        assert device.stats.batched_reads == 1
        assert device.stats.batched_blocks_read == 4
        assert device.stats.block_reads == 4

    def test_single_block_read_is_not_batched(self, device):
        block = device.allocate()
        device.stats.reset()
        device.read_blocks([block])
        assert device.stats.batched_reads == 0
        assert device.stats.block_reads == 1

    def test_duplicate_misses_are_fetched_once(self, device):
        block = device.allocate()
        device.stats.reset()
        device.read_blocks([block, block, block])
        assert device.stats.block_reads == 1

    def test_invalid_block_in_batch_raises(self, device):
        block = device.allocate()
        device.stats.reset()
        with pytest.raises(BlockDeviceError):
            device.read_blocks([block, block + 7])
        assert device.stats.block_reads == 0  # validated before any transfer

    def test_batch_pays_one_seek(self):
        clock = SimClock()
        device = MemoryBlockDevice(
            block_size=1024, profile=HDD_5400RPM, clock=clock
        )
        blocks = [device.allocate() for __ in range(16)]
        before = clock.now
        device.read_blocks(blocks)
        batched = clock.now - before
        expected = HDD_5400RPM.read_cost(16 * 1024)
        assert batched == pytest.approx(expected)
        # The equivalent loop pays ~16 seeks, an order of magnitude more.
        before = clock.now
        for block in blocks:
            device.read_block(block)
        looped = clock.now - before
        assert looped > 10 * batched


class TestWriteBlocks:
    def test_roundtrip_and_padding(self, device):
        blocks = [device.allocate() for __ in range(2)]
        device.write_blocks([(blocks[0], b"ab"), (blocks[1], b"c" * 64)])
        assert device.read_block(blocks[0]) == b"ab" + b"\x00" * 62
        assert device.read_block(blocks[1]) == b"c" * 64

    def test_batch_counts_once_in_batched_stats(self, device):
        blocks = [device.allocate() for __ in range(3)]
        device.stats.reset()
        device.write_blocks([(block, b"x") for block in blocks])
        assert device.stats.batched_writes == 1
        assert device.stats.batched_blocks_written == 3
        assert device.stats.block_writes == 3

    def test_oversized_write_rejected_before_any_byte_lands(self, device):
        blocks = [device.allocate() for __ in range(2)]
        with pytest.raises(BlockDeviceError):
            device.write_blocks([(blocks[0], b"y"), (blocks[1], b"z" * 65)])
        assert device.read_block(blocks[0]) == b"\x00" * 64


class TestCachePutRecency:
    """Regression: rewriting a cached block must refresh its recency."""

    def _device(self) -> MemoryBlockDevice:
        return MemoryBlockDevice(block_size=64, cache_blocks=2)

    def test_rewrite_moves_block_to_mru(self):
        device = self._device()
        a, b, c = (device.allocate() for __ in range(3))
        device.write_block(a, b"a")  # cache: [a]
        device.write_block(b, b"b")  # cache: [a, b]
        device.write_block(a, b"A")  # rewrite must make order [b, a]
        device.write_block(c, b"c")  # evicts b (LRU), not a
        hits_before = device.cache_hits
        misses_before = device.cache_misses
        device.read_block(a)
        assert device.cache_hits == hits_before + 1
        device.read_block(b)
        assert device.cache_misses == misses_before + 1

    def test_rewrite_updates_cached_bytes(self):
        device = self._device()
        a = device.allocate()
        device.write_block(a, b"old")
        device.write_block(a, b"new")
        assert device.read_block(a).rstrip(b"\x00") == b"new"

    def test_batched_read_warms_cache_like_a_loop(self):
        device = self._device()
        blocks = [device.allocate() for __ in range(2)]
        device._cache.clear()
        device.read_blocks(blocks)
        hits_before = device.cache_hits
        device.read_blocks(blocks)
        assert device.cache_hits == hits_before + 2


class TestStoreMany:
    def test_intra_batch_duplicates_share_one_block(self, engine):
        slots = engine.compressor.store_many(
            [(b"same" * 16, 64), (b"same" * 16, 64), (b"diff" * 16, 64)]
        )
        assert slots[0].block_no == slots[1].block_no
        assert slots[2].block_no != slots[0].block_no
        assert engine.compressor.stats.dedup_hits == 1
        assert engine.compressor.stats.fresh_allocations == 2

    def test_batch_matches_existing_blocks(self, engine):
        engine.create("/f")
        engine.ops.append("/f", b"same" * 16)
        before = engine.physical_data_blocks()
        slots = engine.compressor.store_many([(b"same" * 16, 64)])
        assert engine.refcount.get(slots[0].block_no) == 2
        assert engine.physical_data_blocks() == before
        for slot in slots:
            engine.compressor.release(slot)

    def test_hashtable_consistent_after_batch(self, engine):
        engine.create("/f")
        engine.ops.append("/f", bytes(range(64)) * 4)
        engine.check_invariants()


class TestCommitMany:
    def test_mixed_batch_preserves_algorithm_one(self, engine):
        engine.create("/a")
        engine.create("/b")
        engine.ops.append("/a", b"x" * 128)  # two blocks
        engine.ops.append("/b", b"x" * 64)  # shares block content with /a
        inode = engine.inode("/a")
        # Slot 0 is shared (refcount 2) -> CoW; slot 1 -> in-place.
        engine.compressor.commit_many(
            inode, [(0, b"p" * 64, 64), (1, b"q" * 64, 64)]
        )
        assert engine.read("/a", 0, 128) == b"p" * 64 + b"q" * 64
        assert engine.read("/b", 0, 64) == b"x" * 64
        engine.check_invariants()

    def test_intra_batch_duplicates_converge(self, engine):
        engine.create("/f")
        engine.ops.append("/f", bytes(range(64)) + bytes(range(64, 128)))
        inode = engine.inode("/f")
        engine.compressor.commit_many(
            inode, [(0, b"z" * 64, 64), (1, b"z" * 64, 64)]
        )
        slots = list(inode.iter_slots())
        assert slots[0].block_no == slots[1].block_no
        assert engine.refcount.get(slots[0].block_no) == 2
        engine.check_invariants()


class TestWriteCoalescing:
    def _engine(self, **kwargs) -> CompressDB:
        return CompressDB(block_size=64, page_capacity=4, **kwargs)

    def test_sequential_appends_commit_as_one_batch(self):
        engine = self._engine(coalesce_blocks=4)
        engine.create("/f")
        engine.device.stats.reset()
        for i in range(4):
            engine.write("/f", i * 64, bytes([i]) * 64)
        # The fourth write crosses the 4-block threshold: one batch.
        assert engine.device.stats.batched_writes == 1
        assert engine.device.stats.batched_blocks_written == 4
        assert engine.read("/f", 0, 256) == b"".join(
            bytes([i]) * 64 for i in range(4)
        )

    def test_file_size_counts_pending_without_flushing(self):
        engine = self._engine()
        engine.create("/f")
        engine.write("/f", 0, b"hello")
        writes_before = engine.device.stats.block_writes
        assert engine.file_size("/f") == 5
        assert engine.device.stats.block_writes == writes_before

    def test_read_observes_pending_appends(self):
        engine = self._engine()
        engine.create("/f")
        engine.write("/f", 0, b"hello ")
        engine.write("/f", 6, b"world")
        assert engine.read("/f", 0, 11) == b"hello world"

    def test_backward_write_flushes_then_overwrites(self):
        engine = self._engine()
        engine.create("/f")
        engine.write("/f", 0, b"aaaa")
        engine.write("/f", 0, b"bb")
        assert engine.read("/f", 0, 4) == b"bbaa"

    def test_gap_write_zero_fills(self):
        engine = self._engine()
        engine.create("/f")
        engine.write("/f", 0, b"a")
        engine.write("/f", 5, b"b")
        assert engine.read("/f", 0, 6) == b"a\x00\x00\x00\x00b"

    def test_unlink_discards_pending(self):
        engine = self._engine()
        engine.create("/f")
        engine.write("/f", 0, b"doomed")
        engine.unlink("/f")
        assert not engine.exists("/f")
        engine.check_invariants()

    def test_rename_carries_pending(self):
        engine = self._engine()
        engine.create("/f")
        engine.write("/f", 0, b"moved")
        engine.rename("/f", "/g")
        assert engine.read("/g", 0, 5) == b"moved"

    def test_sync_commits_pending(self):
        engine = self._engine()
        engine.create("/f")
        engine.write("/f", 0, b"durable")
        engine.sync("/f")
        assert engine.inode("/f").size == 7

    def test_disabled_coalescing_writes_through(self):
        engine = self._engine(coalesce_writes=False)
        engine.create("/f")
        engine.write("/f", 0, b"direct")
        assert engine.inode("/f").size == 6


class TestVectoredVFS:
    def test_preadv_matches_pread_loop(self, compress_fs):
        compress_fs.write_file("/f", bytes(range(256)) * 3)
        spans = [(0, 10), (60, 70), (700, 200), (5, 0)]
        vectored = compress_fs._preadv("/f", spans)
        looped = [compress_fs._pread("/f", o, s) for o, s in spans]
        assert vectored == looped

    def test_descriptor_preadv_and_pwritev(self, compress_fs):
        fd = compress_fs.open("/f", fdmod.O_RDWR | fdmod.O_CREAT)
        compress_fs.pwritev(fd, [(0, b"abc"), (3, b"def")])
        assert compress_fs.preadv(fd, [(0, 6), (3, 3)]) == [b"abcdef", b"def"]
        compress_fs.close(fd)


# -- property: batched == per-block, holes included -------------------------

_spans = st.lists(
    st.tuples(st.integers(0, 600), st.integers(0, 300)), min_size=1, max_size=8
)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 500), st.binary(min_size=1, max_size=180)),
        st.tuples(st.just("insert"), st.floats(0, 1), st.binary(min_size=1, max_size=100)),
        st.tuples(st.just("delete"), st.floats(0, 1), st.floats(0, 1)),
    ),
    min_size=1,
    max_size=12,
)


def _apply(engine: CompressDB, reference: bytearray, op) -> None:
    kind = op[0]
    if kind == "write":
        __, offset, data = op
        offset = min(offset, len(reference))
        engine.write("/f", offset, data)
        if offset > len(reference):
            reference.extend(b"\x00" * (offset - len(reference)))
        reference[offset : offset + len(data)] = data
    elif kind == "insert":
        __, position, data = op
        offset = int(position * len(reference))
        engine.ops.insert("/f", offset, data)
        reference[offset:offset] = data
    else:
        __, position, fraction = op
        offset = int(position * len(reference))
        length = int(fraction * (len(reference) - offset))
        engine.ops.delete("/f", offset, length)
        del reference[offset : offset + length]


@settings(max_examples=40, deadline=None)
@given(ops=_ops, spans=_spans)
def test_batched_reads_match_single_block_loop(ops, spans):
    """readv == loop of read over a hole-bearing file (inserts/deletes)."""
    engine = CompressDB(block_size=64, page_capacity=4)
    engine.create("/f")
    reference = bytearray()
    for op in ops:
        _apply(engine, reference, op)
    vectored = engine.readv("/f", spans)
    looped = [engine.read("/f", offset, size) for offset, size in spans]
    assert vectored == looped
    for (offset, size), data in zip(spans, vectored):
        expected = bytes(reference[offset : offset + size])
        assert data == expected
    engine.check_invariants()


@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_coalesced_writes_match_write_through(ops):
    """The same op sequence with and without coalescing is byte-identical
    and compresses identically (same blocks, same dedup decisions)."""
    batched = CompressDB(block_size=64, page_capacity=4)
    direct = CompressDB(block_size=64, page_capacity=4, coalesce_writes=False)
    for engine in (batched, direct):
        engine.create("/f")
    reference = bytearray()
    for op in ops:
        shadow = bytearray(reference)
        _apply(batched, reference, op)
        _apply(direct, shadow, op)
        assert shadow == reference
    assert batched.read_file("/f") == direct.read_file("/f")
    assert batched.read_file("/f") == bytes(reference)
    assert batched.compression_ratio() == direct.compression_ratio()
    assert batched.physical_data_blocks() == direct.physical_data_blocks()
    for engine in (batched, direct):
        engine.check_invariants()
        report = engine.fsck()
        assert report["refcounts_fixed"] == 0
        assert report["blocks_reclaimed"] == 0

"""A document database on CompressDB — the paper's MongoDB scenario.

An unmodified document store (MiniMongo) keeps its collection files in
a CompressDB mount and transparently enjoys block dedup: re-saved
documents, the dominant write pattern of document workloads, are
stored once.

Run with::

    python examples/document_store.py
"""

from repro.databases import MiniMongo
from repro.fs import CompressFS, PassthroughFS
from repro.workloads import generate_dataset


def load(db: MiniMongo, bodies: list[str]) -> None:
    articles = db["articles"]
    for i, body in enumerate(bodies):
        articles.insert_one({"_id": f"article-{i}", "rev": 1, "body": body})
    # Editors re-save half the articles without changing the body —
    # the append-only store writes a full second version of each.
    for i in range(0, len(bodies), 2):
        articles.replace_one(
            {"_id": f"article-{i}"}, {"rev": 2, "body": bodies[i]}
        )


def main() -> None:
    dataset = generate_dataset("A", scale=0.2)
    corpus = dataset.concatenated()
    bodies = [
        corpus[start : start + 3072].decode("ascii", errors="replace")
        for start in range(0, 40 * 3072, 3072)
    ]

    baseline_fs = PassthroughFS(block_size=1024)
    compress_fs = CompressFS(block_size=1024)
    for fs in (baseline_fs, compress_fs):
        load(MiniMongo(fs), bodies)

    print("same database code, two storage engines:")
    print(f"  baseline physical bytes:   {baseline_fs.physical_bytes():>9}")
    print(f"  CompressDB physical bytes: {compress_fs.physical_bytes():>9}")
    saving = 1 - compress_fs.physical_bytes() / baseline_fs.physical_bytes()
    print(f"  space saved by dedup:      {saving:>8.1%}")

    # Queries are unaffected.
    db = MiniMongo(compress_fs)
    articles = db["articles"]
    print(f"\ndocuments: {articles.count_documents()}")
    print(f"revision-2 documents: {articles.count_documents({'rev': 2})}")
    doc = articles.find_one({"_id": "article-4"})
    assert doc is not None
    print(f"article-4 rev={doc['rev']}, body starts: {doc['body'][:40]!r}")

    # Reclaim dead versions, then measure again.
    articles.compact()
    print(f"\nafter compaction: {compress_fs.physical_bytes()} physical bytes")


if __name__ == "__main__":
    main()

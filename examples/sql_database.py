"""The relational engine on CompressDB: indexes, joins, transactions.

MiniSQL grew the features that make the SQLite stand-in credible:
secondary indexes (CREATE INDEX), inner equi-joins, and transactions
with rollback — all of it storing pages through the compressed file
system.

Run with::

    python examples/sql_database.py
"""

from repro.databases import MiniSQL
from repro.fs import CompressFS


def main() -> None:
    db = MiniSQL(CompressFS(block_size=1024))

    db.execute("CREATE TABLE users (id INT PRIMARY KEY, name TEXT, city TEXT)")
    db.execute("CREATE TABLE orders (oid INT PRIMARY KEY, user_id INT, total REAL)")
    cities = ["oslo", "lima", "kyiv", "quito"]
    for i in range(200):
        db.execute(f"INSERT INTO users VALUES ({i}, 'user{i}', '{cities[i % 4]}')")
    for i in range(400):
        db.execute(f"INSERT INTO orders VALUES ({i}, {i % 200}, {(i * 7) % 90}.5)")

    # Secondary index: equality lookups stop scanning the table.
    db.execute("CREATE INDEX idx_city ON users (city)")
    db.fs.device.stats.reset()
    oslo = db.execute("SELECT id FROM users WHERE city = 'oslo'")
    indexed_reads = db.fs.device.stats.snapshot().block_reads
    print(f"indexed lookup: {len(oslo)} rows, {indexed_reads} block reads")

    # Join: revenue per city.
    revenue = db.execute(
        "SELECT city, sum(total) revenue FROM users "
        "JOIN orders ON users.id = orders.user_id "
        "GROUP BY city ORDER BY revenue DESC"
    )
    print("\nrevenue per city (join + group by):")
    for row in revenue:
        print(f"  {row['city']:<6} {row['revenue']:>10.1f}")

    # Transactions: a failed transfer rolls back atomically.
    db.execute("CREATE TABLE acc (id INT PRIMARY KEY, balance INT)")
    db.execute("INSERT INTO acc VALUES (1, 100), (2, 100)")
    db.execute("BEGIN")
    db.execute("UPDATE acc SET balance = balance - 150 WHERE id = 1")
    db.execute("UPDATE acc SET balance = balance + 150 WHERE id = 2")
    overdrawn = db.execute("SELECT balance FROM acc WHERE id = 1")[0]["balance"]
    if overdrawn < 0:
        db.execute("ROLLBACK")
        outcome = "rolled back (insufficient funds)"
    else:  # pragma: no cover - depends on the balances above
        db.execute("COMMIT")
        outcome = "committed"
    state = db.execute("SELECT id, balance FROM acc ORDER BY id")
    print(f"\ntransfer {outcome}: {[(r['id'], r['balance']) for r in state]}")

    print(f"\nstorage: {db.fs.logical_bytes()} logical bytes, "
          f"{db.fs.physical_bytes()} physical, "
          f"ratio {db.fs.compression_ratio():.2f}x")


if __name__ == "__main__":
    main()

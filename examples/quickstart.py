"""Quickstart: the CompressDB engine and its pushed-down operations.

Run with::

    python examples/quickstart.py
"""

from repro.core.engine import CompressDB
from repro.fs import CompressFS, O_CREAT, O_RDWR
from repro.storage.block_device import MemoryBlockDevice


def main() -> None:
    # A CompressDB-backed file system on a journaled in-memory device:
    # the full stack (VFS -> engine -> compressor -> journal -> device),
    # so `compressdb trace examples/quickstart.py` sees every layer.
    engine = CompressDB.mount(
        MemoryBlockDevice(block_size=1024), journal_blocks=128
    )
    fs = CompressFS(engine=engine)

    # POSIX-style usage — what an unmodified database would do.
    fd = fs.open("/hello.txt", O_RDWR | O_CREAT)
    fs.write(fd, b"hello compressed world! " * 100)
    fs.lseek(fd, 0)
    print("read back:", fs.read(fd, 24))
    fs.close(fd)

    # Redundant content is stored once: write the same blocks again.
    fs.write_file("/copy.txt", fs.read_file("/hello.txt"))
    print(f"logical bytes:  {fs.logical_bytes()}")
    print(f"physical bytes: {fs.physical_bytes()}")
    print(f"compression:    {fs.compression_ratio():.2f}x")

    # The non-POSIX operations work directly on the compressed form.
    ops = fs.ops
    ops.insert("/hello.txt", 6, b"[inserted without rewriting the file] ")
    print("after insert:", fs.read_file("/hello.txt")[:64], "...")

    ops.delete("/hello.txt", 6, 39)
    print("after delete:", fs.read_file("/hello.txt")[:30], "...")

    offsets = ops.search("/hello.txt", b"compressed")
    print(f"search found {len(offsets)} occurrences, first at {offsets[0]}")
    print("count:", ops.count("/hello.txt", b"world"))
    top_word, top_count = ops.word_count("/hello.txt").most_common(1)[0]
    print(f"word_count (on the compressed form): top word {top_word!r} x{top_count}")

    # Hole accounting (the blockHole structure of the paper).
    engine = fs.engine
    print(
        f"holes: {engine.holes.total_hole_count()} "
        f"({engine.holes.total_hole_bytes()} bytes)"
    )
    report = engine.memory_report()
    print(f"blockHashTable: {report['blockHashTable_bytes']} bytes in memory")

    # Simulate a remount: the refcount partition persists, the hash
    # table is rebuilt by scanning unique blocks once.
    engine.fsync()
    scanned = engine.remount()
    print(f"remount rebuilt the index from {scanned} unique blocks")
    print("data intact:", fs.read_file("/hello.txt")[:17])
    engine.check_invariants()
    print("all engine invariants hold")

    # One snapshot carries every layer's metrics (DESIGN.md §9).
    snap = fs.metrics()
    print(
        "metrics: "
        f"{snap.counter('storage.device.block_writes')} block writes, "
        f"{snap.counter('journal.commits')} journal commits, "
        f"{snap.counter('engine.compressor.dedup_hits')} dedup hits"
    )


if __name__ == "__main__":
    main()

"""TADOC: analytics directly on grammar-compressed text.

The rule-based compression CompressDB builds on (Section 2 of the
paper): Sequitur turns a token stream into a grammar; word count and
random access run on the grammar without decompression.  The example
also prints the DAG statistics that motivate CompressDB's
bounded-depth redesign.

Run with::

    python examples/tadoc_analytics.py
"""

from repro.tadoc import (
    RandomAccessIndex,
    compress_files,
    compute_stats,
    file_word_counts,
    tokenize,
    word_count,
)
from repro.workloads import generate_dataset


def main() -> None:
    dataset = generate_dataset("D", scale=0.1)
    files = [
        tokenize(data.decode("ascii", errors="replace"))[:8000]
        for data in dataset.files.values()
    ]

    grammar = compress_files(files)
    total_tokens = sum(len(tokens) for tokens in files)
    print(f"input: {len(files)} files, {total_tokens} tokens")
    print(f"grammar: {grammar.rule_count()} rules, "
          f"{grammar.total_symbols()} symbols "
          f"({total_tokens / grammar.total_symbols():.1f}x token compression)")

    stats = compute_stats(grammar)
    print(f"DAG: depth {stats.depth}, avg parents {stats.avg_parents:.1f}, "
          f"max parents {stats.max_parents}")
    print(f"random-update cost: O(n^d) = {stats.update_cost_unbounded():.2e} "
          f"for TADOC vs O(d) = {stats.update_cost_bounded():.0f} for CompressDB")

    # Analytics without decompression.
    counts = word_count(grammar)
    print("\ntop 5 words (counted on the compressed form):")
    for word, count in counts.most_common(5):
        print(f"  {word!r:>12}: {count}")

    per_file = file_word_counts(grammar)
    print(f"\nper-file counts computed from rule reuse: "
          f"{[sum(counter.values()) for counter in per_file[:4]]} ...")

    # Random access without decompression.
    index = RandomAccessIndex(grammar)
    window = index.extract(100, 8)
    print(f"\ntokens[100:108] extracted from the grammar: {window}")
    word = window[0]
    positions = index.locate(word)
    print(f"{word!r} occurs {len(positions)} times; first at token {positions[0]}")


if __name__ == "__main__":
    main()

"""A five-node CompressDB cluster — the paper's MooseFS deployment.

Builds the evaluation platform of Section 6.1 (five nodes, ESSD-class
devices, datacenter LAN), stores a redundant corpus, and shows why
operation pushdown matters in a distributed setting: an insert ships a
few bytes to one chunk server instead of dragging the file tail across
the network twice.

Run with::

    python examples/distributed_cluster.py
"""

from repro.distributed import build_cluster
from repro.workloads import generate_dataset


def main() -> None:
    data = generate_dataset("C", scale=0.2).concatenated()

    print(f"corpus: {len(data)} bytes\n")
    results = {}
    for label, compressed in (("MooseFS baseline", False), ("CompressDB", True)):
        cluster = build_cluster(
            nodes=5, compressed=compressed, pushdown=compressed,
            chunk_capacity=32 * 1024,
        )
        cluster.client.write_file("/corpus", data)
        ingest = cluster.clock.now

        cluster.clock.reset()
        cluster.client.insert("/corpus", 12345, b"[pushed-down insert]")
        insert_time = cluster.clock.now

        cluster.clock.reset()
        cluster.client.delete("/corpus", 999, 500)
        delete_time = cluster.clock.now

        cluster.clock.reset()
        matches = cluster.client.search("/corpus", b"wikipedia")
        search_time = cluster.clock.now

        results[label] = (ingest, insert_time, delete_time, search_time)
        print(f"{label}:")
        print(f"  chunks: {cluster.master.chunk_count()} across "
              f"{len(cluster.servers)} nodes")
        print(f"  cluster compression ratio: {cluster.compression_ratio():.2f}x")
        print(f"  ingest: {ingest * 1e3:9.2f} ms   insert: {insert_time * 1e3:7.3f} ms   "
              f"delete: {delete_time * 1e3:7.3f} ms   search: {search_time * 1e3:8.2f} ms "
              f"({len(matches)} hits)")
        print()

    base = results["MooseFS baseline"]
    comp = results["CompressDB"]
    print("pushdown speedups: "
          f"insert {base[1] / comp[1]:.0f}x, "
          f"delete {base[2] / comp[2]:.0f}x, "
          f"search {base[3] / comp[3]:.1f}x")


if __name__ == "__main__":
    main()

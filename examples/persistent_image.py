"""Persistent CompressDB images: mount, flush, remount, repair.

The engine serialises its full state (superblock + metadata chain +
refcount partition) into one image file, so the same data can be
reopened by another process — or manipulated from the shell with the
``compressdb`` CLI.

Run with::

    python examples/persistent_image.py
"""

import os
import tempfile

from repro.core.engine import CompressDB
from repro.storage.block_device import FileBlockDevice
from repro.workloads import generate_dataset


def main() -> None:
    image = os.path.join(tempfile.mkdtemp(), "store.img")

    # --- session 1: create, fill, flush -------------------------------
    device = FileBlockDevice(image, block_size=1024)
    engine = CompressDB.mount(device)
    dataset = generate_dataset("A", scale=0.1)
    for path, data in sorted(dataset.files.items())[:4]:
        engine.write_file(path, data)
    engine.ops.insert(sorted(engine.list_files())[0], 100, b"[edited in place]")
    engine.flush()
    print(f"session 1: stored {len(engine.list_files())} files, "
          f"ratio {engine.compression_ratio():.2f}x")
    device.close()
    print(f"image on disk: {os.path.getsize(image)} bytes\n")

    # --- session 2: remount in a "new process" ------------------------
    device = FileBlockDevice(image, block_size=1024)
    engine = CompressDB.mount(device)
    print(f"session 2: remounted {len(engine.list_files())} files")
    first = sorted(engine.list_files())[0]
    print(f"  edit survived: {engine.ops.search(first, b'[edited in place]')}")

    # dedup index was rebuilt: identical new content still shares blocks
    untouched = sorted(engine.list_files())[1]  # a file with no unaligned edits
    blocks_before = engine.physical_data_blocks()
    engine.write_file("/copy", engine.read_file(untouched))
    print(f"  unique blocks before copy: {blocks_before}, "
          f"after: {engine.physical_data_blocks()} (full dedup across remount)")

    # --- fsck + defragment ---------------------------------------------
    report = engine.fsck()
    print(f"\nfsck: {report}")
    saved = engine.defragment(first)
    print(f"defragment reclaimed {saved} slots")
    engine.flush()
    device.close()

    print(f"\nthe same image also works with the CLI:")
    print(f"  compressdb ls {image}")
    print(f"  compressdb stats {image}")


if __name__ == "__main__":
    main()

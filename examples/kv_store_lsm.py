"""An LSM key-value store stacked on CompressDB — the LevelDB scenario.

Section 6.5 of the paper: LevelDB's own Snappy block compression is
orthogonal to CompressDB, so the two compose.  This example runs the
same workload in four configurations and prints the space each needs,
then demonstrates crash recovery through the WAL.

Run with::

    python examples/kv_store_lsm.py
"""

from repro.compression import SnappyCodec
from repro.databases import MiniLevelDB
from repro.fs import CompressFS, PassthroughFS
from repro.workloads import generate_dataset


def run_workload(db: MiniLevelDB, corpus: bytes) -> None:
    for i in range(400):
        key = b"user:%05d" % (i % 120)
        start = (i % 50) * 1024
        db.put(key, corpus[start : start + 1024])
    for i in range(0, 120, 3):
        db.delete(b"user:%05d" % i)
    db.close()


def main() -> None:
    corpus = generate_dataset("B", scale=0.15).concatenated()

    configs = [
        ("plain FS,   no Snappy", PassthroughFS(block_size=1024), None),
        ("plain FS,   Snappy", PassthroughFS(block_size=1024), SnappyCodec()),
        ("CompressDB, no Snappy", CompressFS(block_size=1024), None),
        ("CompressDB, Snappy", CompressFS(block_size=1024), SnappyCodec()),
    ]
    print("LSM store storage footprint under four configurations:")
    for label, fs, codec in configs:
        db = MiniLevelDB(fs, codec=codec, memtable_limit=16 * 1024)
        run_workload(db, corpus)
        print(
            f"  {label:<22} {fs.physical_bytes():>8} physical bytes, "
            f"{db.table_count()} tables, {db.compactions} compactions"
        )

    # Crash recovery: unflushed writes live in the WAL.
    fs = CompressFS(block_size=1024)
    db = MiniLevelDB(fs, memtable_limit=1 << 20)  # huge memtable: no flush
    db.put(b"crash-key", b"survives in the WAL")
    # "Crash": throw the db object away without close(), reopen from fs.
    recovered = MiniLevelDB(fs, memtable_limit=1 << 20)
    print(f"\nafter crash recovery: {recovered.get(b'crash-key')!r}")

    # Range scans merge memtable and tables.
    for i in range(5):
        recovered.put(b"scan:%d" % i, b"v%d" % i)
    print("range scan:", list(recovered.scan(b"scan:", b"scan:\xff")))


if __name__ == "__main__":
    main()

"""Columnar analytics on CompressDB — the ClickHouse range-scan scenario.

Runs the paper's Section 6.2 query on the column store over both file
systems and compares the simulated I/O time::

    SELECT id, sum(cnt)/count(dt) avg_cnt FROM tbl
    WHERE idx >= 0 AND idx <= 8
    GROUP BY id ORDER BY avg_cnt DESC;

Run with::

    python examples/analytics_range_scan.py
"""

from repro.bench import make_database, make_fs
from repro.workloads import structured_rows

QUERY = (
    "SELECT id, sum(cnt)/count(dt) avg_cnt FROM tbl "
    "WHERE idx >= 0 AND idx <= 8 GROUP BY id ORDER BY avg_cnt DESC"
)


def main() -> None:
    rows = structured_rows(2000)
    timings = {}
    answer = None
    for variant in ("baseline", "compressdb"):
        mounted = make_fs(variant, cache_blocks=16)
        db = make_database("clickhouse", mounted.fs)
        db.execute("CREATE TABLE tbl (id INT, idx INT, cnt INT, dt TEXT)")
        db.table("tbl").insert_rows(
            [{k: row[k] for k in ("id", "idx", "cnt", "dt")} for row in rows]
        )
        start = mounted.clock.now
        answer = db.execute(QUERY)
        timings[variant] = mounted.clock.now - start

    assert answer is not None
    print("top 5 groups by avg_cnt:")
    for row in answer[:5]:
        print(f"  id={row['id']:>6}  avg_cnt={row['avg_cnt']:.2f}")

    base = timings["baseline"]
    comp = timings["compressdb"]
    print(f"\nsimulated query time, baseline:   {base * 1e3:.2f} ms")
    print(f"simulated query time, CompressDB: {comp * 1e3:.2f} ms")
    print(f"improvement: {((base / comp) - 1) * 100:.1f}% "
          "(paper reports 15.48% on ClickHouse)")

    # The column store reads only the referenced columns: check the
    # projection pruning by comparing bytes read for narrow vs wide scans.
    mounted = make_fs("compressdb", cache_blocks=0)
    db = make_database("clickhouse", mounted.fs)
    db.execute("CREATE TABLE tbl (id INT, idx INT, cnt INT, dt TEXT)")
    db.table("tbl").insert_rows(
        [{k: row[k] for k in ("id", "idx", "cnt", "dt")} for row in rows]
    )
    mounted.fs.device.stats.reset()
    db.execute("SELECT idx FROM tbl")
    narrow = mounted.fs.device.stats.bytes_read
    mounted.fs.device.stats.reset()
    db.execute("SELECT * FROM tbl")
    wide = mounted.fs.device.stats.bytes_read
    print(f"\ncolumn pruning: SELECT idx reads {narrow} bytes, "
          f"SELECT * reads {wide} bytes")


if __name__ == "__main__":
    main()

"""Structured findings emitted by the reprolint checkers.

A finding pins one invariant violation to a source location.  Findings
sort by ``(path, line, rule_id, message)`` so every report — text or
JSON — is byte-stable across runs, which the CI lint job relies on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(str, enum.Enum):
    """How bad a violated invariant is.

    ``ERROR`` findings break a correctness contract (refcount balance,
    layering, lock order); ``WARNING`` findings break a performance or
    hygiene contract (unbatched I/O on a hot path).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    severity: Severity
    message: str
    #: True when an inline ``# reprolint: disable=`` comment covers it.
    suppressed: bool = False
    #: The written justification carried by the suppressing comment.
    justification: str = field(default="", compare=False)

    @property
    def sort_key(self) -> tuple[str, int, str, str]:
        return (self.path, self.line, self.rule_id, self.message)

    def to_dict(self) -> dict[str, object]:
        """Stable JSON form (keys in a fixed order)."""
        payload: dict[str, object] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "severity": self.severity.value,
            "message": self.message,
            "suppressed": self.suppressed,
        }
        if self.suppressed:
            payload["justification"] = self.justification
        return payload

    def render(self) -> str:
        """One-line human-readable form."""
        mark = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}: {self.rule_id} "
            f"{self.severity.value}: {self.message}{mark}"
        )

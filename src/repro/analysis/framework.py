"""The reprolint checker framework.

A :class:`Checker` inspects one parsed file (:class:`FileContext`) and
yields :class:`~repro.analysis.findings.Finding` objects.  The
:class:`Analyzer` parses files, builds symbol tables, runs every
registered checker, and applies inline suppressions.

Suppressions
------------

A finding is suppressed by a comment on the reported line::

    self.device.read_block(no)  # reprolint: disable=IO001 -- pointer chase

The justification after ``--`` is mandatory: reprolint's contract is
that every silenced invariant carries a written reason, so a bare
``disable`` is itself reported (rule ``SUP001``).  ``disable=all``
silences every rule on the line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Type

from repro.analysis.findings import Finding, Severity
from repro.analysis.symbols import SymbolTable

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s+--\s*(\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One inline ``# reprolint: disable=`` comment."""

    line: int
    rules: frozenset[str]
    justification: str

    def covers(self, rule_id: str) -> bool:
        return "all" in self.rules or rule_id in self.rules


def parse_suppressions(source_lines: list[str]) -> dict[int, Suppression]:
    suppressions: dict[int, Suppression] = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = frozenset(rule.strip() for rule in match.group(1).split(","))
        suppressions[lineno] = Suppression(
            line=lineno, rules=rules, justification=match.group(2) or ""
        )
    return suppressions


@dataclass
class FileContext:
    """Everything the checkers can know about one file."""

    path: str
    module: str
    tree: ast.Module
    source_lines: list[str]
    symbols: SymbolTable
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The package holding this module (``repro.core`` for
        ``repro.core.engine``)."""
        if self.module.endswith(".__init__"):
            return self.module.rsplit(".", 1)[0]
        return self.module.rsplit(".", 1)[0] if "." in self.module else self.module


class Checker:
    """Base class for one rule.  Subclasses set the class attributes and
    implement :meth:`check`; rules with a whole-program pass also
    implement :meth:`check_program` and set :attr:`interprocedural`."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: the rule gains extra findings in ``--interprocedural`` mode.
    interprocedural: bool = False
    #: the rule *only* works over the whole program (no per-file pass);
    #: selecting it implies interprocedural analysis.
    program_only: bool = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def check_program(self, program) -> Iterator[Finding]:
        """Whole-program pass over a
        :class:`~repro.analysis.callgraph.ProgramContext`; findings must
        carry the path of the file they blame so suppressions apply."""
        return iter(())

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            severity=self.severity,
            message=message,
        )

    def program_finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=path,
            line=line,
            severity=self.severity,
            message=message,
        )


#: rule_id -> checker class, in registration order.
CHECKER_REGISTRY: dict[str, Type[Checker]] = {}


def register(checker: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not checker.rule_id:
        raise ValueError(f"{checker.__name__} has no rule_id")
    if checker.rule_id in CHECKER_REGISTRY:
        raise ValueError(f"duplicate rule id {checker.rule_id}")
    CHECKER_REGISTRY[checker.rule_id] = checker
    return checker


def module_name_for(path: str) -> str:
    """Derive the dotted module name from a file path.

    The segment after the last ``repro`` path component anchors the
    package — this works for the installed tree (``.../src/repro/...``)
    and for test fixtures that mirror it under a temp directory.  Files
    outside any ``repro`` tree get their bare stem, which opts them out
    of the package-scoped rules.
    """
    normalized = path.replace("\\", "/")
    parts = [part for part in normalized.split("/") if part]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:])
    return parts[-1] if parts else ""


class AnalysisError(Exception):
    """A target file could not be parsed."""


class Analyzer:
    """Runs a set of checkers over files and applies suppressions.

    With ``interprocedural=True`` (or when a ``program_only`` rule like
    CONC001/CONC002 is selected) the analyzed files are additionally
    indexed into one whole-program call graph
    (:mod:`repro.analysis.callgraph`) and every checker's
    :meth:`Checker.check_program` pass runs over it.  Suppressions apply
    to program findings exactly as to per-file findings — by the blamed
    file and line.
    """

    def __init__(
        self,
        rules: Optional[Iterable[str]] = None,
        interprocedural: bool = False,
    ) -> None:
        # Import for side effect: the rule modules register themselves.
        from repro.analysis import rules_concurrency  # noqa: F401
        from repro.analysis import rules_determinism  # noqa: F401
        from repro.analysis import rules_encoding  # noqa: F401
        from repro.analysis import rules_io  # noqa: F401
        from repro.analysis import rules_layering  # noqa: F401
        from repro.analysis import rules_locks  # noqa: F401
        from repro.analysis import rules_mutation  # noqa: F401
        from repro.analysis import rules_obs  # noqa: F401
        from repro.analysis import rules_refcount  # noqa: F401
        from repro.analysis import rules_txn  # noqa: F401

        selected = set(rules) if rules is not None else None
        if selected is not None:
            unknown = selected - set(CHECKER_REGISTRY) - {"SUP001"}
            if unknown:
                raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        self.rules = selected
        self.checkers = [
            checker_cls()
            for rule_id, checker_cls in CHECKER_REGISTRY.items()
            if selected is None or rule_id in selected
        ]
        # Explicitly asking for a program-only rule implies the mode.
        self.interprocedural = interprocedural or any(
            checker.program_only for checker in self.checkers if selected is not None
        )

    def build_context(self, source: str, path: str) -> FileContext:
        """Parse one file into the context the checkers consume."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise AnalysisError(f"{path}: {exc}") from exc
        return FileContext(
            path=path,
            module=module_name_for(path),
            tree=tree,
            source_lines=source.splitlines(),
            symbols=SymbolTable.build(tree),
            suppressions=parse_suppressions(source.splitlines()),
        )

    def run_source(self, source: str, path: str) -> list[Finding]:
        """Analyze one file's source text."""
        return self.run_sources([(path, source)])

    def run_sources(self, items: Iterable[tuple[str, str]]) -> list[Finding]:
        """Analyze ``(path, source)`` pairs as one program."""
        return self.run_contexts(
            [self.build_context(source, path) for path, source in items]
        )

    def run_contexts(self, contexts: list[FileContext]) -> list[Finding]:
        findings: list[Finding] = []
        for ctx in contexts:
            for checker in self.checkers:
                for finding in checker.check(ctx):
                    findings.append(self._apply_suppression(ctx, finding))
            findings.extend(self._suppression_hygiene(ctx))
        if self.interprocedural:
            from repro.analysis.callgraph import build_program

            program = build_program(contexts)
            by_path = {ctx.path: ctx for ctx in contexts}
            for checker in self.checkers:
                for finding in checker.check_program(program):
                    ctx = by_path.get(finding.path)
                    findings.append(
                        self._apply_suppression(ctx, finding) if ctx else finding
                    )
        return sorted(findings, key=lambda f: f.sort_key)

    def run_file(self, path: str) -> list[Finding]:
        with open(path, "r", encoding="utf-8") as handle:
            return self.run_source(handle.read(), path)

    def _apply_suppression(self, ctx: FileContext, finding: Finding) -> Finding:
        suppression = ctx.suppressions.get(finding.line)
        if suppression is None or not suppression.covers(finding.rule_id):
            return finding
        return Finding(
            rule_id=finding.rule_id,
            path=finding.path,
            line=finding.line,
            severity=finding.severity,
            message=finding.message,
            suppressed=True,
            justification=suppression.justification,
        )

    def _suppression_hygiene(self, ctx: FileContext) -> Iterator[Finding]:
        """SUP001: every suppression must carry a written justification."""
        if self.rules is not None and "SUP001" not in self.rules:
            return
        for suppression in ctx.suppressions.values():
            if not suppression.justification:
                yield Finding(
                    rule_id="SUP001",
                    path=ctx.path,
                    line=suppression.line,
                    severity=Severity.ERROR,
                    message=(
                        "suppression without justification: write "
                        "'# reprolint: disable=RULE -- reason'"
                    ),
                )

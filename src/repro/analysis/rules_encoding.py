"""ENC001 — column block formats decode only inside ``repro.databases``.

The compressed-domain execution path gives MiniColumn's on-disk block
formats (``.col`` payloads, the ``.seg`` block directory, ``.zmap``
zone entries) real structure: per-block encodings, bit-packed deltas,
dictionary pages.  That structure is owned by
:mod:`repro.databases.colcodec` and the column file — any other layer
struct-unpacking those bytes freezes the format and breaks the next
encoding migration silently.

Two sub-checks:

**Decoding.**  A buffer read from a block-format path (a string
constant ending in ``.col``/``.seg``/``.zmap``, possibly via a path
variable) is tainted; calling ``unpack``/``unpack_from``/
``iter_unpack`` on it outside ``repro.databases`` is a violation.
Shipping such bytes around — or folding them through the *public*
codec helpers (``fold_int_cells``) as the cluster pushdown does — is
fine; only direct struct decoding is flagged.

**Imports.**  Importing underscore-private names from
``repro.databases.colcodec`` (the cell/header structs) outside
``repro.databases`` is the same violation at the import boundary.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, FileContext, register
from repro.analysis.symbols import call_tail

#: Suffixes naming MiniColumn's block-format files.
BLOCK_SUFFIXES = (".col", ".seg", ".zmap")

#: Call tails that produce file bytes.
_READ_TAILS = frozenset(
    {"read_file", "read", "pread", "preadv", "_pread", "_preadv"}
)

#: struct.Struct / struct-module decoding entry points.
_UNPACK_TAILS = frozenset({"unpack", "unpack_from", "iter_unpack"})

#: The format's owner (plus the analyzer itself, whose fixtures and
#: docstrings mention the suffixes).
_EXEMPT_MODULES = ("repro.databases", "repro.analysis")

_CODEC_MODULE = "repro.databases.colcodec"


def _names_a_block_file(node: ast.AST) -> bool:
    """Whether the expression contains a ``.col``/``.seg``/``.zmap``
    string constant (the path literal, or the suffix being appended)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value, str):
            if child.value.endswith(BLOCK_SUFFIXES):
                return True
    return False


class _BlockBytesTaint:
    """Names bound to bytes read from block-format paths, one function.

    Two levels: *path* names assigned from expressions naming a block
    file, then *buffer* names assigned from read calls whose arguments
    use either a block-file constant or a tainted path name.  Buffer
    taint propagates through plain assignment and aliasing wrappers.
    """

    _ALIASING_WRAPPERS = frozenset({"bytearray", "memoryview", "bytes"})

    def __init__(self, func: ast.AST) -> None:
        self.paths: set[str] = set()
        self.buffers: set[str] = set()
        for node in ast.walk(func):
            value = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                continue
            if _names_a_block_file(value):
                self.paths.update(names)
            if self._yields_block_bytes(value):
                self.buffers.update(names)

    def reads_block_bytes(self, call: ast.Call) -> bool:
        """Whether ``call`` is a read of a block-format file."""
        if call_tail(call) not in _READ_TAILS:
            return False
        for arg in call.args:
            if _names_a_block_file(arg):
                return True
            if isinstance(arg, ast.Name) and arg.id in self.paths:
                return True
        return False

    def _yields_block_bytes(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call):
            if self.reads_block_bytes(expr):
                return True
            if call_tail(expr) in self._ALIASING_WRAPPERS:
                return any(self._yields_block_bytes(arg) for arg in expr.args)
            return False
        if isinstance(expr, ast.Name):
            return expr.id in self.buffers
        if isinstance(expr, ast.Subscript):
            return self._yields_block_bytes(expr.value)
        return False

    def argument_is_block_bytes(self, arg: ast.AST) -> bool:
        return self._yields_block_bytes(arg)


@register
class EncodingBoundaryChecker(Checker):
    rule_id = "ENC001"
    #: Purely lexical rule: one file is the whole story, so the
    #: interprocedural pass adds nothing.
    interprocedural = False
    severity = Severity.ERROR
    description = (
        "column block formats (.col/.seg/.zmap payloads) are decoded "
        "only by repro.databases; other layers may not struct-unpack "
        "them or import colcodec privates"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro."):
            return
        if ctx.module.startswith(_EXEMPT_MODULES):
            return
        yield from self._check_private_imports(ctx)
        for func, qualname in ctx.symbols.functions:
            taint = _BlockBytesTaint(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if call_tail(node) not in _UNPACK_TAILS:
                    continue
                if any(
                    taint.argument_is_block_bytes(arg) for arg in node.args
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{qualname}: struct-unpacks a column block "
                        "payload — block formats are private to "
                        "repro.databases; go through the codec API "
                        "(colcodec) or the table instead",
                    )

    def _check_private_imports(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom) or node.level != 0:
                continue
            if node.module != _CODEC_MODULE:
                continue
            for alias in node.names:
                if alias.name.startswith("_"):
                    yield self.finding(
                        ctx,
                        node,
                        f"{ctx.module} imports {_CODEC_MODULE}.{alias.name} "
                        "— the cell/header structs are private to the "
                        "codec; use its public encode/decode/fold API",
                    )

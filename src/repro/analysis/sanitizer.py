"""Runtime lock-order sanitizer — the dynamic twin of CONC002.

The static side (:mod:`repro.analysis.summaries`) derives a lock
acquisition-order graph from the call graph; this module observes the
*actual* order at runtime and fails loudly when they disagree.  It is
opt-in and free when off:

* ``repro lint --sanitize`` installs a :class:`LockOrderSanitizer`,
  runs the multi-session interleaving smoke workload, and cross-checks
  the observed edges against the static graph;
* setting ``REPRO_SANITIZE=1`` in the environment installs a sanitizer
  at import time, so any test run records (and enforces) lock order;
* with no sanitizer installed, :class:`TrackedLock` costs one ``None``
  check per acquisition.

Locks participate by being :class:`TrackedLock` instances (see
:func:`tracked_lock`).  Each carries an ``order_key`` (the runtime
spelling of the static canonical name) and a tier ``rank`` under the
declared master → chunkserver → client → inode order.  The sanitizer keeps one
acquisition stack per ``(thread, logical session)`` — SimClock
interleaving is cooperative, so logical sessions on one thread are
distinguished with the :meth:`LockOrderSanitizer.session` context
manager — and raises :class:`LockOrderViolation` on:

* re-acquisition of a held non-reentrant lock (self-deadlock);
* acquiring a lower-or-equal-ranked lock while a ranked lock is held
  (tier inversion);
* acquiring the reverse of an edge in the static graph (the runtime
  witness CONC002 would need to see the cycle).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from contextlib import contextmanager

#: Keyword tiers, mirroring rules_locks.LOCK_TIERS (kept literal here so
#: the runtime side has no import-time dependency on the AST machinery).
#: ``inode`` is the engine-level MVCC tier below the cluster locks:
#: per-inode write locks taken during session commit.
#: "serving" precedes "server" because matching is first-keyword-wins
#: and serving-layer lock names contain both substrings.  Rank -1 puts
#: the serving dispatch lock below every cluster/engine tier: it is
#: held across engine calls that take inode locks.
_TIERS = (
    ("serving", -1),
    ("master", 0),
    ("chunk", 1),
    ("server", 1),
    ("client", 2),
    ("inode", 3),
)


def rank_of(order_key: str) -> Optional[int]:
    lowered = order_key.lower()
    for keyword, rank in _TIERS:
        if keyword in lowered:
            return rank
    return None


class LockOrderViolation(RuntimeError):
    """The observed acquisition order contradicts the declared one."""


class LockContractError(RuntimeError):
    """A ``require_held`` guard ran without its lock held."""


@dataclass
class _Context:
    """Acquisition stack of one (thread, logical session)."""

    stack: list["TrackedLock"] = field(default_factory=list)


class LockOrderSanitizer:
    """Records per-context acquisition stacks and enforces lock order."""

    def __init__(
        self,
        static_edges: Optional[Sequence[tuple[str, str]]] = None,
        raise_on_violation: bool = True,
    ) -> None:
        #: static (outer, inner) edges to cross-check against; reversed
        #: observations are violations even when both locks are unranked.
        self.static_edges = frozenset(static_edges or ())
        self.raise_on_violation = raise_on_violation
        self.violations: list[str] = []
        self._contexts: dict[tuple[int, Optional[str]], _Context] = {}
        self._edges: dict[tuple[str, str], int] = {}
        self._local = threading.local()
        self._mutex = threading.Lock()

    # -- logical sessions ---------------------------------------------------
    @contextmanager
    def session(self, session: object) -> Iterator[None]:
        """Tag the current thread as running one logical session.

        SimClock interleaving runs many sessions on one OS thread; the
        tag keeps their acquisition stacks separate, exactly like the
        per-session symbol the static analysis reasons about.

        Accepts an MVCC :class:`~repro.mvcc.session.Session` (keyed by
        its stable ``session_key`` identity) or any label string for
        drivers without real session objects.
        """
        label = getattr(session, "session_key", session)
        previous = getattr(self._local, "session", None)
        self._local.session = label
        try:
            yield
        finally:
            self._local.session = previous

    def context_key(self) -> tuple[int, Optional[str]]:
        return (threading.get_ident(), getattr(self._local, "session", None))

    def _context(self) -> _Context:
        key = self.context_key()
        with self._mutex:
            return self._contexts.setdefault(key, _Context())

    # -- enforcement --------------------------------------------------------
    def note_acquire(self, lock: "TrackedLock") -> None:
        context = self._context()
        for held in context.stack:
            if held is lock:
                self._violate(
                    f"re-acquisition of {lock.order_key!r} in one context — "
                    "self-deadlock for a non-reentrant Lock"
                )
                continue
            if (
                held.rank is not None
                and lock.rank is not None
                and held.order_key != lock.order_key
                and lock.rank <= held.rank
            ):
                self._violate(
                    f"lock order inversion: {lock.order_key!r} (rank "
                    f"{lock.rank}) acquired while holding {held.order_key!r} "
                    f"(rank {held.rank})"
                )
            if (lock.order_key, held.order_key) in self.static_edges:
                self._violate(
                    f"observed {held.order_key!r} -> {lock.order_key!r} "
                    "reverses an edge of the static lock-order graph"
                )
            with self._mutex:
                edge = (held.order_key, lock.order_key)
                self._edges[edge] = self._edges.get(edge, 0) + 1
        context.stack.append(lock)

    def note_release(self, lock: "TrackedLock") -> None:
        context = self._context()
        if lock in context.stack:
            context.stack.remove(lock)

    def _violate(self, message: str) -> None:
        self.violations.append(message)
        if self.raise_on_violation:
            raise LockOrderViolation(message)

    # -- reporting ----------------------------------------------------------
    def observed_edges(self) -> set[tuple[str, str]]:
        with self._mutex:
            return set(self._edges)

    def edge_counts(self) -> dict[tuple[str, str], int]:
        with self._mutex:
            return dict(self._edges)


#: The installed sanitizer, if any.  Module-level mutable state is safe
#: here: installation happens before workloads start, under test or CLI
#: control.  # reprolint: disable=CONC001 -- install/uninstall run single-threaded before any workload
_ACTIVE: Optional[LockOrderSanitizer] = None


def install_sanitizer(sanitizer: LockOrderSanitizer) -> LockOrderSanitizer:
    global _ACTIVE
    _ACTIVE = sanitizer
    return sanitizer


def uninstall_sanitizer() -> None:
    global _ACTIVE
    _ACTIVE = None


def current_sanitizer() -> Optional[LockOrderSanitizer]:
    return _ACTIVE


class TrackedLock:
    """A non-reentrant lock that reports acquisitions to the sanitizer.

    ``order_key`` is the runtime identity matched against the static
    lock-order graph; ``rank`` is the cluster tier (None = unranked,
    nests freely).  ``require_held()`` is the runtime counterpart of the
    transaction guard: helpers that mutate shared state without taking
    the lock themselves declare the caller's obligation, and the static
    CONC001 pass recognizes the call exactly like
    ``require_transaction``.
    """

    __slots__ = ("name", "order_key", "rank", "_lock", "_owner")

    def __init__(
        self,
        name: str,
        rank: Optional[int] = None,
        order_key: Optional[str] = None,
    ) -> None:
        self.name = name
        self.order_key = order_key or name
        self.rank = rank if rank is not None else rank_of(self.order_key)
        self._lock = threading.Lock()
        self._owner: Optional[tuple[int, Optional[str]]] = None

    def _context_key(self) -> tuple[int, Optional[str]]:
        sanitizer = _ACTIVE
        if sanitizer is not None:
            return sanitizer.context_key()
        return (threading.get_ident(), None)

    def __enter__(self) -> "TrackedLock":
        sanitizer = _ACTIVE
        if sanitizer is not None:
            sanitizer.note_acquire(self)
        self._lock.acquire()
        self._owner = self._context_key()
        return self

    def __exit__(self, *exc: object) -> None:
        self._owner = None
        self._lock.release()
        sanitizer = _ACTIVE
        if sanitizer is not None:
            sanitizer.note_release(self)

    def locked(self) -> bool:
        return self._lock.locked()

    def held_by_current_context(self) -> bool:
        """Whether the calling (thread, session) context holds this lock.

        Lets re-entrant composites (the replicated master group's
        propose/tick paths) acquire the lock only when the caller does
        not already own it, instead of deadlocking on a non-reentrant
        re-acquisition.
        """
        return self._owner is not None and self._owner == self._context_key()

    def require_held(self) -> None:
        """Assert (when a sanitizer is installed) that the current
        context holds this lock.

        Enforcement is gated on the sanitizer so single-session callers
        that drive components directly — every pre-concurrency test —
        keep working; sanitized runs (CI's smoke test, REPRO_SANITIZE=1)
        get the hard guarantee.
        """
        if _ACTIVE is None:
            return
        if self._owner != self._context_key():
            raise LockContractError(
                f"{self.order_key!r} must be held by the caller "
                "(see the cluster locking protocol in DESIGN.md §12)"
            )


def tracked_lock(
    name: str, rank: Optional[int] = None, order_key: Optional[str] = None
) -> TrackedLock:
    """The factory the runtime components use (one import site)."""
    return TrackedLock(name, rank=rank, order_key=order_key)


def check_agreement(
    static_edges: Sequence[tuple[str, str]],
    observed_edges: Sequence[tuple[str, str]],
) -> list[str]:
    """Do the static and observed lock-order graphs agree?

    Edges are first normalized to tier names (``master`` / ``chunk`` /
    ``client``, unranked keys kept verbatim) because the two sides spell
    lock identities differently (canonical static names vs runtime
    order keys).  Agreement means: no observed edge reverses a static
    edge (tier-wise), and the union of both graphs is acyclic.  Returns
    a list of problems — empty when the graphs agree.
    """

    def tier_name(key: str) -> str:
        rank = rank_of(key)
        if rank is None:
            return key
        return {-1: "serving", 0: "master", 1: "chunk", 2: "client", 3: "inode"}[rank]

    def normalize(edges: Sequence[tuple[str, str]]) -> set[tuple[str, str]]:
        return {
            (tier_name(outer), tier_name(inner))
            for outer, inner in edges
            if tier_name(outer) != tier_name(inner)
        }

    static_norm = normalize(static_edges)
    observed_norm = normalize(observed_edges)
    problems = [
        f"observed edge {outer!r} -> {inner!r} reverses a static edge"
        for outer, inner in sorted(observed_norm)
        if (inner, outer) in static_norm
    ]
    tier_rank = {"serving": -1, "master": 0, "chunk": 1, "client": 2, "inode": 3}
    problems += [
        f"observed edge {outer!r} -> {inner!r} inverts the declared tier order"
        for outer, inner in sorted(observed_norm)
        if outer in tier_rank
        and inner in tier_rank
        and tier_rank[inner] <= tier_rank[outer]
    ]
    combined = static_norm | observed_norm
    adjacency: dict[str, set[str]] = {}
    for outer, inner in combined:
        adjacency.setdefault(outer, set()).add(inner)

    visiting: set[str] = set()
    done: set[str] = set()

    def cyclic(node: str, trail: tuple[str, ...]) -> Optional[tuple[str, ...]]:
        if node in done:
            return None
        if node in visiting:
            return trail + (node,)
        visiting.add(node)
        for nxt in sorted(adjacency.get(node, ())):
            found = cyclic(nxt, trail + (node,))
            if found:
                return found
        visiting.discard(node)
        done.add(node)
        return None

    for node in sorted(adjacency):
        found = cyclic(node, ())
        if found:
            problems.append(
                "combined static+observed lock graph has a cycle: "
                + " -> ".join(found)
            )
            break
    return problems


if os.environ.get("REPRO_SANITIZE"):  # pragma: no cover - env-driven
    install_sanitizer(LockOrderSanitizer())

"""DET001 — nondeterminism inside the replicated apply path.

Raft's replica-interchangeability argument rests on one property: the
same committed command sequence produces the same state on every node.
The state machine (``repro.raft.statemachine``) therefore must be a
pure function of ``(state, command)`` — anything a replica reads from
its *environment* while applying breaks the digests silently, and the
divergence only surfaces after a failover loses data.

Three nondeterminism sources are flagged lexically, anywhere in the
scoped modules:

* **wall-clock reads** — ``time.time()`` / ``time.monotonic()`` /
  ``time.perf_counter()``, ``datetime.now()`` / ``utcnow()`` /
  ``today()``, and any ``<...>clock.now`` access.  Replicas apply at
  different instants (a restarted node replays years of log in one
  tick); time-dependent arguments (lease deadlines) must be computed by
  the proposer and carried inside the command.
* **unseeded randomness** — calls through the ``random`` *module*
  (``random.choice(...)``).  A ``random.Random(seed)`` instance held by
  the node is fine — but placement-style choices belong at propose
  time, not apply time.
* **dict-iteration-order dependence** — ``for`` loops (and
  comprehensions) iterating ``.items()`` / ``.keys()`` / ``.values()``
  without a ``sorted(...)`` wrapper.  Insertion order is replayed
  history: two replicas whose dicts were built through different
  truncation/replay paths can disagree.  Iterate ``sorted(d)`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, FileContext, register
from repro.analysis.symbols import dotted_name

#: Modules whose code must be deterministic (exact module or prefix).
DETERMINISTIC_MODULES = ("repro.raft.statemachine",)

#: Functions of the ``time`` module that read a clock.
_TIME_READS = frozenset(
    {"time", "monotonic", "perf_counter", "process_time", "time_ns"}
)

#: ``datetime`` constructors that read a clock.
_DATETIME_READS = frozenset({"now", "utcnow", "today"})

#: Dict views whose iteration order is insertion history.
_DICT_VIEWS = frozenset({"items", "keys", "values"})


def _call_target(node: ast.Call) -> Optional[str]:
    return dotted_name(node.func)


@register
class DeterminismChecker(Checker):
    rule_id = "DET001"
    #: Purely lexical rule: one file is the whole story, so the
    #: interprocedural pass adds nothing.
    interprocedural = False
    severity = Severity.ERROR
    description = (
        "replicated apply() paths must be deterministic: no wall-clock "
        "reads, no module-level random, no dict-iteration-order "
        "dependence"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Attribute):
                yield from self._check_clock_attribute(ctx, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                yield from self._check_iteration(ctx, node, iterable)

    @staticmethod
    def _in_scope(module: str) -> bool:
        return any(
            module == scoped or module.startswith(scoped + ".")
            for scoped in DETERMINISTIC_MODULES
        )

    # -- wall clocks ---------------------------------------------------------
    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        target = _call_target(node)
        if target is None:
            return
        resolved = ctx.symbols.resolve(target)
        head, __, tail = resolved.rpartition(".")
        if head in ("time", "datetime.datetime", "datetime.date") and (
            tail in _TIME_READS or tail in _DATETIME_READS
        ):
            yield self.finding(
                ctx,
                node,
                f"wall-clock read {resolved}() in a replicated apply path — "
                "replicas apply at different instants; the proposer must "
                "compute time-dependent values and carry them in the command",
            )
        elif head == "random" and tail != "Random":
            # random.Random(seed) is the sanctioned escape hatch: a
            # seeded generator is deterministic by construction.
            yield self.finding(
                ctx,
                node,
                f"module-level random.{tail}() in a replicated apply path — "
                "replicas would each draw their own value; resolve "
                "nondeterministic choices at propose time (or use a seeded "
                "random.Random carried by the node)",
            )

    def _check_clock_attribute(
        self, ctx: FileContext, node: ast.Attribute
    ) -> Iterator[Finding]:
        if node.attr != "now":
            return
        receiver = node.value
        tail = (
            receiver.attr
            if isinstance(receiver, ast.Attribute)
            else receiver.id
            if isinstance(receiver, ast.Name)
            else ""
        )
        if "clock" in tail.lower():
            yield self.finding(
                ctx,
                node,
                "SimClock read (<...>clock.now) in a replicated apply path — "
                "a replaying replica's clock differs from the proposer's; "
                "carry the timestamp inside the command",
            )

    # -- dict iteration order ------------------------------------------------
    def _check_iteration(
        self, ctx: FileContext, node: ast.AST, iterable: ast.expr
    ) -> Iterator[Finding]:
        if not isinstance(iterable, ast.Call):
            return
        if not isinstance(iterable.func, ast.Attribute):
            return
        view = iterable.func.attr
        if view not in _DICT_VIEWS:
            return
        # ``ast.comprehension`` carries no position; anchor on the
        # iterable expression instead.
        anchor = node if hasattr(node, "lineno") else iterable
        yield self.finding(
            ctx,
            anchor,
            f"iteration over .{view}() depends on dict insertion order, "
            "which is replayed history and may differ across replicas — "
            "iterate sorted(...) instead",
        )

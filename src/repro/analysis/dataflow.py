"""A small intraprocedural dataflow toolkit for reprolint.

Nothing here tries to be a full CFG: the rules that need flow
information (RC001's incref obligations, MUT001's raw-buffer taint)
work on *statement order within a block* plus ancestry facts (loops,
``try`` cleanup).  That is precise enough to model the engine's real
idioms — incref-then-transfer runs, build-then-publish loops — while
staying simple enough to trust.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from repro.analysis.symbols import SymbolTable, call_tail

#: Call tails that cannot meaningfully fail mid-protocol: refcount
#: bookkeeping itself, pure readers, struct packing, and builtins the
#: engine leans on.  Anything else between an ``incref`` and its
#: discharge is treated as an exception edge.
SAFE_CALL_TAILS = frozenset(
    {
        "incref",
        "decref",
        "get",
        "set",
        "len",
        "range",
        "enumerate",
        "zip",
        "min",
        "max",
        "sorted",
        "list",
        "dict",
        "tuple",
        "bytes",
        "bytearray",
        "isinstance",
        "append",  # list.append cannot fail for engine-sized lists
        "pack",
        "unpack_from",
        "Slot",  # plain dataclass construction
    }
)


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def statement_may_raise(stmt: ast.stmt, extra_safe: Sequence[str] = ()) -> bool:
    """Whether a statement holds an explicit raise or a risky call."""
    safe = SAFE_CALL_TAILS.union(extra_safe)
    for child in ast.walk(stmt):
        if isinstance(child, ast.Raise):
            return True
        if isinstance(child, ast.Call):
            tail = call_tail(child)
            if tail is None or tail not in safe:
                return True
    return False


def block_of(symbols: SymbolTable, stmt: ast.stmt) -> list[ast.stmt]:
    """The statement list (body/orelse/finalbody) containing ``stmt``."""
    parent = symbols.parents.get(stmt)
    if parent is None:
        return [stmt]
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(parent, attr, None)
        if isinstance(block, list) and stmt in block:
            return block
    for handler in getattr(parent, "handlers", []):
        if stmt in handler.body:
            return handler.body
    return [stmt]


def statements_after(symbols: SymbolTable, stmt: ast.stmt) -> list[ast.stmt]:
    """Statements following ``stmt`` in its own block, in order."""
    block = block_of(symbols, stmt)
    index = block.index(stmt)
    return block[index + 1 :]


def mentions(node: ast.AST, expression_source: str) -> bool:
    """Whether ``node`` contains a sub-expression spelled like ``expression_source``.

    Matching is textual over ``ast.unparse`` — the same normalisation on
    both sides — which is exactly the right level of precision for
    pairing ``incref(slot.block_no)`` with
    ``Slot(block_no=slot.block_no, ...)`` without alias analysis.
    """
    for child in ast.walk(node):
        if isinstance(child, (ast.Name, ast.Attribute, ast.Subscript)):
            if ast.unparse(child) == expression_source:
                return True
    return False


def try_cleanup_blocks(
    symbols: SymbolTable, node: ast.AST, stop: Optional[ast.AST] = None
) -> Iterator[list[ast.stmt]]:
    """Handler/finally blocks of every ``try`` enclosing ``node``.

    Only ``try`` statements whose *body* (not handler) contains the node
    count — being inside a handler offers no protection.  The walk stops
    at ``stop`` (normally the enclosing function).
    """
    current: ast.AST = node
    for ancestor in symbols.ancestors(node):
        if ancestor is stop:
            return
        # The direct child of a Try on the ancestry path tells us which
        # section the node sits in; only the body is protected.
        if isinstance(ancestor, ast.Try) and current in ancestor.body:
            for handler in ancestor.handlers:
                yield handler.body
            if ancestor.finalbody:
                yield ancestor.finalbody
        current = ancestor


def calls_decref(stmts: Sequence[ast.stmt]) -> bool:
    """Whether any statement in the block calls ``*.decref``."""
    for stmt in stmts:
        for call in iter_calls(stmt):
            if call_tail(call) == "decref":
                return True
    return False


class TaintTracker:
    """Forward taint over one function: names bound to raw block bytes.

    Sources are calls whose tail is in ``source_tails``
    (``read_block``/``read_blocks``/``_slot_content``/...).  Taint
    propagates through plain assignment and through wrapping calls
    (``bytearray(raw)``), which is how a checked-out buffer is usually
    made mutable.
    """

    def __init__(self, source_tails: frozenset[str]) -> None:
        self.source_tails = source_tails
        self.tainted: set[str] = set()

    #: Wrappers whose result aliases (or exposes) their argument's buffer.
    _ALIASING_WRAPPERS = frozenset({"bytearray", "memoryview"})

    def _expression_tainted(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call):
            tail = call_tail(expr)
            if tail in self.source_tails:
                return True
            if tail in self._ALIASING_WRAPPERS:
                return any(self._expression_tainted(arg) for arg in expr.args)
            # Any other call returns a fresh object: taint stops here.
            return False
        if isinstance(expr, ast.Name):
            return expr.id in self.tainted
        return any(
            self._expression_tainted(child) for child in ast.iter_child_nodes(expr)
        )

    def scan_function(self, func: ast.AST) -> None:
        """Single forward pass binding taint to assigned names.

        One pass is enough for the straight-line define-then-mutate
        idiom this rule targets; loop-carried aliases are out of scope.
        """
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and self._expression_tainted(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.tainted.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if self._expression_tainted(node.value) and isinstance(
                    node.target, ast.Name
                ):
                    self.tainted.add(node.target.id)

    def name_is_tainted(self, name: str) -> bool:
        return name in self.tainted

"""MUT001 — raw leaf-block mutation outside the hole API.

Leaf blocks are shared: a buffer returned by the device
(``read_block``/``read_blocks``) or by the slot readers
(``_slot_content``, ``_segment_raw``) may back *many* slots across many
files.  Mutating such a buffer in place corrupts every other reference
and bypasses Algorithm 1 entirely — the only sanctioned mutation paths
are the hole API (:mod:`repro.core.holes`) and the engine's
checked-out-copy protocol (:class:`~repro.core.engine.BlockHandle`),
both of which operate on private copies.

The rule taints names bound to raw block reads (propagating through
``bytearray(...)`` wrapping) and flags in-place mutation of a tainted
name: subscript stores, ``del x[...]``, augmented subscript assignment,
and mutating method calls (``append``/``extend``/``insert``/…).

Scope: all of ``repro`` except ``repro.core.holes`` (the hole API) and
``repro.storage`` (the device owns its own buffers).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow import TaintTracker
from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, FileContext, register
from repro.analysis.symbols import call_tail

#: Calls producing raw (possibly shared) block bytes.
TAINT_SOURCES = frozenset(
    {"read_block", "read_blocks", "_slot_content", "_segment_raw"}
)

#: bytearray/list methods that mutate in place.
_MUTATOR_TAILS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "reverse", "sort"}
)

_EXEMPT_MODULES = ("repro.core.holes", "repro.storage.")


def _subscript_root(node: ast.AST) -> ast.AST:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


@register
class RawMutationChecker(Checker):
    rule_id = "MUT001"
    #: Purely lexical rule: one file is the whole story, so the
    #: interprocedural pass adds nothing.
    interprocedural = False
    severity = Severity.ERROR
    description = (
        "in-place mutation of raw block bytes; shared leaf blocks may "
        "only change through the hole API or a checked-out BlockHandle"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro."):
            return
        if ctx.module.startswith(_EXEMPT_MODULES):
            return
        for func, qualname in ctx.symbols.functions:
            tracker = TaintTracker(TAINT_SOURCES)
            tracker.scan_function(func)
            if not tracker.tainted:
                continue
            yield from self._check_function(ctx, func, qualname, tracker)

    def _check_function(
        self, ctx: FileContext, func: ast.AST, qualname: str, tracker: TaintTracker
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        root = _subscript_root(target)
                        if (
                            isinstance(root, ast.Name)
                            and tracker.name_is_tainted(root.id)
                        ):
                            yield self.finding(
                                ctx,
                                node,
                                f"{qualname}: subscript store into "
                                f"{root.id!r}, a raw block buffer — shared "
                                "blocks must not be mutated in place",
                            )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        root = _subscript_root(target)
                        if (
                            isinstance(root, ast.Name)
                            and tracker.name_is_tainted(root.id)
                        ):
                            yield self.finding(
                                ctx,
                                node,
                                f"{qualname}: del on a slice of {root.id!r}, "
                                "a raw block buffer — shared blocks must "
                                "not be mutated in place",
                            )
            elif isinstance(node, ast.Call):
                tail = call_tail(node)
                if tail not in _MUTATOR_TAILS:
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                receiver = node.func.value
                if isinstance(receiver, ast.Name) and tracker.name_is_tainted(
                    receiver.id
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{qualname}: {receiver.id}.{tail}() mutates a raw "
                        "block buffer in place — use the hole API or a "
                        "checked-out BlockHandle copy",
                    )

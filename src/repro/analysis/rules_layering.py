"""LAYER001 — layering and boundary-exception contracts.

CompressDB's portability story (paper Section 5: "various databases")
depends on a strict layer cake: databases and workloads sit on the VFS
and the engine's public API, never on the block device.  Two sub-checks
enforce it:

**Imports.**  Every ``repro`` package has a rank; importing from a
strictly higher rank is a violation.  Additionally the *consumer*
packages (``repro.databases``, ``repro.workloads``) may not import
``repro.storage.block_device`` or engine internals at all — their whole
engine surface is ``repro.core.api`` plus the VFS
(``repro.fs.vfs`` / ``repro.fs.compressfs``).

**Exceptions.**  The VFS boundary speaks errno
(:mod:`repro.fs.errors`): a ``FileSystem`` storage primitive or
descriptor call raising a builtin (``ValueError``, ``KeyError``,
``OSError``…) or an engine-internal type leaks implementation detail to
every database.  Inside ``repro.fs``, methods of ``FileSystem``
subclasses may only raise ``repro.fs.errors`` types
(``NotImplementedError`` is allowed for abstract hooks).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, FileContext, register
from repro.analysis.symbols import dotted_name

#: Package ranks, lowest = closest to the hardware.  Importing from a
#: strictly higher rank inverts the layer cake.
LAYER_RANKS = {
    "repro.obs": 0,
    "repro.storage": 0,
    "repro.journal": 0,
    "repro.compression": 0,
    "repro.analysis": 0,
    "repro.succinct": 1,
    "repro.tadoc": 1,
    "repro.snap": 1,
    "repro.core": 1,
    "repro.mvcc": 1,
    "repro.fs": 2,
    "repro.databases": 3,
    "repro.distributed": 3,
    # Consensus sits beside the distributed tier: raft replicates the
    # master's state machine, the master group assembles raft nodes.
    "repro.raft": 3,
    "repro.workloads": 3,
    "repro.bench": 4,
    "repro.serving": 4,
    "repro.api": 5,
    "repro.cli": 5,
}

#: Packages restricted to the public engine surface.
_CONSUMER_PACKAGES = ("repro.databases", "repro.workloads")

#: What the consumer packages may use from below the VFS.
_CONSUMER_ALLOWED_PREFIXES = (
    "repro.core.api",
    "repro.fs.",
    "repro.obs",  # observability, not a data path
    "repro.storage.simclock",  # timing/cost model, not a data path
    "repro.storage.stats",  # observability, not a data path
)

_BUILTIN_EXCEPTIONS = frozenset(
    {
        "Exception",
        "ValueError",
        "TypeError",
        "KeyError",
        "IndexError",
        "OSError",
        "IOError",
        "RuntimeError",
        "AttributeError",
        "LookupError",
        "ArithmeticError",
        "ZeroDivisionError",
        "FileNotFoundError",
        "FileExistsError",
        "PermissionError",
        "StopIteration",
        "AssertionError",
    }
)

#: Methods forming the VFS boundary: the storage primitives plus the
#: descriptor/namespace surface the databases call.
_VFS_METHOD_PREFIXES = (
    "_create",
    "_unlink",
    "_exists",
    "_size",
    "_pread",
    "_pwrite",
    "_preadv",
    "_pwritev",
    "_truncate",
    "_list",
    "open",
    "close",
    "read",
    "write",
    "pread",
    "pwrite",
    "preadv",
    "pwritev",
    "lseek",
    "ftruncate",
    "truncate",
    "fsync",
    "unlink",
    "rename",
    "stat",
    "listdir",
    "read_file",
    "write_file",
    "append_file",
)


def _package_rank(module: str) -> Optional[int]:
    for package, rank in LAYER_RANKS.items():
        if module == package or module.startswith(package + "."):
            return rank
    return None


@register
class LayeringChecker(Checker):
    rule_id = "LAYER001"
    #: Purely lexical rule: one file is the whole story, so the
    #: interprocedural pass adds nothing.
    interprocedural = False
    severity = Severity.ERROR
    description = (
        "layer cake: no imports from higher layers; databases/workloads "
        "only use repro.core.api + the VFS; only repro.fs.errors types "
        "cross the VFS boundary"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro."):
            return
        yield from self._check_imports(ctx)
        if ctx.module.startswith("repro.fs."):
            yield from self._check_boundary_exceptions(ctx)

    # -- sub-check 1: the import graph -------------------------------------
    def _check_imports(self, ctx: FileContext) -> Iterator[Finding]:
        own_rank = _package_rank(ctx.module)
        consumer = ctx.module.startswith(_CONSUMER_PACKAGES)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                targets = [(node, alias.name) for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                targets = [(node, node.module)]
            else:
                continue
            for imp_node, target in targets:
                if not target.startswith("repro."):
                    continue
                target_rank = _package_rank(target)
                if (
                    own_rank is not None
                    and target_rank is not None
                    and target_rank > own_rank
                ):
                    yield self.finding(
                        ctx,
                        imp_node,
                        f"{ctx.module} (layer {own_rank}) imports {target} "
                        f"(layer {target_rank}) — lower layers must not "
                        "depend on higher ones",
                    )
                if consumer and self._forbidden_for_consumer(target):
                    yield self.finding(
                        ctx,
                        imp_node,
                        f"{ctx.module} reaches the engine through {target} — "
                        "databases/workloads may only use repro.core.api "
                        "and the VFS (repro.fs)",
                    )

    @staticmethod
    def _forbidden_for_consumer(target: str) -> bool:
        if target.startswith(_CONSUMER_ALLOWED_PREFIXES):
            return False
        return target.startswith(("repro.storage", "repro.core"))

    # -- sub-check 2: exceptions crossing the VFS -------------------------
    def _check_boundary_exceptions(self, ctx: FileContext) -> Iterator[Finding]:
        fs_classes = {
            name
            for name, bases in ctx.symbols.class_bases.items()
            if name == "FileSystem"
            or any(base.rsplit(".", 1)[-1].endswith("FS") for base in bases)
            or any(base.endswith("FileSystem") for base in bases)
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            enclosing_class = ctx.symbols.enclosing_class(node)
            if enclosing_class is None or enclosing_class.name not in fs_classes:
                continue
            method = ctx.symbols.enclosing_function(node)
            if method is None or not self._is_vfs_method(method.name):  # type: ignore[union-attr]
                continue
            raised = self._raised_name(ctx, node.exc)
            if raised is None:
                continue
            if raised == "NotImplementedError":
                continue  # abstract storage hooks
            if raised.startswith("repro.fs.errors."):
                continue
            if raised in _BUILTIN_EXCEPTIONS:
                yield self.finding(
                    ctx,
                    node,
                    f"{enclosing_class.name}.{method.name} raises builtin "  # type: ignore[union-attr]
                    f"{raised} across the VFS boundary — raise a "
                    "repro.fs.errors type (errno taxonomy) instead",
                )
            elif raised.startswith("repro.") and ".fs.errors." not in raised:
                yield self.finding(
                    ctx,
                    node,
                    f"{enclosing_class.name}.{method.name} raises "  # type: ignore[union-attr]
                    f"{raised} across the VFS boundary — only "
                    "repro.fs.errors types may cross",
                )

    @staticmethod
    def _is_vfs_method(name: str) -> bool:
        return name in _VFS_METHOD_PREFIXES

    @staticmethod
    def _raised_name(ctx: FileContext, exc: ast.AST) -> Optional[str]:
        node = exc.func if isinstance(exc, ast.Call) else exc
        name = dotted_name(node)
        if name is None:
            return None
        return ctx.symbols.resolve(name)

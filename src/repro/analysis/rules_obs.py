"""OBS001 — direct mutation of a metric instrument outside repro.obs.

The observability redesign (DESIGN.md §9) routes every counter through
the registry accessors: components call ``stats.record_*`` /
``stats.record(...)`` or hold a :class:`~repro.obs.metrics.Counter` and
``inc()`` it.  Writing a stats attribute directly
(``self.stats.commits += 1``) bypasses the registry — the metric the
exporters render silently diverges from what the component believes it
counted — and poking ``instrument.value`` or calling
``instrument.force(...)`` defeats counter monotonicity, which the
snapshot ``delta``/``merge`` algebra relies on.

Flagged, everywhere under ``repro`` except ``repro.obs`` itself:

- assignment or augmented assignment to an attribute of a ``stats``
  object (``x.stats.<field> = / += ...``, or a bare name ``stats``);
- assignment or augmented assignment to ``.value`` on a name bound
  from a ``counter()`` / ``gauge()`` / ``histogram()`` registry call;
- any ``.force(...)`` call — the sanctioned reset paths carry a
  written suppression, everything else is a bug.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow import TaintTracker
from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, FileContext, register
from repro.analysis.symbols import call_tail

#: Registry factory methods whose results are live instruments.
INSTRUMENT_SOURCES = frozenset({"counter", "gauge", "histogram"})

_EXEMPT_MODULES = ("repro.obs",)


def _is_stats_attribute(target: ast.AST) -> bool:
    """True for ``<expr>.stats.<field>`` or ``stats.<field>`` targets."""
    if not isinstance(target, ast.Attribute):
        return False
    receiver = target.value
    if isinstance(receiver, ast.Attribute):
        return receiver.attr == "stats"
    if isinstance(receiver, ast.Name):
        return receiver.id == "stats"
    return False


@register
class ObsMutationChecker(Checker):
    rule_id = "OBS001"
    #: Purely lexical rule: one file is the whole story, so the
    #: interprocedural pass adds nothing.
    interprocedural = False
    severity = Severity.ERROR
    description = (
        "direct mutation of a metric outside repro.obs; counters change "
        "only through registry accessors (record_*/inc/observe)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro."):
            return
        if ctx.module.startswith(_EXEMPT_MODULES):
            return
        for func, qualname in ctx.symbols.functions:
            tracker = TaintTracker(INSTRUMENT_SOURCES)
            tracker.scan_function(func)
            yield from self._check_function(ctx, func, qualname, tracker)

    def _check_function(
        self, ctx: FileContext, func: ast.AST, qualname: str, tracker: TaintTracker
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if _is_stats_attribute(target):
                        assert isinstance(target, ast.Attribute)
                        yield self.finding(
                            ctx,
                            node,
                            f"{qualname}: direct write to stats field "
                            f"{target.attr!r} bypasses the metrics "
                            "registry — use the record_*/record accessors",
                        )
                    elif (
                        isinstance(target, ast.Attribute)
                        and target.attr == "value"
                        and isinstance(target.value, ast.Name)
                        and tracker.name_is_tainted(target.value.id)
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"{qualname}: write to "
                            f"{target.value.id}.value mutates a registry "
                            "instrument directly — use inc()/set()/observe()",
                        )
            elif isinstance(node, ast.Call):
                if call_tail(node) != "force":
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"{qualname}: force() overrides counter monotonicity; "
                    "only repro.obs internals (and suppressed reset paths) "
                    "may call it",
                )

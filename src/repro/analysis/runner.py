"""Tree walking and reporting for ``repro lint``.

The runner resolves targets (files or directories) to a sorted list of
Python files, runs the :class:`~repro.analysis.framework.Analyzer`, and
renders either a human report or the stable JSON document the CI lint
job consumes.  Exit status: 0 when every finding is suppressed (with a
justification), 1 otherwise, 2 on unusable targets.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.analysis.findings import Finding
from repro.analysis.framework import AnalysisError, Analyzer

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}

#: Schema version of the ``--json`` document; bump on layout changes.
JSON_SCHEMA_VERSION = 1


def default_target() -> str:
    """The installed ``repro`` package tree (what CI lints)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def collect_files(targets: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    files: set[str] = set()
    for target in targets:
        if os.path.isfile(target):
            files.add(os.path.abspath(target))
        elif os.path.isdir(target):
            for dirpath, dirnames, filenames in os.walk(target):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                for filename in filenames:
                    if filename.endswith(".py"):
                        files.add(os.path.abspath(os.path.join(dirpath, filename)))
        else:
            raise FileNotFoundError(target)
    return sorted(files)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.active else 0

    # -- rendering -----------------------------------------------------
    def render_text(self, show_suppressed: bool = False) -> str:
        lines = [finding.render() for finding in self.active]
        if show_suppressed:
            lines.extend(finding.render() for finding in self.suppressed)
        lines.extend(f"error: {message}" for message in self.errors)
        counts = self.rule_counts()
        summary = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
        lines.append(
            f"{self.files_scanned} file(s) scanned, "
            f"{len(self.active)} finding(s), "
            f"{len(self.suppressed)} suppressed"
            + (f" [{summary}]" if summary else "")
        )
        return "\n".join(lines)

    def render_json(self, root: Optional[str] = None) -> str:
        """Machine-stable JSON: sorted findings, fixed key order.

        ``root`` relativizes paths so the document does not depend on
        the checkout location.
        """
        def normalize(path: str) -> str:
            if root:
                try:
                    return os.path.relpath(path, root).replace(os.sep, "/")
                except ValueError:  # pragma: no cover - different drive
                    return path
            return path

        findings = sorted(self.findings, key=lambda f: f.sort_key)
        document = {
            "version": JSON_SCHEMA_VERSION,
            "files_scanned": self.files_scanned,
            "counts": {
                "active": len(self.active),
                "suppressed": len(self.suppressed),
                "by_rule": self.rule_counts(),
            },
            "findings": [
                {**finding.to_dict(), "path": normalize(finding.path)}
                for finding in findings
            ],
            "errors": list(self.errors),
        }
        return json.dumps(document, indent=2, sort_keys=False)

    def rule_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def build_program_for(targets: Sequence[str]):
    """Index ``targets`` into a
    :class:`~repro.analysis.callgraph.ProgramContext` (parse errors are
    skipped — the lint pass reports them)."""
    from repro.analysis.callgraph import build_program

    resolved = list(targets) if targets else [default_target()]
    analyzer = Analyzer(rules=())
    contexts = []
    for path in collect_files(resolved):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                contexts.append(analyzer.build_context(handle.read(), path))
        except AnalysisError:
            continue
    return build_program(contexts)


def run_paths(
    targets: Sequence[str],
    rules: Optional[Iterable[str]] = None,
    interprocedural: bool = False,
) -> LintReport:
    """Lint ``targets`` (defaulting to the installed repro tree).

    ``interprocedural=True`` additionally indexes every scanned file
    into one call graph and runs the whole-program rule passes
    (cross-call LOCK001/TXN001/RC001 plus CONC001/CONC002).
    """
    resolved = list(targets) if targets else [default_target()]
    report = LintReport()
    try:
        files = collect_files(resolved)
    except FileNotFoundError as exc:
        report.errors.append(f"no such file or directory: {exc}")
        return report
    analyzer = Analyzer(rules=rules, interprocedural=interprocedural)
    contexts = []
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                contexts.append(analyzer.build_context(handle.read(), path))
        except AnalysisError as exc:
            report.errors.append(str(exc))
            continue
        report.files_scanned += 1
    report.findings.extend(analyzer.run_contexts(contexts))
    report.findings.sort(key=lambda f: f.sort_key)
    return report

"""IO001 — unbatched block I/O on hot paths.

PR 1 introduced scatter-gather device APIs
(:meth:`~repro.storage.block_device.BlockDevice.read_blocks` /
``write_blocks``) and batched compressor entry points (``store_many`` /
``commit_many``): one seek amortised over a run instead of one seek per
block.  The contract since then: **no per-block device or compressor
call inside a loop** — plan the run, then issue one batched request.

The rule flags calls to ``read_block``/``write_block`` (and the
single-item ``compressor.store``/``commit``) lexically inside a loop or
comprehension.  Out of scope:

* ``repro.storage`` — the device itself implements the primitives;
* ``repro.core.compressor`` — the batch implementations' internals.

Sites that *must* stay per-block (the baseline cost model in
``PassthroughFS``, the pointer-chase in ``superblock.read_chain``)
carry inline suppressions with their justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import dataflow
from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, FileContext, register
from repro.analysis.symbols import call_name, call_tail

_DEVICE_TAILS = frozenset({"read_block", "write_block"})
_COMPRESSOR_TAILS = frozenset({"store", "commit"})
_EXEMPT_MODULES = ("repro.storage.", "repro.core.compressor")


def _is_compressor_call(call: ast.Call) -> bool:
    """``*.compressor.store(...)`` / ``*.compressor.commit(...)`` only —
    a bare ``store``/``commit`` tail is too common to claim."""
    if call_tail(call) not in _COMPRESSOR_TAILS:
        return False
    name = call_name(call)
    if name is None:
        return False
    receiver = name.rsplit(".", 1)[0]
    return receiver.endswith("compressor")


@register
class UnbatchedIOChecker(Checker):
    rule_id = "IO001"
    #: Purely lexical rule: one file is the whole story, so the
    #: interprocedural pass adds nothing.
    interprocedural = False
    severity = Severity.WARNING
    description = (
        "per-block read_block/write_block/store/commit inside a loop; "
        "use the batched read_blocks/write_blocks/store_many/commit_many"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro."):
            return
        if ctx.module.startswith(_EXEMPT_MODULES):
            return
        for call in dataflow.iter_calls(ctx.tree):
            tail = call_tail(call)
            if tail in _DEVICE_TAILS:
                # Device primitives are always methods (device.read_block);
                # a bare function sharing the name is not a device call.
                if not isinstance(call.func, ast.Attribute):
                    continue
                batched = "read_blocks" if tail == "read_block" else "write_blocks"
            elif _is_compressor_call(call):
                batched = f"{tail}_many"
            else:
                continue
            func = ctx.symbols.enclosing_function(call)
            loop = ctx.symbols.loop_ancestor(call, stop=func)
            if loop is None:
                continue
            yield self.finding(
                ctx,
                call,
                f"per-block {tail}() inside a loop — batch the run through "
                f"{batched}() (one seek per run, not per block)",
            )

"""TXN001 — metadata mutation outside an active transaction scope.

Every durable structure — blockHashTable records, blockRefCount
counts, inode slot tables — must change inside a transaction so the
journal can publish the whole mutation atomically (one ``insert`` is
one crash-consistent unit, not a refcount bump that survives without
its slot).  A mutation site is considered transaction-aware when any
of the following holds:

* its enclosing function is decorated ``@transactional`` (the decorator
  joins the engine's ambient transaction scope);
* the enclosing function calls ``require_transaction(...)`` (the
  runtime guard for helpers that are only ever invoked from decorated
  entry points);
* the call is lexically inside ``with ...transaction():`` or
  ``with ..._txn_scope():``.

Scope: all of ``repro`` except the structures' own modules
(``repro.core.refcount``, ``repro.core.hashtable`` — they implement the
primitives, they do not decide when to call them), the storage
substrate (the journal itself lives there), and the analyzer.
Suppressions require justification, as for every rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, FileContext, register
from repro.analysis.symbols import call_name, call_tail, dotted_name

#: Calls that mutate durable metadata structures.
_MUTATOR_TAILS = frozenset(
    {
        "incref",
        "decref",
        "insert_slot",
        "remove_slot",
        "replace_slot",
        "append_slot",
        "set_used",
        "add_record",
        "delete_record",
    }
)

#: Context-manager call tails that establish a transaction scope.
_SCOPE_TAILS = frozenset({"transaction", "_txn_scope"})

_EXEMPT_MODULES = (
    "repro.core.refcount",
    "repro.core.hashtable",
    "repro.storage.",
    "repro.analysis.",
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_metadata_mutator(call: ast.Call) -> bool:
    tail = call_tail(call)
    if tail in _MUTATOR_TAILS:
        return True
    if tail == "set":
        # ``refcount.set(...)`` / ``self.refcount.set(...)`` is refcount
        # persistence; a bare ``.set()`` on anything else is not ours.
        name = call_name(call)
        return name is not None and "refcount" in name.split(".")
    return False


def _has_transactional_decorator(func: ast.AST) -> bool:
    if not isinstance(func, _FUNCTION_NODES):
        return False
    for decorator in func.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        if dotted and dotted.rsplit(".", 1)[-1] == "transactional":
            return True
    return False


def _calls_require_transaction(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and call_tail(node) == "require_transaction":
            return True
    return False


def _inside_transaction_with(ctx: FileContext, node: ast.AST) -> bool:
    for ancestor in ctx.symbols.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call) and call_tail(expr) in _SCOPE_TAILS:
                    return True
        if isinstance(ancestor, _FUNCTION_NODES):
            return False
    return False


@register
class TransactionScopeChecker(Checker):
    rule_id = "TXN001"
    severity = Severity.ERROR
    description = (
        "metadata-mutating call outside an active Transaction; decorate "
        "the mutator @transactional, guard it with require_transaction, "
        "or wrap the call in a transaction scope"
    )
    interprocedural = True

    def check_program(self, program) -> Iterator[Finding]:
        """Cross-call-edge pass: calling a function that *declares* its
        transactional obligation (``require_transaction(...)`` in its
        body) from a caller that neither establishes a scope
        (``@transactional``), declares the obligation itself (passing it
        up), nor sits inside a transaction ``with`` is the interprocedural
        version of the mutation the per-file pass flags.  The per-file
        pass accepts the declaring helper — the runtime guard moves the
        obligation to the caller — so only this pass can see the broken
        edge."""
        summaries = program.summaries
        for qualname in sorted(program.functions):
            info = program.functions[qualname]
            if not info.module.startswith("repro."):
                continue
            if info.module.startswith(_EXEMPT_MODULES):
                continue
            caller_summary = summaries.summaries[qualname]
            if caller_summary.establishes_txn or caller_summary.declares_require_txn:
                continue
            for edge, call in program.calls_from.get(qualname, ()):
                callee_summary = summaries.summaries.get(edge.callee)
                if callee_summary is None or not callee_summary.declares_require_txn:
                    continue
                if not edge.callee.startswith("repro."):
                    continue
                if _inside_transaction_with(info.ctx, call):
                    continue
                yield self.program_finding(
                    edge.path,
                    edge.line,
                    f"{qualname}: calls {edge.callee}() which requires an "
                    "active transaction (require_transaction in its body), "
                    "but no scope is established on this path — decorate "
                    f"{qualname.rsplit('.', 1)[-1]} @transactional, wrap "
                    "the call in a transaction scope, or declare the "
                    "obligation with require_transaction",
                )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro."):
            return
        if ctx.module.startswith(_EXEMPT_MODULES):
            return
        for func, qualname in ctx.symbols.functions:
            if _has_transactional_decorator(func):
                continue
            if _calls_require_transaction(func):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if not _is_metadata_mutator(node):
                    continue
                if ctx.symbols.enclosing_function(node) is not func:
                    continue  # belongs to a nested function; judged there
                if _inside_transaction_with(ctx, node):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"{qualname}: {call_name(node) or call_tail(node)}() "
                    "mutates durable metadata outside a transaction scope — "
                    "a crash here tears the journal's atomic unit",
                )

"""Whole-program call graph for reprolint's interprocedural mode.

The per-file checkers see one AST at a time; the rules that guard the
MVCC arc (lock order across helpers, transaction scopes established by
callers, refcount obligations handed over a ``return``) need to follow
*call edges*.  This module builds the program-level index those rules
share:

* a **class index** — every class with its (import-resolved) bases, its
  methods, and the inferred types of its instance attributes;
* a **function index** — every function/method under its fully
  qualified name (``repro.distributed.master.Master.unlink``);
* the **call graph** — edges from each function to the callees reprolint
  can resolve: module-level calls through the import map, ``self.m()``
  dispatch over the known class hierarchy, and attribute chains
  (``self.master.unlink()``, ``self.servers[name].append()``) typed from
  constructor assignments, parameter/field annotations, and callee
  return annotations.

Resolution is deliberately *bounded*: attribute chains deeper than
:data:`MAX_CHAIN_DEPTH`, inheritance walks past :data:`MAX_MRO_DEPTH`,
or more than :data:`MAX_CANDIDATES` candidate classes make the edge
unresolved rather than exploding the graph.  Unresolved calls simply
carry no interprocedural findings — the intraprocedural rules still see
them — so the analysis degrades to PR 2 behaviour instead of guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.analysis.framework import FileContext
from repro.analysis.symbols import dotted_name

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Longest ``a.b.c.d`` attribute chain the resolver will type.
MAX_CHAIN_DEPTH = 6
#: Deepest base-class walk during method resolution.
MAX_MRO_DEPTH = 8
#: Most candidate classes one expression may resolve to.
MAX_CANDIDATES = 8

#: Container heads whose subscript/iteration yields the *last* type arg.
_VALUE_CONTAINERS = frozenset({"dict", "Dict", "Mapping", "MutableMapping", "defaultdict"})
#: Container heads whose subscript/iteration yields the *first* type arg.
_ELEM_CONTAINERS = frozenset(
    {"list", "List", "set", "Set", "frozenset", "tuple", "Tuple", "Sequence", "Iterable", "Iterator"}
)
_UNION_HEADS = frozenset({"Optional", "Union"})


@dataclass
class ClassInfo:
    """One class as the resolver sees it."""

    qualname: str
    module: str
    node: ast.ClassDef
    #: resolved base references (qualified where possible).
    bases: list[str] = field(default_factory=list)
    #: method name -> function qualname.
    methods: dict[str, str] = field(default_factory=dict)
    #: attribute -> candidate class qualnames (the object itself).
    attr_types: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: attribute -> candidate element/value class qualnames (``x[k]``).
    attr_elem_types: dict[str, tuple[str, ...]] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    """One function/method under its fully qualified name."""

    qualname: str
    module: str
    node: ast.AST
    ctx: FileContext
    #: qualname of the defining class, if a method.
    class_qualname: Optional[str] = None
    #: candidate classes of the return value (from the annotation).
    return_types: tuple[str, ...] = ()
    #: element/value classes when the return is a typed container.
    return_elem_types: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass(frozen=True)
class CallEdge:
    """One resolved call: ``caller`` invokes ``callee`` at ``line``."""

    caller: str
    callee: str
    path: str
    line: int


class ProgramContext:
    """Everything the interprocedural checkers can know about the tree."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        #: module name -> file context.
        self.contexts: dict[str, FileContext] = {ctx.module: ctx for ctx in contexts}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: caller qualname -> outgoing edges (with the call node).
        self.calls_from: dict[str, list[tuple[CallEdge, ast.Call]]] = {}
        #: callee qualname -> incoming edges (with the call node).
        self.callers_of: dict[str, list[tuple[CallEdge, ast.Call]]] = {}
        self._local_envs: dict[str, dict[str, tuple[str, ...]]] = {}
        self._summaries = None
        self._index()
        self._link()

    # -- construction -------------------------------------------------------
    def _index(self) -> None:
        for ctx in self.contexts.values():
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    self._index_class(ctx, node)
            for func, qualname in ctx.symbols.functions:
                info = FunctionInfo(
                    qualname=f"{ctx.module}.{qualname}",
                    module=ctx.module,
                    node=func,
                    ctx=ctx,
                )
                owner = ctx.symbols.enclosing_class(func)
                if owner is not None:
                    info.class_qualname = f"{ctx.module}.{owner.name}"
                returns = getattr(func, "returns", None)
                if returns is not None:
                    info.return_types, info.return_elem_types = self._annotation_types(
                        ctx, returns
                    )
                self.functions[info.qualname] = info
        # Second pass: attribute types may reference classes indexed later.
        for ctx in self.contexts.values():
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    self._infer_attr_types(ctx, node)

    def _index_class(self, ctx: FileContext, node: ast.ClassDef) -> None:
        qualname = f"{ctx.module}.{node.name}"
        info = ClassInfo(qualname=qualname, module=ctx.module, node=node)
        for base in node.bases:
            name = dotted_name(base)
            if name is None:
                continue
            resolved = self.resolve_class_ref(ctx, name)
            info.bases.append(resolved if resolved else ctx.symbols.resolve(name))
        for child in node.body:
            if isinstance(child, _FUNCTION_NODES):
                info.methods[child.name] = f"{qualname}.{child.name}"
            elif isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
                # Dataclass-style field annotation.
                direct, elem = self._annotation_types(ctx, child.annotation)
                if direct:
                    info.attr_types[child.target.id] = direct
                if elem:
                    info.attr_elem_types[child.target.id] = elem
        self.classes[qualname] = info

    def _infer_attr_types(self, ctx: FileContext, node: ast.ClassDef) -> None:
        """``self.x = ...`` assignments bind attribute types.

        Three evidence sources, in every method of the class (the
        constructor dominates in practice): a direct constructor call
        (``self.master = Master(...)``), a parameter whose annotation
        names a class (``self.servers = servers`` with
        ``servers: dict[str, ChunkServer]``), and an annotated
        assignment (``self.fs: Union[CompressFS, PassthroughFS]``).
        """
        info = self.classes[f"{ctx.module}.{node.name}"]
        for method in node.body:
            if not isinstance(method, _FUNCTION_NODES):
                continue
            params = self._param_annotations(ctx, method)
            for stmt in ast.walk(method):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value, annotation = stmt.target, stmt.value, stmt.annotation
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                direct: tuple[str, ...] = ()
                elem: tuple[str, ...] = ()
                if annotation is not None:
                    direct, elem = self._annotation_types(ctx, annotation)
                if not direct and not elem and isinstance(value, ast.Call):
                    name = dotted_name(value.func)
                    if name is not None:
                        resolved = self.resolve_class_ref(ctx, name)
                        if resolved:
                            direct = (resolved,)
                if not direct and not elem and isinstance(value, ast.Name):
                    direct, elem = params.get(value.id, ((), ()))
                if direct:
                    merged = set(info.attr_types.get(attr, ())) | set(direct)
                    info.attr_types[attr] = tuple(sorted(merged))[:MAX_CANDIDATES]
                if elem:
                    merged = set(info.attr_elem_types.get(attr, ())) | set(elem)
                    info.attr_elem_types[attr] = tuple(sorted(merged))[:MAX_CANDIDATES]

    def _param_annotations(
        self, ctx: FileContext, func: ast.AST
    ) -> dict[str, tuple[tuple[str, ...], tuple[str, ...]]]:
        out: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {}
        args = getattr(func, "args", None)
        if args is None:
            return out
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.annotation is not None:
                out[arg.arg] = self._annotation_types(ctx, arg.annotation)
        return out

    # -- type vocabulary ----------------------------------------------------
    def resolve_class_ref(self, ctx: FileContext, dotted: str) -> Optional[str]:
        """A (possibly imported) class reference -> indexed qualname."""
        resolved = ctx.symbols.resolve(dotted)
        if resolved in self.classes:
            return resolved
        local = f"{ctx.module}.{dotted}"
        if local in self.classes:
            return local
        return None

    def _annotation_types(
        self, ctx: FileContext, ann: ast.expr
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """(direct classes, element/value classes) of one annotation."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return (), ()
        if isinstance(ann, (ast.Name, ast.Attribute)):
            name = dotted_name(ann)
            if name is None:
                return (), ()
            resolved = self.resolve_class_ref(ctx, name)
            return ((resolved,), ()) if resolved else ((), ())
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            left = self._annotation_types(ctx, ann.left)
            right = self._annotation_types(ctx, ann.right)
            return _merge_types(left, right)
        if isinstance(ann, ast.Subscript):
            head = dotted_name(ann.value)
            head_tail = head.rsplit(".", 1)[-1] if head else ""
            args = (
                list(ann.slice.elts)
                if isinstance(ann.slice, ast.Tuple)
                else [ann.slice]
            )
            if head_tail in _UNION_HEADS:
                combined: tuple[tuple[str, ...], tuple[str, ...]] = ((), ())
                for arg in args:
                    combined = _merge_types(combined, self._annotation_types(ctx, arg))
                return combined
            if head_tail in _VALUE_CONTAINERS and args:
                value_direct, __ = self._annotation_types(ctx, args[-1])
                return (), value_direct
            if head_tail in _ELEM_CONTAINERS and args:
                elem_direct, __ = self._annotation_types(ctx, args[0])
                return (), elem_direct
        return (), ()

    # -- expression typing --------------------------------------------------
    def local_env(self, info: FunctionInfo) -> dict[str, tuple[str, ...]]:
        """name -> candidate classes, for locals of one function.

        A single forward pass covering the idioms the tree actually
        uses: annotated parameters, ``x = ClassName(...)``,
        ``x = self.attr`` chains, ``x = call()`` with a return
        annotation, ``x = container[k]``, and ``for x in container``.
        """
        cached = self._local_envs.get(info.qualname)
        if cached is not None:
            return cached
        env: dict[str, tuple[str, ...]] = {}
        params = self._param_annotations(info.ctx, info.node)
        for name, (direct, __) in params.items():
            if direct:
                env[name] = direct
        for stmt in ast.walk(info.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    direct, __ = self.expr_types(info, env, stmt.value)
                    if direct:
                        env[target.id] = direct
            elif isinstance(stmt, (ast.For, ast.AsyncFor)) and isinstance(
                stmt.target, ast.Name
            ):
                __, elem = self.expr_types(info, env, stmt.iter)
                if elem:
                    env[stmt.target.id] = elem
        self._local_envs[info.qualname] = env
        return env

    def expr_types(
        self,
        info: FunctionInfo,
        env: dict[str, tuple[str, ...]],
        expr: ast.expr,
        depth: int = 0,
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """(direct classes, element classes) of one expression."""
        if depth > MAX_CHAIN_DEPTH:
            return (), ()
        if isinstance(expr, ast.Name):
            if expr.id == "self" and info.class_qualname:
                return (info.class_qualname,), ()
            return env.get(expr.id, ()), ()
        if isinstance(expr, ast.Attribute):
            base_direct, __ = self.expr_types(info, env, expr.value, depth + 1)
            return self._attr_of(base_direct, expr.attr)
        if isinstance(expr, ast.Subscript):
            __, base_elem = self.expr_types(info, env, expr.value, depth + 1)
            return base_elem, ()
        if isinstance(expr, ast.Call):
            # ``d.values()`` / ``d.items()``-free iteration shortcut first.
            if isinstance(expr.func, ast.Attribute) and expr.func.attr == "values":
                __, elem = self.expr_types(info, env, expr.func.value, depth + 1)
                return (), elem
            callees = self.resolve_call(info, expr, env=env)
            direct: set[str] = set()
            elem: set[str] = set()
            for callee in callees:
                target = self.functions.get(callee)
                if target is not None:
                    direct.update(target.return_types)
                    elem.update(target.return_elem_types)
                if callee.endswith(".__init__"):
                    direct.add(callee.rsplit(".", 1)[0])
            name = dotted_name(expr.func)
            if name is not None:
                constructed = self.resolve_class_ref(info.ctx, name)
                if constructed:
                    direct.add(constructed)
            return tuple(sorted(direct))[:MAX_CANDIDATES], tuple(sorted(elem))[
                :MAX_CANDIDATES
            ]
        return (), ()

    def _attr_of(
        self, classes: Sequence[str], attr: str
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        direct: set[str] = set()
        elem: set[str] = set()
        for qualname in classes:
            for owner in self._mro(qualname):
                cls = self.classes.get(owner)
                if cls is None:
                    continue
                direct.update(cls.attr_types.get(attr, ()))
                elem.update(cls.attr_elem_types.get(attr, ()))
        return tuple(sorted(direct))[:MAX_CANDIDATES], tuple(sorted(elem))[
            :MAX_CANDIDATES
        ]

    def _mro(self, qualname: str) -> Iterator[str]:
        """Breadth-first base-class walk, bounded and cycle-safe."""
        seen: set[str] = set()
        queue = [qualname]
        depth = 0
        while queue and depth <= MAX_MRO_DEPTH:
            next_queue: list[str] = []
            for name in queue:
                if name in seen:
                    continue
                seen.add(name)
                yield name
                cls = self.classes.get(name)
                if cls is not None:
                    next_queue.extend(cls.bases)
            queue = next_queue
            depth += 1

    def find_method(self, class_qualname: str, method: str) -> Optional[str]:
        for owner in self._mro(class_qualname):
            cls = self.classes.get(owner)
            if cls is not None and method in cls.methods:
                return cls.methods[method]
        return None

    # -- call resolution ----------------------------------------------------
    def resolve_call(
        self,
        info: FunctionInfo,
        call: ast.Call,
        env: Optional[dict[str, tuple[str, ...]]] = None,
    ) -> list[str]:
        """Candidate callee qualnames of one call, possibly empty."""
        name = dotted_name(call.func)
        if name is None:
            # Not a plain dotted chain (``self.servers[k].write(...)``,
            # ``make().close()``): still a method call when the outermost
            # node is an Attribute — type the receiver expression below.
            if isinstance(call.func, ast.Attribute):
                return self._resolve_typed_method(info, call, env)
            return []
        ctx = info.ctx
        parts = name.split(".")
        if len(parts) > MAX_CHAIN_DEPTH:
            return []
        # Plain name: module-level function, imported function, or class.
        if len(parts) == 1:
            local = f"{ctx.module}.{name}"
            if local in self.functions:
                return [local]
            resolved = ctx.symbols.resolve(name)
            if resolved in self.functions:
                return [resolved]
            constructed = self.resolve_class_ref(ctx, name)
            if constructed:
                init = self.find_method(constructed, "__init__")
                return [init] if init else []
            return []
        # Imported dotted reference (``module.func`` / ``pkg.Class``).
        resolved = ctx.symbols.resolve(name)
        if resolved in self.functions:
            return [resolved]
        constructed = self.resolve_class_ref(ctx, ".".join(parts))
        if constructed:
            init = self.find_method(constructed, "__init__")
            return [init] if init else []
        # Method on a typed expression: type the receiver, look up the tail.
        return self._resolve_typed_method(info, call, env)

    def _resolve_typed_method(
        self,
        info: FunctionInfo,
        call: ast.Call,
        env: Optional[dict[str, tuple[str, ...]]] = None,
    ) -> list[str]:
        if env is None:
            env = self.local_env(info)
        receiver = call.func
        assert isinstance(receiver, ast.Attribute)
        base_direct, __ = self.expr_types(info, env, receiver.value)
        out: list[str] = []
        for cls in base_direct:
            found = self.find_method(cls, receiver.attr)
            if found is not None and found not in out:
                out.append(found)
        return out[:MAX_CANDIDATES]

    def _link(self) -> None:
        for info in self.functions.values():
            edges: list[tuple[CallEdge, ast.Call]] = []
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                if info.ctx.symbols.enclosing_function(node) is not info.node:
                    continue  # belongs to a nested function
                for callee in self.resolve_call(info, node):
                    edge = CallEdge(
                        caller=info.qualname,
                        callee=callee,
                        path=info.ctx.path,
                        line=node.lineno,
                    )
                    edges.append((edge, node))
                    self.callers_of.setdefault(callee, []).append((edge, node))
            if edges:
                self.calls_from[info.qualname] = edges

    # -- shared facts -------------------------------------------------------
    @property
    def summaries(self):
        """The lazily built :class:`~repro.analysis.summaries.SummaryIndex`."""
        if self._summaries is None:
            from repro.analysis.summaries import SummaryIndex

            self._summaries = SummaryIndex(self)
        return self._summaries

    def context_for_path(self, path: str) -> Optional[FileContext]:
        for ctx in self.contexts.values():
            if ctx.path == path:
                return ctx
        return None


def _merge_types(
    a: tuple[tuple[str, ...], tuple[str, ...]],
    b: tuple[tuple[str, ...], tuple[str, ...]],
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    direct = tuple(sorted(set(a[0]) | set(b[0])))[:MAX_CANDIDATES]
    elem = tuple(sorted(set(a[1]) | set(b[1])))[:MAX_CANDIDATES]
    return direct, elem


def build_program(contexts: Sequence[FileContext]) -> ProgramContext:
    """Index ``contexts`` into one :class:`ProgramContext`."""
    return ProgramContext(contexts)


def _short(name: str) -> str:
    return name[len("repro."):] if name.startswith("repro.") else name


def program_dot(program: ProgramContext) -> str:
    """Byte-stable Graphviz rendering: call graph + lock-order graph.

    One ``digraph`` with two clusters so a single ``dot -Tsvg`` renders
    both; nodes and edges are emitted sorted, so identical trees produce
    identical bytes (the DESIGN.md-linkable artifact CI can diff).
    """
    edges = sorted(
        {(_short(edge.caller), _short(edge.callee)) for per_caller in
         program.calls_from.values() for edge, __ in per_caller}
    )
    nodes = sorted({name for pair in edges for name in pair})
    lines = [
        "digraph reprolint {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=10, fontname="Helvetica"];',
        "  subgraph cluster_calls {",
        '    label="call graph";',
    ]
    for node in nodes:
        lines.append(f'    "{node}";')
    for caller, callee in edges:
        lines.append(f'    "{caller}" -> "{callee}";')
    lines.append("  }")
    lines.append("  subgraph cluster_locks {")
    lines.append('    label="lock order";')
    lock_edges = program.summaries.lock_order_edges()
    lock_nodes = sorted(
        {_short(name) for edge in lock_edges for name in (edge.outer, edge.inner)}
    )
    for node in lock_nodes:
        lines.append(f'    "{node}" [shape=ellipse];')
    for edge in sorted(lock_edges, key=lambda e: (e.outer, e.inner)):
        chain = " \\n ".join(_short(hop) for hop in edge.chain)
        lines.append(
            f'    "{_short(edge.outer)}" -> "{_short(edge.inner)}" '
            f'[label="{chain}", fontsize=8];'
        )
    lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"

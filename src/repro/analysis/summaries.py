"""Bounded-depth function summaries over the call graph.

Each function gets one :class:`FunctionSummary` describing the facts the
interprocedural rules compose:

* **locks** — every ``with <lock>:`` acquisition, under a *canonical*
  lock identity (``repro.distributed.master.Master.lock``) derived by
  typing the receiver chain, plus its tier rank from the declared
  master → chunkserver → client order;
* **transactions** — whether the function establishes a scope
  (``@transactional``) or declares the obligation with a
  ``require_transaction(...)`` guard;
* **refcounts** — whether the function returns a value it incref'd
  (a *counted return*: the caller inherits the discharge obligation).

:class:`SummaryIndex` memoizes the transitive closures the rules need —
``transitive_locks`` (what a call may acquire downstream, with the
witness call chain) and the global lock-order graph — all bounded by
:data:`MAX_SUMMARY_DEPTH` so recursion and deep towers degrade to
"unknown" instead of diverging.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.analysis.symbols import call_tail, dotted_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.callgraph import FunctionInfo, ProgramContext

#: Call-chain depth beyond which summaries stop composing.
MAX_SUMMARY_DEPTH = 8

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_WITH_NODES = (ast.With, ast.AsyncWith)


def lock_rank(canonical: str) -> Optional[int]:
    """Tier of a canonical lock name under the declared cluster order."""
    from repro.analysis.rules_locks import LOCK_TIERS

    lowered = canonical.lower()
    for keyword, rank in LOCK_TIERS:
        if keyword in lowered:
            return rank
    return None


@dataclass(frozen=True)
class LockSite:
    """One lexical lock acquisition."""

    canonical: str
    rank: Optional[int]
    path: str
    line: int


@dataclass(frozen=True)
class LockEdge:
    """Observed (statically) ``outer`` held while ``inner`` is acquired."""

    outer: str
    inner: str
    path: str
    line: int
    #: function qualnames witnessing the edge, outermost caller first.
    chain: tuple[str, ...]


@dataclass
class FunctionSummary:
    qualname: str
    #: direct ``with`` acquisitions in this function's own body.
    locks: list[LockSite] = field(default_factory=list)
    #: decorated ``@transactional`` (joins/establishes the ambient scope).
    establishes_txn: bool = False
    #: calls ``require_transaction(...)`` — obligation passed to callers.
    declares_require_txn: bool = False
    #: returns a value the function itself incref'd.
    counted_return: bool = False


class SummaryIndex:
    """Per-function summaries plus their memoized transitive closures."""

    def __init__(self, program: "ProgramContext") -> None:
        self.program = program
        self.summaries: dict[str, FunctionSummary] = {}
        self._transitive: dict[str, dict[str, tuple[str, ...]]] = {}
        self._counted: dict[str, bool] = {}
        for info in program.functions.values():
            self.summaries[info.qualname] = self._summarize(info)

    # -- direct facts -------------------------------------------------------
    def _summarize(self, info: "FunctionInfo") -> FunctionSummary:
        summary = FunctionSummary(qualname=info.qualname)
        summary.establishes_txn = _has_transactional_decorator(info.node)
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                if info.ctx.symbols.enclosing_function(node) is not info.node:
                    continue
                if call_tail(node) == "require_transaction":
                    summary.declares_require_txn = True
            elif isinstance(node, _WITH_NODES):
                if info.ctx.symbols.enclosing_function(node) is not info.node:
                    continue
                for item in node.items:
                    canonical = self.canonical_lock(info, item.context_expr)
                    if canonical is not None:
                        summary.locks.append(
                            LockSite(
                                canonical=canonical,
                                rank=lock_rank(canonical),
                                path=info.ctx.path,
                                line=item.context_expr.lineno,
                            )
                        )
        summary.counted_return = self._direct_counted_return(info)
        return summary

    def canonical_lock(self, info: "FunctionInfo", expr: ast.expr) -> Optional[str]:
        """Canonical identity of a lock-like ``with`` item, or None.

        ``self.master.lock`` canonicalizes through the typed receiver to
        ``repro.distributed.master.Master.lock`` so the same lock object
        gets one name no matter which module acquires it.  Untypeable
        receivers fall back to a module-local spelling, which still
        dedupes acquisitions within one file.
        """
        source = ast.unparse(expr)
        if "lock" not in source.lower():
            return None
        if isinstance(expr, ast.Attribute):
            env = self.program.local_env(info)
            direct, __ = self.program.expr_types(info, env, expr.value)
            if direct:
                return f"{sorted(direct)[0]}.{expr.attr}"
        return f"{info.module}:{source}"

    def _direct_counted_return(self, info: "FunctionInfo") -> bool:
        counted: set[str] = set()
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Call)
                and call_tail(node) == "incref"
                and len(node.args) == 1
                and info.ctx.symbols.enclosing_function(node) is info.node
            ):
                counted.add(ast.unparse(node.args[0]))
        if not counted:
            return False
        from repro.analysis import dataflow

        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Return)
                and node.value is not None
                and info.ctx.symbols.enclosing_function(node) is info.node
            ):
                if any(dataflow.mentions(node.value, src) for src in counted):
                    return True
        return False

    # -- transitive closures ------------------------------------------------
    def transitive_locks(
        self, qualname: str, depth: int = 0
    ) -> dict[str, tuple[str, ...]]:
        """canonical lock -> witness call chain (ending at the acquirer).

        The chain starts at ``qualname`` itself; direct acquisitions get
        the one-element chain.  Recursion and towers deeper than
        :data:`MAX_SUMMARY_DEPTH` contribute nothing (bounded summary).
        """
        if depth > MAX_SUMMARY_DEPTH:
            return {}
        cached = self._transitive.get(qualname)
        if cached is not None:
            return cached
        self._transitive[qualname] = {}  # in-progress: recursion sees nothing
        acquired: dict[str, tuple[str, ...]] = {}
        summary = self.summaries.get(qualname)
        if summary is not None:
            for site in summary.locks:
                acquired.setdefault(site.canonical, (qualname,))
        for edge, __ in self.program.calls_from.get(qualname, ()):
            for canonical, chain in self.transitive_locks(
                edge.callee, depth + 1
            ).items():
                acquired.setdefault(canonical, (qualname,) + chain)
        self._transitive[qualname] = acquired
        return acquired

    def counted_return(self, qualname: str, depth: int = 0) -> bool:
        """Whether calling ``qualname`` hands back a counted reference.

        Direct (incref-then-return) or forwarded: ``return self._grab(x)``
        where ``_grab`` is itself a counted return.
        """
        if depth > MAX_SUMMARY_DEPTH:
            return False
        cached = self._counted.get(qualname)
        if cached is not None:
            return cached
        self._counted[qualname] = False  # in-progress guard
        summary = self.summaries.get(qualname)
        result = bool(summary and summary.counted_return)
        info = self.program.functions.get(qualname)
        if not result and info is not None:
            for node in ast.walk(info.node):
                if (
                    isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Call)
                    and info.ctx.symbols.enclosing_function(node) is info.node
                ):
                    for callee in self.program.resolve_call(info, node.value):
                        if self.counted_return(callee, depth + 1):
                            result = True
                            break
                if result:
                    break
        self._counted[qualname] = result
        return result

    def held_locks_at(
        self, info: "FunctionInfo", node: ast.AST
    ) -> list[LockSite]:
        """Locks lexically held at ``node``, outermost first."""
        held: list[LockSite] = []
        for ancestor in info.ctx.symbols.ancestors(node):
            if ancestor is info.node:
                break
            if isinstance(ancestor, _WITH_NODES):
                sites: list[LockSite] = []
                for item in ancestor.items:
                    canonical = self.canonical_lock(info, item.context_expr)
                    if canonical is not None:
                        sites.append(
                            LockSite(
                                canonical=canonical,
                                rank=lock_rank(canonical),
                                path=info.ctx.path,
                                line=item.context_expr.lineno,
                            )
                        )
                held = sites + held
        return held

    def lock_order_edges(self) -> list[LockEdge]:
        """The whole-program lock acquisition-order graph.

        For every ``with L:`` in every function, anything acquired under
        it adds an edge ``L -> M``: lexically nested ``with M:`` blocks,
        and the transitive acquisitions of every call made while ``L``
        is held.  Each (outer, inner) pair keeps its first witness.
        """
        edges: dict[tuple[str, str], LockEdge] = {}

        def add(outer: str, inner: str, path: str, line: int, chain: tuple[str, ...]) -> None:
            if outer == inner:
                return
            edges.setdefault(
                (outer, inner),
                LockEdge(outer=outer, inner=inner, path=path, line=line, chain=chain),
            )

        for info in self.program.functions.values():
            for node in ast.walk(info.node):
                if not isinstance(node, _WITH_NODES):
                    continue
                if info.ctx.symbols.enclosing_function(node) is not info.node:
                    continue
                outer_sites = [
                    canonical
                    for item in node.items
                    if (canonical := self.canonical_lock(info, item.context_expr))
                    is not None
                ]
                if not outer_sites:
                    continue
                for body_stmt in node.body:
                    for child in ast.walk(body_stmt):
                        if info.ctx.symbols.enclosing_function(child) is not info.node:
                            continue
                        if isinstance(child, _WITH_NODES):
                            for item in child.items:
                                inner = self.canonical_lock(info, item.context_expr)
                                if inner is None:
                                    continue
                                for outer in outer_sites:
                                    add(
                                        outer,
                                        inner,
                                        info.ctx.path,
                                        item.context_expr.lineno,
                                        (info.qualname,),
                                    )
                        elif isinstance(child, ast.Call):
                            for callee in self.program.resolve_call(info, child):
                                for inner, chain in self.transitive_locks(
                                    callee
                                ).items():
                                    for outer in outer_sites:
                                        add(
                                            outer,
                                            inner,
                                            info.ctx.path,
                                            child.lineno,
                                            (info.qualname,) + chain,
                                        )
        return sorted(edges.values(), key=lambda e: (e.outer, e.inner))


def _has_transactional_decorator(func: ast.AST) -> bool:
    if not isinstance(func, _FUNCTION_NODES):
        return False
    for decorator in func.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        if dotted and dotted.rsplit(".", 1)[-1] == "transactional":
            return True
    return False


def find_lock_cycles(edges: list[LockEdge]) -> list[tuple[tuple[str, ...], list[LockEdge]]]:
    """Elementary cycles in the lock-order graph.

    Returns ``(cycle-node-tuple, edges-forming-it)`` pairs, each cycle
    reported once (rotated so its lexicographically smallest lock leads).
    """
    adjacency: dict[str, list[LockEdge]] = {}
    for edge in edges:
        adjacency.setdefault(edge.outer, []).append(edge)
    by_pair = {(edge.outer, edge.inner): edge for edge in edges}
    cycles: dict[tuple[str, ...], list[LockEdge]] = {}

    def rotate(nodes: tuple[str, ...]) -> tuple[str, ...]:
        pivot = nodes.index(min(nodes))
        return nodes[pivot:] + nodes[:pivot]

    def dfs(start: str, current: str, path: list[str]) -> None:
        for edge in adjacency.get(current, ()):
            nxt = edge.inner
            if nxt == start:
                key = rotate(tuple(path))
                if key not in cycles:
                    ring = list(path) + [start]
                    cycles[key] = [
                        by_pair[(ring[i], ring[i + 1])] for i in range(len(path))
                    ]
            elif nxt not in path and len(path) <= MAX_SUMMARY_DEPTH:
                dfs(start, nxt, path + [nxt])

    for node in sorted(adjacency):
        dfs(node, node, [node])
    return sorted(cycles.items(), key=lambda item: item[0])

"""LOCK001 — cluster lock ordering.

The lock hierarchy follows one declared acquisition order to stay
deadlock-free, from the cluster tiers down to the engine-level MVCC
tier::

    master (rank 0)  →  chunkserver (rank 1)  →  client (rank 2)
    →  inode (rank 3)

Any nested ``with <lock>:`` acquisition in ``repro.distributed`` whose
inner lock ranks **at or below** the outer lock inverts (or re-enters)
the order and is flagged.  Lock expressions are classified by name:
anything containing ``lock`` is a lock; its tier comes from the first
tier keyword (``master`` / ``chunk``/``server`` / ``client`` /
``inode``) appearing in the dotted expression.  Unranked locks nest
freely under ranked ones — but re-acquiring the *same* expression is
always a self-deadlock for a non-reentrant ``threading.Lock`` and is
flagged too.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, FileContext, register

#: Declared master → chunkserver → client → inode order.  The ``inode``
#: tier is the per-inode MVCC write lock taken during session commit —
#: always innermost, so engine-level commits can run under any cluster
#: lock but never the reverse.
LOCK_TIERS = (
    # "serving" must come before "server": matching is first-keyword-
    # wins and every serving-layer lock name contains "serv".  The
    # serving tier sits BELOW the cluster tiers (rank -1): the request
    # dispatch lock is held around engine calls that take inode locks.
    ("serving", -1),
    ("master", 0),
    ("chunk", 1),
    ("server", 1),
    ("client", 2),
    ("inode", 3),
)


def _lock_expressions(node: ast.With) -> list[tuple[str, ast.expr]]:
    """Lock-like context expressions of one ``with`` statement."""
    found = []
    for item in node.items:
        source = ast.unparse(item.context_expr)
        if "lock" in source.lower():
            found.append((source, item.context_expr))
    return found


def _rank(source: str) -> Optional[int]:
    lowered = source.lower()
    for keyword, rank in LOCK_TIERS:
        if keyword in lowered:
            return rank
    return None


@register
class LockOrderChecker(Checker):
    rule_id = "LOCK001"
    severity = Severity.ERROR
    description = (
        "nested lock acquisitions in repro.distributed must follow the "
        "declared master -> chunkserver -> client -> inode order"
    )
    interprocedural = True

    def check_program(self, program) -> Iterator[Finding]:
        """Cross-call-edge pass: a lock held lexically at a call site is
        ordered against everything the callee may acquire downstream
        (bounded transitive summary), which the per-file pass cannot
        see.  Findings carry the witness call chain."""
        summaries = program.summaries
        seen: set[tuple[str, int, str, str]] = set()
        for qualname in sorted(program.functions):
            info = program.functions[qualname]
            if not info.module.startswith("repro."):
                continue
            for edge, call in program.calls_from.get(qualname, ()):
                held = summaries.held_locks_at(info, call)
                if not held:
                    continue
                transitive = summaries.transitive_locks(edge.callee)
                for inner_canonical in sorted(transitive):
                    chain = transitive[inner_canonical]
                    via = " -> ".join((qualname,) + chain)
                    for outer in held:
                        key = (edge.path, edge.line, outer.canonical, inner_canonical)
                        if key in seen:
                            continue
                        if inner_canonical == outer.canonical:
                            seen.add(key)
                            yield self.program_finding(
                                edge.path,
                                edge.line,
                                f"re-acquisition of {outer.canonical!r} "
                                f"through call chain {via} — self-deadlock "
                                "for a non-reentrant Lock",
                            )
                            continue
                        inner_rank = _rank(inner_canonical)
                        if inner_rank is None or outer.rank is None:
                            continue
                        if inner_rank <= outer.rank:
                            seen.add(key)
                            yield self.program_finding(
                                edge.path,
                                edge.line,
                                f"lock order inversion across calls: "
                                f"{inner_canonical!r} (rank {inner_rank}) "
                                f"acquired via {via} while holding "
                                f"{outer.canonical!r} (rank {outer.rank}); "
                                "declared order is master -> chunkserver -> "
                                "client -> inode",
                            )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro.distributed"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.With):
                yield from self._check_with(ctx, node)

    def _check_with(self, ctx: FileContext, node: ast.With) -> Iterator[Finding]:
        inner_locks = _lock_expressions(node)
        if not inner_locks:
            return
        held = self._held_locks(ctx, node)
        # Multiple items in one ``with a, b:`` acquire left to right.
        for index, (source, expr) in enumerate(inner_locks):
            for outer_source in held + [s for s, __ in inner_locks[:index]]:
                if outer_source == source:
                    yield self.finding(
                        ctx,
                        expr,
                        f"re-acquisition of {source!r} while already held — "
                        "self-deadlock for a non-reentrant Lock",
                    )
                    continue
                outer_rank, inner_rank = _rank(outer_source), _rank(source)
                if outer_rank is None or inner_rank is None:
                    continue
                if inner_rank <= outer_rank:
                    yield self.finding(
                        ctx,
                        expr,
                        f"lock order inversion: {source!r} (rank {inner_rank}) "
                        f"acquired while holding {outer_source!r} (rank "
                        f"{outer_rank}); declared order is master -> "
                        "chunkserver -> client -> inode",
                    )

    def _held_locks(self, ctx: FileContext, node: ast.With) -> list[str]:
        """Lock expressions held by enclosing ``with`` statements, outermost
        first (within the enclosing function)."""
        func = ctx.symbols.enclosing_function(node)
        held: list[str] = []
        for ancestor in ctx.symbols.ancestors(node):
            if ancestor is func:
                break
            if isinstance(ancestor, ast.With):
                held = [source for source, __ in _lock_expressions(ancestor)] + held
        return held

"""CONC001 / CONC002 — concurrency-readiness rules for the MVCC arc.

Both rules are **program-only**: they need the whole-program call graph
(:mod:`repro.analysis.callgraph`) and the function summaries
(:mod:`repro.analysis.summaries`), so they run under
``repro lint --interprocedural`` (or when selected explicitly).

CONC001 — shared mutable state mutated outside a lock/transaction scope
-----------------------------------------------------------------------

Two shapes of shared state, in the concurrency-critical packages
(``repro.distributed`` / ``repro.storage`` / ``repro.core``):

* **module-level mutables** (dict/list/set literals, ``global`` writes)
  mutated from inside a function;
* **instance attributes** of the distributed-tier classes (master,
  chunk servers, cluster clients) mutated after construction.

A mutation site is accepted when it provably runs under a scope:
lexically inside ``with <lock>:`` or a transaction ``with``; in a
``@transactional`` method; in a method that declares its caller's
obligation via ``lock.require_held()`` or ``require_transaction(...)``;
or — the escape analysis — in a method reachable *only* from
``__init__`` (constructor-local initialization never escapes to other
sessions) or whose every call site is itself scoped (bounded walk over
the call graph; unknown callers mean *not* scoped).

CONC002 — lock acquisition-order cycles
---------------------------------------

The interprocedural summaries induce a global lock-order graph: an edge
``L -> M`` whenever ``M`` can be acquired (directly or through calls)
while ``L`` is held.  Any cycle in that graph is a potential deadlock
under interleaving; each is reported once with the witness call chains
forming it.  The runtime twin is
:class:`repro.analysis.sanitizer.LockOrderSanitizer`, which observes the
same edges dynamically.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, FileContext, register
from repro.analysis.symbols import call_tail, dotted_name

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_WITH_NODES = (ast.With, ast.AsyncWith)

#: Packages whose state the MVCC arc will share across sessions.
_SCOPE_PREFIXES = ("repro.distributed", "repro.storage", "repro.core", "repro.serving")

#: Method tails that mutate their receiver in place.
_MUTATOR_METHOD_TAILS = frozenset(
    {
        "append",
        "add",
        "update",
        "pop",
        "popitem",
        "insert",
        "extend",
        "remove",
        "discard",
        "clear",
        "setdefault",
    }
)

#: Transaction-scope context-manager tails (mirrors rules_txn).
_TXN_SCOPE_TAILS = frozenset({"transaction", "_txn_scope"})

#: Obligation-declaring guard tails recognized on a method body.
_GUARD_TAILS = frozenset({"require_held", "require_transaction"})

_MAX_WALK_DEPTH = 8

#: Constructor-like callables whose result is a fresh mutable.
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque", "bytearray"}
)


def _is_mutable_literal(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        tail = call_tail(expr)
        return tail in _MUTABLE_FACTORIES
    return False


def _self_attr(expr: ast.expr) -> Optional[str]:
    """``self.X`` -> ``X`` (only one level deep — the published field)."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _receiver_self_attr(expr: ast.expr) -> Optional[str]:
    """The ``self.X`` root of an attribute/subscript chain, if any."""
    current = expr
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        attr = _self_attr(current)
        if attr is not None:
            return attr
        current = current.value
    return None


def _under_scope_with(ctx: FileContext, node: ast.AST, func: ast.AST) -> bool:
    """Lexically inside ``with <lock>:`` or a transaction ``with``."""
    for ancestor in ctx.symbols.ancestors(node):
        if ancestor is func:
            return False
        if isinstance(ancestor, _WITH_NODES):
            for item in ancestor.items:
                expr = item.context_expr
                if "lock" in ast.unparse(expr).lower():
                    return True
                if isinstance(expr, ast.Call) and call_tail(expr) in _TXN_SCOPE_TAILS:
                    return True
    return False


def _has_decorator(func: ast.AST, tail: str) -> bool:
    if not isinstance(func, _FUNCTION_NODES):
        return False
    for decorator in func.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        if dotted and dotted.rsplit(".", 1)[-1] == tail:
            return True
    return False


def _declares_guard(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and call_tail(node) in _GUARD_TAILS:
            return True
    return False


@register
class SharedStateChecker(Checker):
    rule_id = "CONC001"
    severity = Severity.ERROR
    description = (
        "shared mutable state (module globals, distributed-tier instance "
        "attributes) must only be mutated under a lock or transaction "
        "scope after construction"
    )
    interprocedural = True
    program_only = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_program(self, program) -> Iterator[Finding]:
        self._program = program
        self._init_only_memo: dict[str, bool] = {}
        self._always_scoped_memo: dict[str, bool] = {}
        for module in sorted(program.contexts):
            ctx = program.contexts[module]
            if not module.startswith(_SCOPE_PREFIXES):
                continue
            yield from self._check_module_globals(ctx)
            if module.startswith("repro.distributed"):
                yield from self._check_instance_attrs(ctx)

    # -- module-level mutables ---------------------------------------------
    def _check_module_globals(self, ctx: FileContext) -> Iterator[Finding]:
        shared: set[str] = set()
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                if _is_mutable_literal(stmt.value):
                    shared.update(
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    )
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if _is_mutable_literal(stmt.value) and isinstance(
                    stmt.target, ast.Name
                ):
                    shared.add(stmt.target.id)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                shared.update(node.names)
        if not shared:
            return
        for func, qualname in ctx.symbols.functions:
            globals_declared = {
                name
                for node in ast.walk(func)
                if isinstance(node, ast.Global)
                for name in node.names
            }
            locals_bound = self._local_bindings(func) - globals_declared
            for node in ast.walk(func):
                if ctx.symbols.enclosing_function(node) is not func:
                    continue
                target_name = self._global_mutation(node, shared, locals_bound)
                if target_name is None:
                    continue
                if self._site_scoped(ctx, func, node):
                    continue
                yield self.program_finding(
                    ctx.path,
                    getattr(node, "lineno", 1),
                    f"{qualname}: module-level mutable {target_name!r} "
                    "mutated outside any lock/transaction scope — shared "
                    "across sessions once the MVCC arc lands",
                )

    def _local_bindings(self, func: ast.AST) -> set[str]:
        bound: set[str] = set()
        args = getattr(func, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                bound.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.target, ast.Name
            ):
                bound.add(node.target.id)
        return bound

    def _global_mutation(
        self, node: ast.AST, shared: set[str], locals_bound: set[str]
    ) -> Optional[str]:
        def is_shared_name(expr: ast.expr) -> Optional[str]:
            if isinstance(expr, ast.Name) and expr.id in shared:
                return expr.id if expr.id not in locals_bound else None
            return None

        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in shared:
                    # Rebinding a global requires a ``global`` decl; the
                    # locals filter already removed shadowers.
                    if target.id not in locals_bound:
                        return target.id
                if isinstance(target, ast.Subscript):
                    name = is_shared_name(target.value)
                    if name:
                        return name
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    name = is_shared_name(target.value)
                    if name:
                        return name
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHOD_TAILS:
                name = is_shared_name(node.func.value)
                if name:
                    return name
        return None

    # -- distributed-tier instance attributes ------------------------------
    def _check_instance_attrs(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            class_qual = f"{ctx.module}.{node.name}"
            for method in node.body:
                if not isinstance(method, _FUNCTION_NODES):
                    continue
                method_qual = f"{class_qual}.{method.name}"
                for site in ast.walk(method):
                    if ctx.symbols.enclosing_function(site) is not method:
                        continue
                    attr = self._attr_mutation(site)
                    if attr is None:
                        continue
                    if self._method_scoped(ctx, method, method_qual, class_qual):
                        continue
                    if self._site_scoped(ctx, method, site):
                        continue
                    yield self.program_finding(
                        ctx.path,
                        getattr(site, "lineno", 1),
                        f"{node.name}.{method.name}: self.{attr} mutated "
                        "outside any lock/transaction scope after "
                        "construction — will race once sessions interleave",
                    )

    def _attr_mutation(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    return attr
                if isinstance(target, ast.Subscript):
                    attr = _receiver_self_attr(target.value)
                    if attr is not None:
                        return attr
        if isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _receiver_self_attr(target)
                if attr is not None:
                    return attr
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHOD_TAILS:
                attr = _receiver_self_attr(node.func.value)
                if attr is not None:
                    return attr
        return None

    def _site_scoped(self, ctx: FileContext, func: ast.AST, node: ast.AST) -> bool:
        return _under_scope_with(ctx, node, func)

    def _method_scoped(
        self, ctx: FileContext, method: ast.AST, method_qual: str, class_qual: str
    ) -> bool:
        if _has_decorator(method, "transactional"):
            return True
        if _declares_guard(method):
            return True
        if self._init_only(method_qual, class_qual):
            return True
        return self._always_scoped(method_qual)

    def _init_only(self, method_qual: str, class_qual: str, depth: int = 0) -> bool:
        """Reachable only from ``__init__`` (constructor-local escape)."""
        if method_qual.rsplit(".", 1)[-1] == "__init__":
            return True
        if depth > _MAX_WALK_DEPTH:
            return False
        cached = self._init_only_memo.get(method_qual)
        if cached is not None:
            return cached
        self._init_only_memo[method_qual] = False  # cycle guard
        callers = self._program.callers_of.get(method_qual, [])
        result = bool(callers) and all(
            edge.caller.startswith(class_qual + ".")
            and self._init_only(edge.caller, class_qual, depth + 1)
            for edge, __ in callers
        )
        self._init_only_memo[method_qual] = result
        return result

    def _always_scoped(self, method_qual: str, depth: int = 0) -> bool:
        """Every call site into the method is itself under a scope."""
        if depth > _MAX_WALK_DEPTH:
            return False
        cached = self._always_scoped_memo.get(method_qual)
        if cached is not None:
            return cached
        self._always_scoped_memo[method_qual] = False  # cycle guard
        callers = self._program.callers_of.get(method_qual, [])
        result = bool(callers)
        for edge, call in callers:
            caller_info = self._program.functions.get(edge.caller)
            if caller_info is None:
                result = False
                break
            caller_ctx = caller_info.ctx
            if _under_scope_with(caller_ctx, call, caller_info.node):
                continue
            if _has_decorator(caller_info.node, "transactional"):
                continue
            if _declares_guard(caller_info.node):
                continue
            if self._always_scoped(edge.caller, depth + 1):
                continue
            result = False
            break
        self._always_scoped_memo[method_qual] = result
        return result


@register
class LockGraphChecker(Checker):
    rule_id = "CONC002"
    severity = Severity.ERROR
    description = (
        "the interprocedural lock acquisition-order graph must be "
        "acyclic; any cycle is a potential deadlock under interleaving"
    )
    interprocedural = True
    program_only = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_program(self, program) -> Iterator[Finding]:
        from repro.analysis.summaries import find_lock_cycles

        edges = program.summaries.lock_order_edges()
        for nodes, cycle_edges in find_lock_cycles(edges):
            ring = " -> ".join(nodes + (nodes[0],))
            witnesses = "; ".join(
                f"{edge.outer} -> {edge.inner} via "
                + " -> ".join(edge.chain)
                for edge in cycle_edges
            )
            first = cycle_edges[0]
            yield self.program_finding(
                first.path,
                first.line,
                f"lock-order cycle: {ring} (witness chains: {witnesses})",
            )

"""RC001 — blockRefCount pairing.

The engine's sharing model (paper Section 4.2/4.3) hangs on one
invariant: after any operation completes *or fails*, every live block's
``blockRefCount`` equals the number of slots referencing it.  Taking a
reference (``incref``) therefore creates an **obligation** that must be
discharged before control can leave the function:

* a matching ``decref`` on the same expression, or
* an **ownership transfer** — the counted block number is handed to a
  slot-table call (``append_slot`` / ``insert_slot`` / ``replace_slot``),
  stored into a ``Slot(...)`` that such a call (or the function's
  result) receives, or returned.

Two failure shapes are reported:

1. **Straight-line leaks** — between the ``incref`` and its discharge
   there is an explicit ``raise``/``return`` or a call that can raise
   (anything outside the safe-call set), so an exception edge exits the
   function with the obligation open.
2. **Loop-carried leaks** — the ``incref`` sits in a loop whose body can
   raise.  Even when each iteration discharges its own obligation, a
   failure in iteration *i* unwinds with iterations ``0..i-1`` already
   counted; unless the loop is wrapped in a ``try`` whose handler or
   ``finally`` calls ``decref`` (rollback), those references leak.

Scope: ``repro.core`` and ``repro.fs`` — the only packages allowed to
touch ``blockRefCount`` at all.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import dataflow
from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker, FileContext, register
from repro.analysis.symbols import call_tail

#: Calls that take ownership of a counted block number.
TRANSFER_TAILS = frozenset({"append_slot", "insert_slot", "replace_slot"})

_SCOPES = ("repro.core.", "repro.fs.", "repro.snap.", "repro.serving.")


def _is_incref(call: ast.Call) -> bool:
    return call_tail(call) == "incref" and len(call.args) == 1


def _discharges(stmt: ast.stmt, arg_source: str) -> bool:
    """Whether ``stmt`` closes the obligation opened on ``arg_source``."""
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        if dataflow.mentions(stmt.value, arg_source):
            return True
    for call in dataflow.iter_calls(stmt):
        tail = call_tail(call)
        if tail == "decref" and call.args and ast.unparse(call.args[0]) == arg_source:
            return True
        if tail in TRANSFER_TAILS and dataflow.mentions(call, arg_source):
            return True
        # ``slots.append(Slot(block_no=dup, ...))`` — transfer into the
        # aggregate that the function publishes or returns.
        if tail == "append" and any(
            isinstance(arg, ast.Call)
            and call_tail(arg) == "Slot"
            and dataflow.mentions(arg, arg_source)
            for arg in call.args
        ):
            return True
    return False


@register
class RefcountPairingChecker(Checker):
    rule_id = "RC001"
    severity = Severity.ERROR
    description = (
        "every incref must reach a decref or an ownership transfer on "
        "all paths, including exception edges"
    )
    interprocedural = True

    def check_program(self, program) -> Iterator[Finding]:
        """Cross-call-edge pass: a callee with a *counted return*
        (incref-then-return — the per-file pass rightly accepts it as an
        ownership transfer) hands its caller an open obligation.  The
        caller must not drop the result, and from the assignment onward
        the same straight-line discipline applies as if the caller had
        incref'd the name itself."""
        import ast as _ast

        summaries = program.summaries
        for qualname in sorted(program.functions):
            info = program.functions[qualname]
            if not info.module.startswith(_SCOPES):
                continue
            for edge, call in program.calls_from.get(qualname, ()):
                if not summaries.counted_return(edge.callee):
                    continue
                stmt = info.ctx.symbols.enclosing_statement(call)
                if stmt is None:
                    continue
                if isinstance(stmt, _ast.Expr) and stmt.value is call:
                    yield self.program_finding(
                        edge.path,
                        edge.line,
                        f"{qualname}: discards the counted return of "
                        f"{edge.callee}() — the incref it took is leaked; "
                        "bind the result and decref or transfer it",
                    )
                    continue
                if (
                    isinstance(stmt, _ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], _ast.Name)
                    and stmt.value is call
                ):
                    short = qualname.split(".", 2)[-1]
                    yield from self._check_straight_line(
                        info.ctx,
                        info.node,
                        f"{short} (counted return of {edge.callee})",
                        stmt,
                        stmt.targets[0].id,
                    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.module.startswith(_SCOPES):
            return
        for func, qualname in ctx.symbols.functions:
            yield from self._check_function(ctx, func, qualname)

    def _check_function(
        self, ctx: FileContext, func: ast.AST, qualname: str
    ) -> Iterator[Finding]:
        flagged_loops: set[ast.AST] = set()
        for call in dataflow.iter_calls(func):
            if not _is_incref(call):
                continue
            if ctx.symbols.enclosing_function(call) is not func:
                continue  # belongs to a nested function; analyzed there
            arg_source = ast.unparse(call.args[0])
            stmt = ctx.symbols.enclosing_statement(call)
            if stmt is None:  # pragma: no cover - incref is always a stmt child
                continue
            yield from self._check_straight_line(ctx, func, qualname, stmt, arg_source)
            yield from self._check_loop_carried(
                ctx, func, qualname, call, flagged_loops
            )

    # -- shape 1: exception/return edge between incref and discharge ------
    def _check_straight_line(
        self,
        ctx: FileContext,
        func: ast.AST,
        qualname: str,
        stmt: ast.stmt,
        arg_source: str,
    ) -> Iterator[Finding]:
        if _discharges(stmt, arg_source):
            return  # incref and transfer share one statement
        protected = any(
            dataflow.calls_decref(cleanup)
            for cleanup in dataflow.try_cleanup_blocks(ctx.symbols, stmt, stop=func)
        )
        for follower in dataflow.statements_after(ctx.symbols, stmt):
            if _discharges(follower, arg_source):
                return
            if isinstance(follower, ast.Raise):
                yield self.finding(
                    ctx,
                    follower,
                    f"{qualname}: raise with open incref({arg_source}) "
                    "obligation — decref before raising or transfer first",
                )
                return
            if isinstance(follower, ast.Return):
                yield self.finding(
                    ctx,
                    follower,
                    f"{qualname}: return without balancing incref({arg_source})",
                )
                return
            if not protected and dataflow.statement_may_raise(follower):
                yield self.finding(
                    ctx,
                    follower,
                    f"{qualname}: call between incref({arg_source}) and its "
                    "discharge can raise, leaking the reference — reorder, "
                    "or wrap in try with a decref rollback",
                )
                return
        # Fell off the end of the block without a discharge.
        yield self.finding(
            ctx,
            stmt,
            f"{qualname}: incref({arg_source}) has no matching decref or "
            "ownership transfer in its block",
        )

    # -- shape 2: loop accumulates obligations, body can raise ------------
    def _check_loop_carried(
        self,
        ctx: FileContext,
        func: ast.AST,
        qualname: str,
        call: ast.Call,
        flagged_loops: set[ast.AST],
    ) -> Iterator[Finding]:
        loop = ctx.symbols.loop_ancestor(call, stop=func)
        if loop is None or loop in flagged_loops:
            return
        if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
            return  # comprehensions cannot hold multi-statement protocols
        body_risky = any(
            dataflow.statement_may_raise(stmt) for stmt in loop.body
        )
        if not body_risky:
            return
        rollback = any(
            dataflow.calls_decref(cleanup)
            for cleanup in dataflow.try_cleanup_blocks(ctx.symbols, loop, stop=func)
        ) or any(
            dataflow.calls_decref(cleanup)
            for cleanup in dataflow.try_cleanup_blocks(
                ctx.symbols, ctx.symbols.enclosing_statement(call) or call, stop=func
            )
        )
        if rollback:
            return
        flagged_loops.add(loop)
        yield self.finding(
            ctx,
            loop,
            f"{qualname}: incref inside a loop whose body can raise — a "
            "mid-loop failure leaks the references taken by earlier "
            "iterations; wrap the loop in try/except with a decref rollback",
        )

"""reprolint — AST-based invariant analysis for the CompressDB repro.

The engine's hard contracts (refcount balance on every path, batched
block I/O, the layer cake, cluster lock order, hole-API-only block
mutation) are invisible to generic linters; this package encodes them
as checkers over Python ASTs.  Entry points:

* ``repro lint`` (CLI) — lint the tree, exit non-zero on violations;
* :func:`repro.analysis.runner.run_paths` — programmatic API;
* :class:`repro.analysis.framework.Analyzer` — single-file analysis.

Rules ship in the ``rules_*`` modules and self-register via
:func:`repro.analysis.framework.register`.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import (
    CHECKER_REGISTRY,
    AnalysisError,
    Analyzer,
    Checker,
    FileContext,
    Suppression,
    register,
)
from repro.analysis.runner import (
    LintReport,
    build_program_for,
    collect_files,
    default_target,
    run_paths,
)
from repro.analysis.sanitizer import (
    LockContractError,
    LockOrderSanitizer,
    LockOrderViolation,
    TrackedLock,
    check_agreement,
    current_sanitizer,
    install_sanitizer,
    tracked_lock,
    uninstall_sanitizer,
)

# Imported for their registration side effect: each rule module adds its
# checker to CHECKER_REGISTRY, so the registry is complete as soon as the
# package is imported (``repro lint --list-rules`` relies on this).
from repro.analysis import rules_concurrency  # noqa: E402,F401
from repro.analysis import rules_determinism  # noqa: E402,F401
from repro.analysis import rules_encoding  # noqa: E402,F401
from repro.analysis import rules_io  # noqa: E402,F401
from repro.analysis import rules_layering  # noqa: E402,F401
from repro.analysis import rules_locks  # noqa: E402,F401
from repro.analysis import rules_mutation  # noqa: E402,F401
from repro.analysis import rules_obs  # noqa: E402,F401
from repro.analysis import rules_refcount  # noqa: E402,F401
from repro.analysis import rules_txn  # noqa: E402,F401

__all__ = [
    "AnalysisError",
    "Analyzer",
    "CHECKER_REGISTRY",
    "Checker",
    "FileContext",
    "Finding",
    "LintReport",
    "LockContractError",
    "LockOrderSanitizer",
    "LockOrderViolation",
    "Severity",
    "Suppression",
    "TrackedLock",
    "build_program_for",
    "check_agreement",
    "collect_files",
    "current_sanitizer",
    "default_target",
    "install_sanitizer",
    "register",
    "run_paths",
    "tracked_lock",
    "uninstall_sanitizer",
]

"""Per-file symbol tables for the reprolint checkers.

One pass over the AST records what the rules keep asking for:

* parent links (``ast`` has none), so checkers can walk outward from a
  call to its statement, loop, ``try``, function, and class;
* the import map — local name → fully qualified module/object path —
  so LAYER001 reasons about *modules*, not spellings;
* every function (with qualified name) and every class with its base
  names, resolved through the import map where possible.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSION_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """Dotted name of a call target (``self.refcount.incref``)."""
    return dotted_name(call.func)


def call_tail(call: ast.Call) -> Optional[str]:
    """Last component of the call target (``incref``)."""
    name = call_name(call)
    return name.rsplit(".", 1)[-1] if name else None


@dataclass
class SymbolTable:
    """Everything a checker needs to know about one parsed file."""

    tree: ast.Module
    #: child node -> parent node, for every node in the tree.
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: local name -> fully qualified origin ("FileNotFound" ->
    #: "repro.fs.errors.FileNotFound", "np" -> "numpy").
    imports: dict[str, str] = field(default_factory=dict)
    #: (node, qualified name) for every function/method in the file.
    functions: list[tuple[ast.AST, str]] = field(default_factory=list)
    #: class name -> base-name list (resolved through the import map).
    class_bases: dict[str, list[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, tree: ast.Module) -> "SymbolTable":
        table = cls(tree=tree)
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                table.parents[child] = parent
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    table.imports[local] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    table.imports[local] = f"{node.module}.{alias.name}"
            elif isinstance(node, _FUNCTION_NODES):
                table.functions.append((node, table._qualname(node)))
            elif isinstance(node, ast.ClassDef):
                bases = []
                for base in node.bases:
                    name = dotted_name(base)
                    if name is None:
                        continue
                    root = name.split(".", 1)[0]
                    if root in table.imports:
                        name = table.imports[root] + name[len(root):]
                    bases.append(name)
                table.class_bases[node.name] = bases
        return table

    def _qualname(self, node: ast.AST) -> str:
        parts: list[str] = []
        current: Optional[ast.AST] = node
        while current is not None and not isinstance(current, ast.Module):
            if isinstance(current, _FUNCTION_NODES + (ast.ClassDef,)):
                parts.append(current.name)  # type: ignore[union-attr]
            current = self.parents.get(current)
        return ".".join(reversed(parts))

    # -- ancestry helpers ---------------------------------------------------
    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, _FUNCTION_NODES):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def enclosing_statement(self, node: ast.AST) -> Optional[ast.stmt]:
        """The innermost statement containing ``node`` (itself if a stmt)."""
        current: Optional[ast.AST] = node
        while current is not None and not isinstance(current, ast.stmt):
            current = self.parents.get(current)
        return current

    def loop_ancestor(self, node: ast.AST, stop: Optional[ast.AST] = None) -> Optional[ast.AST]:
        """The nearest loop (or comprehension) containing ``node``.

        The search stops at ``stop`` (normally the enclosing function) so
        a call inside a method is not attributed to a loop that contains
        the whole function definition.
        """
        for ancestor in self.ancestors(node):
            if ancestor is stop:
                return None
            if isinstance(ancestor, _LOOP_NODES + _COMPREHENSION_NODES):
                return ancestor
        return None

    def resolve(self, name: str) -> str:
        """Resolve a (possibly dotted) local name through the imports."""
        root = name.split(".", 1)[0]
        if root in self.imports:
            return self.imports[root] + name[len(root):]
        return name

"""CompressDB core: the paper's primary contribution.

Public surface:

* :class:`~repro.core.engine.CompressDB` — the storage engine;
* :class:`~repro.core.api.DirectAPI` /
  :class:`~repro.core.api.SocketServer` /
  :class:`~repro.core.api.SocketClient` — the non-POSIX operation APIs;
* the data-structure module pieces for inspection and benchmarking.
"""

from repro.core.api import APIError, DirectAPI, SocketClient, SocketServer
from repro.core.compressor import Compressor, CompressorStats
from repro.core.engine import (
    BlockHandle,
    CompressDB,
    FileExistsInEngine,
    FileNotFoundInEngine,
)
from repro.core.superblock import PersistenceError
from repro.core.hashtable import BlockHashTable, hash_block
from repro.core.holes import Hole, HoleDirectory
from repro.core.operations import OperationError, OperationModule, OperationStats
from repro.core.refcount import BlockRefCount

__all__ = [
    "APIError",
    "BlockHandle",
    "BlockHashTable",
    "BlockRefCount",
    "CompressDB",
    "Compressor",
    "CompressorStats",
    "DirectAPI",
    "FileExistsInEngine",
    "FileNotFoundInEngine",
    "Hole",
    "HoleDirectory",
    "OperationError",
    "OperationModule",
    "OperationStats",
    "PersistenceError",
    "SocketClient",
    "SocketServer",
    "hash_block",
]

"""Operation pushdown module: the paper's Section 4.4 operations.

All seven operations — ``extract``, ``replace``, ``insert``, ``delete``,
``append``, ``search``, ``count`` — run directly against the compressed
block representation inside the storage engine, never materialising the
whole file.  Unaligned inserts and deletes create holes instead of
shifting data; ``search``/``count`` exploit block sharing by scanning
each distinct block once.
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core import kmp
from repro.obs.compat import install_legacy_fields
from repro.obs.metrics import MetricsRegistry
from repro.storage.inode import Inode, Slot
from repro.storage.journal import require_transaction, transactional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import CompressDB


class OperationError(Exception):
    """Raised on invalid operation arguments (bad range, unknown file)."""


#: The seven pushed-down operations plus word_count, registered as
#: ``engine.ops.*`` invocation counters.
OPERATION_FIELDS = (
    "extract",
    "replace",
    "insert",
    "delete",
    "append",
    "search",
    "count",
    "word_count",
)


class OperationStats:
    """Per-operation invocation counters (registry-backed).

    Mutation goes through :meth:`record`; the legacy attribute surface
    (``stats.extract``) survives as deprecated property shims.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "engine.ops",
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.prefix = prefix
        self._counters = {
            name: self.registry.counter(f"{prefix}.{name}")
            for name in OPERATION_FIELDS
        }

    def record(self, field_name: str, n: int = 1) -> None:
        self._counters[field_name].inc(n)

    def snapshot(self) -> dict[str, int]:
        return {name: c.value for name, c in self._counters.items()}

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.force(0)  # reprolint: disable=OBS001 -- reset() is the sanctioned zeroing path; force() keeps the shared instrument object while discarding its history


install_legacy_fields(OperationStats, "OperationStats", OPERATION_FIELDS)


def _tokenize_block(content: bytes) -> tuple[bool, bytes, Counter, bytes]:
    """Per-block tokenisation for :meth:`OperationModule.word_count`.

    Returns ``(solid, head, middle_counts, tail)``:

    * ``solid`` — the content has no whitespace at all (the whole block
      is one fragment bridging its junctions; ``head`` carries it);
    * ``head`` — the leading fragment (non-empty when the content does
      not start with whitespace);
    * ``middle_counts`` — words that begin *and* end inside the block;
    * ``tail`` — the trailing fragment (non-empty when the content does
      not end with whitespace).
    """
    if not content:
        return False, b"", Counter(), b""
    words = content.split()
    if not words:  # all whitespace
        return False, b"", Counter(), b""
    starts_mid_word = not content[:1].isspace()
    ends_mid_word = not content[-1:].isspace()
    if starts_mid_word and ends_mid_word and len(words) == 1:
        if len(words[0]) == len(content):
            return True, words[0], Counter(), b""
        # A single word with interior whitespace is impossible; this is
        # one word with surrounding whitespace stripped on one side only.
    head = words[0] if starts_mid_word else b""
    tail = words[-1] if ends_mid_word else b""
    middle = words[1 if starts_mid_word else 0 : len(words) - (1 if ends_mid_word else 0)]
    return False, head, Counter(middle), tail


@dataclass
class OperationModule:
    """Binds the seven pushed-down operations to a CompressDB engine."""

    engine: "CompressDB"
    stats: OperationStats = field(default_factory=OperationStats)

    # -- helpers -----------------------------------------------------------
    def _inode(self, path: str) -> Inode:
        return self.engine.inode(path)

    def _slot_content(self, slot: Slot) -> bytes:
        """Valid bytes of a slot's block (hole stripped)."""
        return self.engine.device.read_block(slot.block_no)[: slot.used]

    def _chunk_slots(self, data: bytes) -> list[tuple[bytes, int]]:
        """Split ``data`` into (content, used) pieces of at most one block."""
        block_size = self.engine.device.block_size
        pieces = []
        for start in range(0, len(data), block_size):
            piece = data[start : start + block_size]
            pieces.append((piece, len(piece)))
        return pieces

    def _check_range(self, inode: Inode, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > inode.size:
            raise OperationError(
                f"range [{offset}, {offset + length}) outside file of {inode.size} bytes"
            )

    # -- extract ---------------------------------------------------------------
    def extract(self, path: str, offset: int, size: int) -> bytes:
        """Read ``size`` logical bytes starting at ``offset``.

        Reads beyond end-of-file are truncated (POSIX ``read``
        semantics).  The covering slot run is fetched in one
        scatter-gather device transaction via :meth:`CompressDB.readv`.
        """
        self.stats.record("extract")
        self._inode(path)  # existence check + pending-write flush
        if offset < 0 or size < 0:
            raise OperationError("offset and size must be non-negative")
        return self.engine.readv(path, [(offset, size)])[0]

    # -- replace ----------------------------------------------------------------
    @transactional
    def replace(self, path: str, offset: int, data: bytes) -> None:
        """Overwrite ``len(data)`` bytes at ``offset`` in place.

        Unlike "delete + insert", replace rewrites the affected blocks
        directly (copy-on-write when shared), leaving the block layout
        and hole structure untouched.

        The slot run covering the range is planned first: fully
        overwritten slots need no device read at all, the partially
        covered boundary slots are fetched in one batched read, and the
        whole run commits through :meth:`Compressor.commit_many` as a
        single scatter-gather write — Algorithm 1 still runs per block.
        """
        self.stats.record("replace")
        inode = self._inode(path)
        self._check_range(inode, offset, len(data))
        if not data:
            return
        slot_index, within = inode.locate(offset)
        # Plan the slot run: (index, slot, offset-in-slot, take, data-offset).
        plan: list[tuple[int, Slot, int, int, int]] = []
        consumed = 0
        index = slot_index
        while consumed < len(data):
            slot = inode.slot_at(index)
            take = min(slot.used - within, len(data) - consumed)
            plan.append((index, slot, within, take, consumed))
            consumed += take
            within = 0
            index += 1
        # Boundary slots keep bytes outside the range: batch-read them.
        boundary = [
            slot.block_no
            for __, slot, begin, take, __ in plan
            if begin > 0 or take < slot.used
        ]
        old_contents = dict(
            zip(boundary, self.engine.device.read_blocks(boundary))
        )
        items: list[tuple[int, bytes, int]] = []
        for index, slot, begin, take, data_offset in plan:
            piece = data[data_offset : data_offset + take]
            if begin == 0 and take == slot.used:
                new_content = piece
            else:
                old = old_contents[slot.block_no][: slot.used]
                new_content = old[:begin] + piece + old[begin + take :]
            items.append((index, new_content, slot.used))
        self.engine.compressor.commit_many(inode, items)

    # -- insert --------------------------------------------------------------------
    @transactional
    def insert(self, path: str, offset: int, data: bytes) -> None:
        """Insert ``data`` at logical ``offset`` without moving other blocks.

        The slot containing ``offset`` is split; the inserted bytes are
        packed after the split point, and any unaligned tail becomes a
        hole (Figure 3c).  Only the affected pointer-page entries change.
        """
        self.stats.record("insert")
        inode = self._inode(path)
        if offset < 0 or offset > inode.size:
            raise OperationError(
                f"insert offset {offset} outside file of {inode.size} bytes"
            )
        if not data:
            return
        if offset == inode.size:
            self._append_data(inode, data)
            return
        slot_index, within = inode.locate(offset)
        if within == 0:
            # Aligned with a slot boundary: splice new slots in directly,
            # storing the whole run as one batched write.
            slots = self.engine.compressor.store_many(self._chunk_slots(data))
            for i, slot in enumerate(slots):
                inode.insert_slot(slot_index + i, slot)
            return
        # Split the slot: left part + inserted data, then the right part.
        slot = inode.slot_at(slot_index)
        old_content = self._slot_content(slot)
        left = old_content[:within]
        right = old_content[within:]
        self.engine.compressor.release(slot)
        inode.remove_slot(slot_index)
        pieces = self._chunk_slots(left + data)
        if right:
            pieces.append((right, len(right)))
        insert_at = slot_index
        for new_slot in self.engine.compressor.store_many(pieces):
            inode.insert_slot(insert_at, new_slot)
            insert_at += 1

    # -- delete ----------------------------------------------------------------------
    @transactional
    def delete(self, path: str, offset: int, length: int, merge_holes: bool = True) -> None:
        """Remove ``length`` bytes at ``offset``, leaving holes.

        Fully covered slots are released; the partial head and tail
        slots keep their remaining data at the front of a block with a
        hole at the end.  With ``merge_holes`` the head and tail
        remainders are packed into a single block when they fit,
        releasing the extra block (the hole-merging process of
        Section 4.4).
        """
        self.stats.record("delete")
        inode = self._inode(path)
        self._check_range(inode, offset, length)
        if length == 0:
            return
        start_index, start_within = inode.locate(offset)
        remaining = length
        # Head fragment: trim the tail of the first slot if the delete
        # starts mid-slot.
        if start_within > 0:
            slot = inode.slot_at(start_index)
            head_cut = min(slot.used - start_within, remaining)
            content = self._slot_content(slot)
            new_content = content[:start_within] + content[start_within + head_cut :]
            self.engine.compressor.commit(inode, start_index, new_content, len(new_content))
            remaining -= head_cut
            start_index += 1
        # Whole slots fully covered by the delete range.
        while remaining > 0:
            slot = inode.slot_at(start_index)
            if slot.used > remaining:
                break
            self.engine.compressor.release(slot)
            inode.remove_slot(start_index)
            remaining -= slot.used
        # Tail fragment: trim the head of the last slot.
        if remaining > 0:
            slot = inode.slot_at(start_index)
            content = self._slot_content(slot)
            new_content = content[remaining:]
            self.engine.compressor.commit(inode, start_index, new_content, len(new_content))
        if merge_holes and start_within > 0 and start_index < inode.num_slots:
            self._merge_adjacent(inode, start_index - 1)

    def _merge_adjacent(self, inode: Inode, left_index: int) -> None:
        """Merge two adjacent holey slots into one block when they fit."""
        require_transaction(self.engine.device)
        if left_index < 0 or left_index + 1 >= inode.num_slots:
            return
        left = inode.slot_at(left_index)
        right = inode.slot_at(left_index + 1)
        if left.used + right.used > inode.block_size:
            return
        if left.used == inode.block_size or right.used == inode.block_size:
            return
        merged = self._slot_content(left) + self._slot_content(right)
        self.engine.compressor.release(right)
        inode.remove_slot(left_index + 1)
        self.engine.compressor.commit(inode, left_index, merged, len(merged))

    # -- append -----------------------------------------------------------------------
    @transactional
    def append(self, path: str, data: bytes) -> None:
        """Append ``data`` at the end of the file.

        The end position is known from the inode, so no search for the
        insert position is needed; a trailing hole in the last slot is
        filled first, then whole blocks are stored (dedup applies).
        """
        self.stats.record("append")
        inode = self._inode(path)
        self._append_data(inode, data)

    def _append_data(self, inode: Inode, data: bytes) -> None:
        require_transaction(self.engine.device)
        if not data:
            return
        block_size = inode.block_size
        if inode.num_slots > 0:
            last_index = inode.num_slots - 1
            last = inode.slot_at(last_index)
            room = block_size - last.used
            if room > 0:
                fill = data[:room]
                content = self._slot_content(last) + fill
                self.engine.compressor.commit(inode, last_index, content, len(content))
                data = data[room:]
        # The tail commits as one scatter-gather store of whole blocks.
        for slot in self.engine.compressor.store_many(self._chunk_slots(data)):
            inode.append_slot(slot)

    # -- analytics pushdown -----------------------------------------------------------
    def word_count(self, path: str) -> Counter:
        """Whitespace-token counts, computed on the compressed form.

        The TADOC-style analytics pushdown of Section 4.1: each
        *distinct* (block, used) pair is tokenised exactly once into
        (head fragment, complete-word counts, tail fragment); the file
        result stitches the per-block triples together, joining the
        fragments that span slot junctions.  A block shared by many
        slots contributes its counts at dictionary-merge cost.
        """
        self.stats.record("word_count")
        inode = self._inode(path)
        total: Counter = Counter()
        if inode.size == 0:
            return total
        slot_offsets, contents = self._gather(inode)
        analysis: dict[tuple[int, int], tuple] = {}
        for slot, __ in slot_offsets:
            key = (slot.block_no, slot.used)
            if key not in analysis:
                analysis[key] = _tokenize_block(contents[slot.block_no][: slot.used])
        pending = b""
        for slot, __ in slot_offsets:
            solid, head, middle, tail = analysis[(slot.block_no, slot.used)]
            if solid:
                # No whitespace at all: the whole block extends the
                # fragment crossing this junction.
                pending += head
                continue
            if head:
                total[pending + head] += 1
            elif pending:
                total[pending] += 1
            total.update(middle)
            pending = tail
        if pending:
            total[pending] += 1
        return total

    # -- search / count ------------------------------------------------------------------
    def search(self, path: str, pattern: bytes, workers: Optional[int] = None) -> list[int]:
        """All logical offsets where ``pattern`` occurs in the file.

        Phase 1 scans each *distinct* (block, used) pair once and maps
        the local matches to every slot referencing that block — the
        data-reuse saving of Section 4.4.  Phase 2 slides a window over
        slot junctions to catch cross-block occurrences.  Overlapping
        matches are reported.

        ``workers`` runs the in-block phase on a thread pool — the
        paper's parallel block-level search (Figure 3e); results are
        identical to the sequential scan.
        """
        self.stats.record("search")
        return self._search_impl(path, pattern, workers=workers)

    def count(self, path: str, pattern: bytes) -> int:
        """Number of occurrences of ``pattern`` in the file.

        Unlike ``search``, count does not materialise offsets: the
        per-block frequency is computed once per *distinct* (block,
        used) pair and multiplied by how often that pair occurs — the
        Section 4.4 saving of reading frequencies "directly" from the
        shared-block structure — plus the cross-junction occurrences.
        """
        self.stats.record("count")
        inode = self._inode(path)
        m = len(pattern)
        if m == 0 or inode.size == 0 or m > inode.size:
            return 0
        slot_offsets, contents = self._gather(inode)
        combo_counts: dict[tuple[int, int], int] = {}
        multiplicity: dict[tuple[int, int], int] = {}
        for slot, __ in slot_offsets:
            key = (slot.block_no, slot.used)
            multiplicity[key] = multiplicity.get(key, 0) + 1
            if key not in combo_counts:
                combo_counts[key] = kmp.count_matches(
                    contents[slot.block_no][: slot.used], pattern
                )
        total = sum(
            combo_counts[key] * occurrences
            for key, occurrences in multiplicity.items()
        )
        # Cross-junction matches: each is attributed to the first
        # junction it crosses, i.e. it starts inside the slot just left
        # of that junction — so every crossing match counts exactly once.
        for junction_index in range(1, len(slot_offsets)):
            junction = slot_offsets[junction_index][1]
            left_slot = slot_offsets[junction_index - 1][0]
            window, window_start = self._junction_window(
                slot_offsets, contents, junction_index, m
            )
            if len(window) < m:
                continue
            first_start = junction - left_slot.used
            for local in kmp.iter_matches(window, pattern):
                absolute = window_start + local
                if first_start <= absolute < junction < absolute + m:
                    total += 1
        return total

    def _gather(
        self, inode: Inode
    ) -> tuple[list[tuple[Slot, int]], dict[int, bytes]]:
        """Slots with their logical offsets + each distinct block's bytes.

        Each distinct block is read from the device exactly once — the
        data-reuse saving of Section 4.4; the in-block scans and
        junction windows afterwards work on these buffers.
        """
        slot_offsets: list[tuple[Slot, int]] = []
        offset = 0
        for slot in inode.iter_slots():
            slot_offsets.append((slot, offset))
            offset += slot.used
        # One scatter-gather read over the distinct blocks of the file.
        unique = list(dict.fromkeys(slot.block_no for slot, __ in slot_offsets))
        contents = dict(zip(unique, self.engine.device.read_blocks(unique)))
        return slot_offsets, contents

    def _junction_window(
        self,
        slot_offsets: list[tuple[Slot, int]],
        contents: dict[int, bytes],
        junction_index: int,
        m: int,
    ) -> tuple[bytes, int]:
        """The up-to-2(m-1)-byte window around one slot junction."""
        junction = slot_offsets[junction_index][1]
        left_slot = slot_offsets[junction_index - 1][0]
        window_left = contents[left_slot.block_no][: left_slot.used][-(m - 1) :]
        window_right = bytearray()
        for slot, __ in slot_offsets[junction_index:]:
            if len(window_right) >= m - 1:
                break
            window_right += contents[slot.block_no][: slot.used]
        window = window_left + bytes(window_right[: m - 1])
        return window, junction - len(window_left)

    def _search_impl(
        self, path: str, pattern: bytes, workers: Optional[int] = None
    ) -> list[int]:
        inode = self._inode(path)
        m = len(pattern)
        if m == 0 or inode.size == 0 or m > inode.size:
            return []
        matches: set[int] = set()
        slot_offsets, contents = self._gather(inode)
        # Phase 1: in-block search, one scan per distinct (block, used).
        keys = {(slot.block_no, slot.used) for slot, __ in slot_offsets}
        if workers and workers > 1:
            def scan(key: tuple[int, int]) -> tuple[tuple[int, int], list[int]]:
                block_no, used = key
                return key, kmp.find_all(contents[block_no][:used], pattern)

            with ThreadPoolExecutor(max_workers=workers) as pool:
                local_cache = dict(pool.map(scan, keys))
        else:
            local_cache = {
                (block_no, used): kmp.find_all(contents[block_no][:used], pattern)
                for block_no, used in keys
            }
        for slot, slot_start in slot_offsets:
            for local in local_cache[(slot.block_no, slot.used)]:
                matches.add(slot_start + local)
        # Phase 2: cross-block windows around each junction between slots.
        for junction_index in range(1, len(slot_offsets)):
            junction = slot_offsets[junction_index][1]
            window, window_start = self._junction_window(
                slot_offsets, contents, junction_index, m
            )
            if len(window) < m:
                continue
            for local in kmp.iter_matches(window, pattern):
                absolute = window_start + local
                if absolute < junction < absolute + m:
                    matches.add(absolute)
        return sorted(matches)

"""The CompressDB storage engine.

Ties together the three modules of Figure 2:

* the **data structure module** — :class:`~repro.core.hashtable.BlockHashTable`,
  :class:`~repro.core.refcount.BlockRefCount`,
  :class:`~repro.core.holes.HoleDirectory`;
* the **compression module** — :class:`~repro.core.compressor.Compressor`
  (Algorithm 1, triggered on every block release);
* the **operation module** — :class:`~repro.core.operations.OperationModule`
  (extract/replace/insert/delete/append/search/count pushdown).

The engine owns a flat file namespace on one block device.  File
systems (:mod:`repro.fs.compressfs`) and databases sit on top; they
only ever see POSIX-like calls plus the extra pushdown APIs.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Sequence

from dataclasses import dataclass, field

from repro.core import superblock as sb
from repro.core.compressor import Compressor, CompressorStats
from repro.core.hashtable import BlockHashTable
from repro.core.holes import HoleDirectory
from repro.core.operations import OperationModule, OperationStats
from repro.core.refcount import BlockRefCount
from repro.obs import Observability
from repro.obs.metrics import MetricsSnapshot
from repro.snap.manager import SnapshotManager
from repro.storage.block_device import BlockDevice, MemoryBlockDevice
from repro.storage.inode import Inode, Slot
from repro.storage.journal import Journal, JournalDevice, transactional


class FileExistsInEngine(Exception):
    """Raised when creating a path that already exists."""


class FileNotFoundInEngine(Exception):
    """Raised when operating on a path that does not exist."""


@dataclass
class BlockHandle:
    """A checked-out block: the unit of the get/release protocol.

    Section 4.3: *"any read or modification to a block should be
    performed after a block get call, and ends with a block release
    call ... we use this design to launch our compressor for each
    modification."*  The handle carries a private copy of the block's
    valid bytes (the paper's temporary block); mutating it and calling
    :meth:`CompressDB.release_block` runs Algorithm 1 exactly once.
    """

    path: str
    slot_index: int
    data: bytearray
    _released: bool = field(default=False, repr=False)

    @property
    def used(self) -> int:
        return len(self.data)


class CompressDB:
    """A compressed-data-direct-processing storage engine.

    Parameters
    ----------
    device:
        Block device to operate on; a fresh in-memory device by default.
    page_capacity:
        Leaf pointers per pointer page (bounds metadata fan-out).
    hash_table_length:
        Bucket count of blockHashTable.
    dedup:
        Disable to measure the engine without its compression module
        (used by the index-construction ablation).
    coalesce_writes:
        Enable the write-coalescing buffer: sequential small writes at
        end of file (the LevelDB/SSTable append pattern) accumulate in
        memory and commit as full-block batches instead of paying a
        read-modify-write round trip per call.  The buffer is flushed
        on any non-sequential write, on any other operation touching
        the file, when it reaches ``coalesce_blocks`` blocks, and on
        :meth:`flush`.
    coalesce_blocks:
        Size of the coalescing buffer in blocks.
    """

    def __init__(
        self,
        device: Optional[BlockDevice] = None,
        block_size: int = 1024,
        page_capacity: int = 256,
        hash_table_length: int = 1 << 16,
        dedup: bool = True,
        coalesce_writes: bool = True,
        coalesce_blocks: int = 16,
        obs: Optional[Observability] = None,
    ) -> None:
        if device is None:
            device = MemoryBlockDevice(block_size=block_size, obs=obs)
        self.device = device
        # Adopt the device's observability bundle so storage, engine,
        # and anything stacked above report into one registry/trace.
        if obs is None:
            obs = getattr(device, "obs", None)
        self.obs = obs if obs is not None else Observability()
        self.page_capacity = page_capacity
        self._inodes: dict[str, Inode] = {}
        self._txn_depth = 0
        # Cached at construction: whether the device carries a superblock
        # (and therefore whether flush/fsync publish the metadata image).
        # Probing per sync point would charge a device read to every
        # fsync on the in-memory database workloads.
        self._formatted = sb.is_formatted(self.device)
        self._coalesce_bytes = (
            coalesce_blocks * self.device.block_size if coalesce_writes else 0
        )
        self._pending: dict[str, bytearray] = {}
        self.hashtable = BlockHashTable(
            reader=self.device.read_block, length=hash_table_length
        )
        self.refcount = BlockRefCount(self.device)
        self.holes = HoleDirectory(self._inodes)
        self.compressor = Compressor(
            device=self.device,
            hashtable=self.hashtable,
            refcount=self.refcount,
            dedup=dedup,
            stats=CompressorStats(registry=self.obs.registry),
        )
        self.ops = OperationModule(
            engine=self, stats=OperationStats(registry=self.obs.registry)
        )
        self.snapshots = SnapshotManager(self)
        self._c_txn_commits = self.obs.registry.counter("engine.txn.commits")
        self._h_commit_ms = self.obs.registry.histogram("engine.txn.commit_ms")
        # MVCC session manager, created lazily on first use (breaks the
        # engine <-> mvcc import cycle and keeps the mvcc.* instruments
        # out of the registry until sessions actually run).
        self._mvcc = None

    @property
    def block_size(self) -> int:
        return self.device.block_size

    # -- transactions --------------------------------------------------------
    @property
    def journaled(self) -> bool:
        """Whether mutations stage in a write-ahead journal."""
        return isinstance(self.device, JournalDevice)

    @contextlib.contextmanager
    def _txn_scope(self):
        """Join the ambient transaction without forcing a commit.

        Every ``@transactional`` mutator enters this scope; nesting is
        free, and durability is decided only at sync points (``fsync``,
        ``flush``, or the outermost :meth:`transaction` exit).
        """
        self._txn_depth += 1
        try:
            yield
        finally:
            self._txn_depth -= 1

    @contextlib.contextmanager
    def transaction(self):
        """Explicit transaction scope: commit durably on clean exit.

        Mutations inside the ``with`` block stage as one atomic unit;
        the outermost successful exit runs :meth:`fsync` (publishing
        the metadata image and committing the journal epoch).  An
        exception propagates without committing, so on a journaled
        device the whole scope simply never becomes durable.
        """
        self._txn_depth += 1
        try:
            yield self
        except BaseException:
            self._txn_depth -= 1
            raise
        else:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self.fsync()

    # -- MVCC sessions -------------------------------------------------------
    @property
    def mvcc(self):
        """The MVCC :class:`~repro.mvcc.manager.SessionManager` (lazy)."""
        if self._mvcc is None:
            from repro.mvcc.manager import SessionManager

            self._mvcc = SessionManager(self)
        return self._mvcc

    @contextlib.contextmanager
    def session(self):
        """Scope one snapshot-isolated session (see DESIGN.md §13).

        The session sees a stable point-in-time image of every file it
        touches and buffers its own writes.  A clean exit commits
        (first-committer-wins — :class:`repro.mvcc.WriteConflict`
        propagates when another session got there first); an exception
        aborts.  Explicit ``commit()``/``abort()`` inside the scope
        wins over the implicit exit behavior.
        """
        session = self.mvcc.begin()
        try:
            yield session
        except BaseException:
            if session.active:
                self.mvcc.abort(session, "exception inside session scope")
            raise
        else:
            if session.active:
                session.commit()

    def fsync(self, path: Optional[str] = None) -> None:
        """Make every completed mutation durable on the device.

        On a formatted (mountable) engine this publishes the full
        metadata image and, when journaled, commits the journal epoch —
        data synced here survives a crash at any later device write.
        On an unformatted in-memory engine there is no durable image to
        publish, so only the coalescing buffer of ``path`` is flushed.
        """
        if self._formatted:
            self.flush()
        else:
            self._flush_pending(path)

    # -- namespace -----------------------------------------------------------
    @transactional
    def create(self, path: str, *, session=None) -> None:
        """Create an empty file at ``path``."""
        if session is not None:
            return session.create(path)
        if path in self._inodes:
            raise FileExistsInEngine(path)
        self._inodes[path] = Inode(
            block_size=self.device.block_size,
            page_capacity=self.page_capacity,
            device=self.device,
        )

    def exists(self, path: str, *, session=None) -> bool:
        if session is not None:
            return session.exists(path)
        return path in self._inodes

    def inode(self, path: str) -> Inode:
        """The inode of ``path``, with any coalesced writes flushed first.

        Public callers (and the operation module) must observe the
        file's full logical state, so pending buffered appends are
        committed before the inode is handed out.  Internal paths that
        manage the buffer themselves use :meth:`_inode_raw`.
        """
        self._flush_pending(path)
        return self._inode_raw(path)

    def _inode_raw(self, path: str) -> Inode:
        try:
            return self._inodes[path]
        except KeyError:
            raise FileNotFoundInEngine(path) from None

    # -- write coalescing -----------------------------------------------------
    @transactional
    def _flush_pending(self, path: Optional[str] = None) -> None:
        """Commit the coalescing buffer of ``path`` (or of every file).

        The buffered bytes are pure end-of-file appends, so the flush
        is one batched append: whole blocks go through
        :meth:`Compressor.store_many` in a single scatter-gather write.
        """
        if path is None:
            for pending_path in list(self._pending):
                self._flush_pending(pending_path)
            return
        buffered = self._pending.pop(path, None)
        if buffered:
            hooks = self.obs.hooks
            if hooks.active("engine.coalesce.flush"):
                hooks.fire(
                    "engine.coalesce.flush", path=path, nbytes=len(buffered)
                )
            self.ops._append_data(self._inode_raw(path), bytes(buffered))

    def sync(self, path: Optional[str] = None) -> None:
        """Commit coalesced pending appends of ``path`` (or every file).

        The durability hook for the write-coalescing buffer: ``fsync``
        and whole-file writes map here, while :meth:`flush` additionally
        persists the metadata image.
        """
        self._flush_pending(path)

    @transactional
    def unlink(self, path: str, *, session=None) -> None:
        """Delete a file, releasing every block it references."""
        if session is not None:
            return session.unlink(path)
        inode = self._inode_raw(path)
        self._pending.pop(path, None)  # buffered bytes die with the file
        for slot in inode.iter_slots():
            self.compressor.release(slot)
        del self._inodes[path]

    @transactional
    def rename(self, old: str, new: str, *, session=None) -> None:
        """Move a file to a new name.

        In memory this is a dict move; durably it is atomic, because
        the namespace only exists inside the serialized metadata image
        — any published image carries either the old name or the new
        one, never both or neither.
        """
        if session is not None:
            return session.rename(old, new)
        if new in self._inodes:
            raise FileExistsInEngine(new)
        self._inodes[new] = self._inode_raw(old)
        del self._inodes[old]
        buffered = self._pending.pop(old, None)
        if buffered:
            self._pending[new] = buffered

    @transactional
    def copy_file(self, src: str, dst: str) -> None:
        """Reflink-style copy: share every block, touch no data.

        A natural capability of a refcounted store — the copy costs
        one pointer table and ``num_slots`` refcount increments; the
        files diverge lazily through copy-on-write as either side is
        modified.
        """
        source = self.inode(src)
        if dst in self._inodes:
            raise FileExistsInEngine(dst)
        clone = Inode(
            block_size=self.device.block_size,
            page_capacity=self.page_capacity,
            device=self.device,
        )
        added: list[int] = []
        try:
            for slot in source.iter_slots():
                self.refcount.incref(slot.block_no)
                added.append(slot.block_no)
                clone.append_slot(Slot(block_no=slot.block_no, used=slot.used))
        except BaseException:
            # The clone is never published on failure, so every reference
            # taken so far must be returned or the blocks leak forever.
            for block_no in added:
                self.refcount.decref(block_no)
            raise
        self._inodes[dst] = clone

    def list_files(self, prefix: str = "", *, session=None) -> list[str]:
        """Paths in the namespace, optionally filtered by prefix."""
        if session is not None:
            return session.list_files(prefix)
        return sorted(p for p in self._inodes if p.startswith(prefix))

    def file_size(self, path: str, *, session=None) -> int:
        if session is not None:
            return session.file_size(path)
        # Pending coalesced bytes count toward the logical size without
        # forcing a flush, so append loops polling the size stay cheap.
        buffered = self._pending.get(path)
        return self._inode_raw(path).size + (len(buffered) if buffered else 0)

    def iter_inodes(self) -> Iterator[Inode]:
        self._flush_pending()
        return iter(self._inodes.values())

    def _index_sources(self):
        """Every slot-table holder the dedup index must cover.

        Live inodes, snapshot records, and MVCC-pinned frozen images:
        a block held only by a session pin still has a valid dedup
        record, so a rebuild (remount, fsck) must index it too or a
        later identical write would store the content twice.
        """
        yield from self.iter_inodes()
        yield from self.snapshots.iter_frozen_inodes()
        if self._mvcc is not None:
            yield from self._mvcc.iter_pinned_inodes()

    # -- block get/release protocol -----------------------------------------------
    def get_block(self, path: str, slot_index: int) -> BlockHandle:
        """Check out one block of a file for reading or modification.

        The returned handle holds a copy of the slot's valid bytes;
        grow or shrink it up to the block size before releasing.
        """
        inode = self.inode(path)
        slot = inode.slot_at(slot_index)
        raw = self.device.read_block(slot.block_no)
        return BlockHandle(
            path=path, slot_index=slot_index, data=bytearray(raw[: slot.used])
        )

    @transactional
    def release_block(self, handle: BlockHandle) -> None:
        """Release a checked-out block, triggering Algorithm 1.

        No-ops when the content is unchanged (the compressor detects
        the identical block); otherwise the modification is committed
        with dedup / in-place update / copy-on-write as appropriate.
        A handle can be released only once.
        """
        if handle._released:
            raise ValueError("block handle already released")
        handle._released = True
        if len(handle.data) > self.device.block_size:
            raise ValueError(
                f"handle grew to {len(handle.data)} bytes, block size is "
                f"{self.device.block_size}"
            )
        inode = self.inode(handle.path)
        self.compressor.commit(
            inode, handle.slot_index, bytes(handle.data), len(handle.data)
        )

    # -- POSIX-like data access -------------------------------------------------
    def read(self, path: str, offset: int, size: int, *, session=None) -> bytes:
        """POSIX ``read``: short reads at end of file, never an error."""
        if session is not None:
            return session.read(path, offset, size)
        return self.ops.extract(path, offset, size)

    def readv(
        self, path: str, spans: Sequence[tuple[int, int]], *, session=None
    ) -> list[bytes]:
        """Vectored read: serve every ``(offset, size)`` span at once.

        The slot runs covering all spans are planned first, then every
        needed block is fetched in a single scatter-gather device
        transaction — a read of N spans costs one batched request, not
        N sequential ones.  Each span follows POSIX ``read`` semantics
        (short reads at end of file).
        """
        if session is not None:
            return session.readv(path, spans)
        self._flush_pending(path)
        inode = self._inode_raw(path)
        with self.obs.tracer.span("engine.readv", path=path, spans=len(spans)):
            return self._readv_planned(inode, spans)

    def _readv_planned(
        self, inode: Inode, spans: Sequence[tuple[int, int]]
    ) -> list[bytes]:
        plans: list[Optional[tuple[int, int, list[Slot]]]] = []
        block_nos: list[int] = []
        for offset, size in spans:
            if offset < 0 or size < 0:
                raise ValueError("offset and size must be non-negative")
            if offset >= inode.size or size == 0:
                plans.append(None)
                continue
            size = min(size, inode.size - offset)
            slot_index, within = inode.locate(offset)
            run: list[Slot] = []
            covered = -within
            for slot in inode.iter_slots(slot_index):
                run.append(slot)
                covered += slot.used
                if covered >= size:
                    break
            plans.append((within, size, run))
            block_nos.extend(slot.block_no for slot in run)
        contents = self.device.read_blocks(block_nos)
        results: list[bytes] = []
        cursor = 0
        for plan in plans:
            if plan is None:
                results.append(b"")
                continue
            within, size, run = plan
            parts: list[bytes] = []
            remaining = size
            for slot in run:
                content = contents[cursor][: slot.used]
                cursor += 1
                piece = content[within : within + remaining]
                parts.append(piece)
                remaining -= len(piece)
                within = 0
            results.append(b"".join(parts))
        return results

    @transactional
    def write(self, path: str, offset: int, data: bytes, *, session=None) -> int:
        """POSIX ``write``: overwrite in place, extend past end of file.

        Writing beyond the current end fills the gap with zero bytes
        (sparse-write semantics).  Returns the number of bytes written.

        Writes at (or past) end of file land in the coalescing buffer
        when it is enabled: consecutive small appends accumulate and
        commit as one batched multi-block store instead of a
        read-modify-write per call.  Any overlapping or backward write
        flushes the buffer first and takes the in-place path.
        """
        if session is not None:
            return session.write(path, offset, data)
        inode = self._inode_raw(path)
        if offset < 0:
            raise ValueError("offset must be non-negative")
        if not data:
            return 0  # POSIX: a zero-length write changes nothing
        with self.obs.tracer.span(
            "engine.write", path=path, offset=offset, nbytes=len(data)
        ):
            return self._write_located(inode, path, offset, data)

    def _write_located(
        self, inode: Inode, path: str, offset: int, data: bytes
    ) -> int:
        if self._coalesce_bytes > 0:
            buffered = self._pending.get(path)
            logical = inode.size + (len(buffered) if buffered else 0)
            if offset >= logical:
                if buffered is None:
                    buffered = self._pending.setdefault(path, bytearray())
                if offset > logical:
                    buffered.extend(b"\x00" * (offset - logical))
                buffered.extend(data)
                if len(buffered) >= self._coalesce_bytes:
                    self._flush_pending(path)
                return len(data)
            # Offset discontinuity (overwrite / backward write): flush
            # and fall through to the in-place machinery below.
            self._flush_pending(path)
        if offset > inode.size:
            self.ops.append(path, b"\x00" * (offset - inode.size))
        overlap = min(len(data), inode.size - offset)
        if overlap > 0:
            self.ops.replace(path, offset, data[:overlap])
        if overlap < len(data):
            self.ops.append(path, data[overlap:])
        return len(data)

    @transactional
    def truncate(self, path: str, size: int, *, session=None) -> None:
        """Grow (zero-fill) or shrink the file to exactly ``size`` bytes."""
        if session is not None:
            return session.truncate(path, size)
        inode = self.inode(path)
        if size < 0:
            raise ValueError("size must be non-negative")
        if size < inode.size:
            self.ops.delete(path, size, inode.size - size)
        elif size > inode.size:
            self.ops.append(path, b"\x00" * (size - inode.size))

    def read_file(self, path: str, *, session=None) -> bytes:
        """Whole-file read convenience."""
        if session is not None:
            return session.read_file(path)
        return self.ops.extract(path, 0, self.inode(path).size)

    @transactional
    def write_file(self, path: str, data: bytes, *, session=None) -> None:
        """Create-or-replace a file with ``data``."""
        if session is not None:
            return session.write_file(path, data)
        if self.exists(path):
            self.unlink(path)
        self.create(path)
        self.ops.append(path, data)

    # -- space accounting ------------------------------------------------------------
    def logical_bytes(self) -> int:
        """Total logical size of all files (what the user stored)."""
        self._flush_pending()
        return sum(inode.size for inode in self._inodes.values())

    def physical_data_blocks(self) -> int:
        """Distinct live data blocks actually held on the device."""
        self._flush_pending()
        return len(self.refcount)

    def physical_bytes(self) -> int:
        """Bytes occupied by distinct data blocks on the device."""
        return self.physical_data_blocks() * self.device.block_size

    def compression_ratio(self) -> float:
        """Original size / compressed size (Table 2 metric)."""
        physical = self.physical_bytes()
        if physical == 0:
            return 1.0
        return self.logical_bytes() / physical

    def memory_report(self) -> dict[str, int]:
        """In-memory data-structure footprints (Table 3 metric)."""
        hashtable = self.hashtable.memory_bytes()
        holes = self.holes.memory_bytes()
        return {
            "blockHashTable_bytes": hashtable,
            "blockHole_bytes": holes,
            "blockRefCount_bytes": self.refcount.memory_bytes(),
            "total_bytes": hashtable + holes,
        }

    def metrics(self) -> MetricsSnapshot:
        """One snapshot of every metric the stack reports.

        Space and structure figures (files, bytes, compression ratio,
        holes, in-memory index footprints) are refreshed into gauges
        first, so a single snapshot carries both the flow counters and
        the current state — this is what ``repro stats`` renders.
        """
        gauge = self.obs.registry.gauge
        gauge("engine.space.files").set(len(self._inodes))
        gauge("engine.space.logical_bytes").set(self.logical_bytes())
        gauge("engine.space.physical_bytes").set(self.physical_bytes())
        gauge("engine.space.unique_blocks").set(self.physical_data_blocks())
        gauge("engine.space.compression_ratio").set(self.compression_ratio())
        gauge("engine.holes.count").set(self.holes.total_hole_count())
        gauge("engine.holes.bytes").set(self.holes.total_hole_bytes())
        gauge("engine.snap.count").set(len(self.snapshots))
        report = self.memory_report()
        gauge("engine.memory.blockhashtable_bytes").set(
            report["blockHashTable_bytes"]
        )
        gauge("engine.memory.blockhole_bytes").set(report["blockHole_bytes"])
        gauge("engine.memory.blockrefcount_bytes").set(
            report["blockRefCount_bytes"]
        )
        if self._mvcc is not None:
            self._mvcc.refresh_gauges()
        return self.obs.registry.snapshot()

    # -- remount / durability -----------------------------------------------------------
    def flush(self) -> None:
        """Persist the durable structures.

        Always writes the refcount partition (Section 4.2).  On a
        *formatted* device (see :meth:`mount`) the full metadata image
        — namespace, slot tables, partition pointers — is additionally
        written to the superblock's metadata chain, making the engine
        remountable from the raw device in another process.  On a
        journaled device this additionally commits the epoch: the new
        image goes through the write-ahead log, so a crash anywhere
        lands on exactly the previous or the new image.
        """
        clock = self.obs.clock
        started = clock.now if clock is not None else 0.0
        with self.obs.tracer.span("engine.flush", journaled=self.journaled):
            with self._txn_scope():
                self._flush_pending()
                self.refcount.persist()
                if self._formatted:
                    layout = sb.read_layout(self.device)
                    snap_head = layout.snap_head
                    if layout.meta_head != sb.NO_BLOCK:
                        __, old_chain = sb.read_chain(self.device, layout.meta_head)
                        sb.update_superblock(self.device, sb.NO_BLOCK)
                        for block_no in old_chain:
                            self.device.free(block_no)
                    if self.snapshots.dirty:
                        # Same crash discipline as the metadata chain:
                        # unregister, free the old chain, write the new
                        # one, then re-register — any crash lands on a
                        # superblock pointing at a whole chain (or none).
                        if snap_head != sb.NO_BLOCK:
                            __, old_snaps = sb.read_chain(self.device, snap_head)
                            sb.update_superblock(
                                self.device, sb.NO_BLOCK, snap_head=sb.NO_BLOCK
                            )
                            for block_no in old_snaps:
                                self.device.free(block_no)
                        if len(self.snapshots):
                            snap_head = sb.write_chain(
                                self.device, self.snapshots.serialize()
                            )
                        else:
                            snap_head = sb.NO_BLOCK
                        self.snapshots.mark_clean()
                    payload = sb.serialize_metadata(
                        self._inodes, self.refcount.partition_blocks
                    )
                    head = sb.write_chain(self.device, payload)
                    sb.update_superblock(self.device, head, snap_head=snap_head)
            if self.journaled:
                self.device.commit()
        self._c_txn_commits.inc()
        if clock is not None:
            self._h_commit_ms.observe((clock.now - started) * 1000.0)

    @classmethod
    def mount(
        cls,
        device: BlockDevice,
        journal_blocks: Optional[int] = None,
        **engine_kwargs,
    ) -> "CompressDB":
        """Open (or create) a persistent engine on a formatted device.

        A fresh device is formatted (block 0 becomes the superblock,
        optionally followed by ``journal_blocks`` write-ahead journal
        blocks); a device carrying an image has its namespace,
        refcounts, and free list restored, and the memory-only
        blockHashTable rebuilt by a single scan of the unique data
        blocks.  A journaled image first **recovers**: a committed but
        unapplied journal batch is replayed to its home locations, a
        torn batch is discarded.  ``journal_blocks`` only matters for a
        fresh device — the region is fixed at format time.
        """
        if not sb.is_formatted(device):
            if device.total_blocks > 0:
                raise sb.PersistenceError(
                    "device contains data but no CompressDB superblock"
                )
            sb.format_device(device, journal_blocks or 0)
            if journal_blocks:
                journal = Journal(
                    sb.SUPERBLOCK_NO + 1, journal_blocks, device.block_size
                )
                device = JournalDevice(device, journal)
            return cls(device=device, **engine_kwargs)
        layout = sb.read_layout(device)
        journal_region: set[int] = set()
        if layout.journal_len:
            journal = Journal(layout.journal_start, layout.journal_len, device.block_size)
            journal.replay(device)
            # The replayed batch may carry a newer superblock.
            layout = sb.read_layout(device)
            journal_region = journal.region_blocks()
            device = JournalDevice(device, journal)
        engine = cls(device=device, **engine_kwargs)
        chain_blocks: list[int] = []
        if layout.meta_head != sb.NO_BLOCK:
            payload, chain_blocks = sb.read_chain(device, layout.meta_head)
            inodes, partition = sb.deserialize_metadata(
                payload, device.block_size, engine.page_capacity, device
            )
            engine._inodes.update(inodes)
            engine.refcount.adopt_partition(partition)
            engine.refcount.restore()
        snap_chain: list[int] = []
        if layout.snap_head != sb.NO_BLOCK:
            snap_payload, snap_chain = sb.read_chain(device, layout.snap_head)
            engine.snapshots.load(snap_payload)
        used = (
            {sb.SUPERBLOCK_NO}
            | journal_region
            | set(chain_blocks)
            | set(snap_chain)
            | set(engine.refcount.partition_blocks)
            | set(engine.refcount.live_blocks())
        )
        device.rebuild_free_list(used)
        # Snapshot-only blocks are as live as inode-held ones: the index
        # must resolve them or dedup would re-store their content.
        engine.compressor.rebuild_hashtable(engine._index_sources())
        return engine

    def remount(self) -> int:
        """Simulate unmount + mount (Section 4.2 durability discussion).

        The refcount partition is persisted and restored from the
        device; the memory-only blockHashTable is dropped and rebuilt
        by scanning the live blocks.  Returns the number of blocks
        scanned during index reconstruction.
        """
        self._flush_pending()
        self.refcount.persist()
        self.refcount.restore()
        return self.compressor.rebuild_hashtable(self._index_sources())

    def describe(self, path: str) -> dict[str, object]:
        """Structural summary of one file (for inspection and the CLI)."""
        inode = self.inode(path)
        block_numbers = inode.all_block_numbers()
        distinct = set(block_numbers)
        shared = sum(
            1 for block_no in distinct if self.refcount.get(block_no) > 1
        )
        return {
            "path": path,
            "size": inode.size,
            "slots": inode.num_slots,
            "pointer_pages": inode.num_pages,
            "depth": inode.depth,
            "distinct_blocks": len(distinct),
            "shared_blocks": shared,
            "hole_slots": inode.hole_slots,
            "hole_bytes": inode.hole_bytes,
        }

    # -- maintenance ---------------------------------------------------------------------
    @transactional
    def defragment(self, path: str) -> int:
        """Rewrite a file without holes; returns slots eliminated.

        Holes accumulate under heavy insert/delete traffic (the paper
        notes repairing them is data movement, so it is done on demand,
        not inline).  The rewritten blocks go through the compressor,
        so dedup is preserved.
        """
        inode = self.inode(path)
        before = inode.num_slots
        data = self.read_file(path)
        old_slots = list(inode.iter_slots())
        while inode.num_slots:
            inode.remove_slot(inode.num_slots - 1)
        block_size = self.device.block_size
        pieces = [
            (data[start : start + block_size], min(block_size, len(data) - start))
            for start in range(0, len(data), block_size)
        ]
        for slot in self.compressor.store_many(pieces):
            inode.append_slot(slot)
        # Release the old references only after the new ones exist, so
        # shared blocks that survive the rewrite are never freed.
        for slot in old_slots:
            self.compressor.release(slot)
        return before - inode.num_slots

    @transactional
    def fsck(self, repair: bool = True) -> dict[str, int]:
        """Verify (and with ``repair`` restore) cross-structure invariants.

        Checks that blockRefCount matches the references actually held
        by the pointer tables, that no counted block is orphaned, and
        that the hole directory is consistent with the inodes; rebuilds
        blockHashTable.  With ``repair`` (the default) refcounts are
        recomputed and leaked blocks freed; without it the report only
        counts violations, mutating nothing.  All-zero counters (other
        than ``index_entries``) mean a healthy image.
        """
        self._flush_pending()
        observed: dict[int, int] = {}
        for inode in self._inodes.values():
            for slot in inode.iter_slots():
                observed[slot.block_no] = observed.get(slot.block_no, 0) + 1
        # References held by snapshots are first-class: without them a
        # snapshot-only block would be "repaired" into oblivion.
        for block_no, held in self.snapshots.block_references().items():
            observed[block_no] = observed.get(block_no, 0) + held
        # MVCC session pins count toward the combined total ``get()``
        # reports, but repairs must write back only the durable share.
        pins = self.refcount.pinned_counts()
        for block_no, held in pins.items():
            observed[block_no] = observed.get(block_no, 0) + held
        fixed = 0
        for block_no, expected in observed.items():
            if self.refcount.get(block_no) != expected:
                if repair:
                    self.refcount.set(block_no, expected - pins.get(block_no, 0))
                fixed += 1
        leaked = 0
        for block_no in self.refcount.live_blocks():
            if block_no not in observed:
                if repair:
                    self.refcount.set(block_no, 0)
                    self.device.free(block_no)
                leaked += 1
        holes = self.holes.check_consistency()
        rebuilt = self.compressor.rebuild_hashtable(self._index_sources())
        return {
            "refcounts_fixed": fixed,
            "blocks_reclaimed": leaked,
            "hole_inconsistencies": holes,
            "index_entries": rebuilt,
        }

    # -- integrity ----------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Engine-wide consistency checks used by property tests.

        * every inode's internal accounting holds;
        * refcounts equal the number of slots referencing each block;
        * every live block is resolvable through blockHashTable and no
          two live blocks share content (full dedup).
        """
        self._flush_pending()
        observed: dict[int, int] = {}
        for inode in self._inodes.values():
            inode.check_invariants()
            for slot in inode.iter_slots():
                observed[slot.block_no] = observed.get(slot.block_no, 0) + 1
        for block_no, held in self.snapshots.block_references().items():
            observed[block_no] = observed.get(block_no, 0) + held
        for block_no, held in self.refcount.pinned_counts().items():
            observed[block_no] = observed.get(block_no, 0) + held
        for block_no, expected in observed.items():
            actual = self.refcount.get(block_no)
            if actual != expected:
                raise AssertionError(
                    f"block {block_no}: refcount {actual} != {expected} references"
                )
        for block_no in self.refcount.live_blocks():
            if block_no not in observed:
                raise AssertionError(f"block {block_no} refcounted but unreferenced")
        if self.compressor.dedup:
            self.hashtable.check_invariants()
            contents: dict[bytes, int] = {}
            order = list(observed)
            for block_no, content in zip(order, self.device.read_blocks(order)):
                if content in contents:
                    raise AssertionError(
                        f"blocks {contents[content]} and {block_no} share content"
                    )
                contents[content] = block_no
                if self.hashtable.find_duplicate(content) != block_no:
                    raise AssertionError(f"block {block_no} not resolvable via hashtable")

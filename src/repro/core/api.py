"""Non-POSIX operation APIs, including the unix-socket protocol.

Section 5 of the paper: operations with no POSIX counterpart
(``insert``, ``delete``, ``search``, ``count``) are exposed through a
separate API set; the experiments pass parameters and results through
unix sockets.  This module provides both forms:

* :class:`DirectAPI` — in-process calls against an engine (what a
  database linked with CompressDB would use);
* :class:`SocketServer` / :class:`SocketClient` — a length-prefixed
  JSON protocol over an ``AF_UNIX`` socket, for out-of-process callers.

Binary payloads are hex-encoded inside the JSON envelope so the
protocol stays self-describing and debuggable.

.. deprecated::
    These entry points are superseded by :func:`repro.api.connect`
    (one client interface, in-process or over the serving layer's
    binary protocol) and :class:`repro.serving.Server`.  They keep
    working — the databases and existing scripts still route through
    :class:`DirectAPI` — but new code should use the facade.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import threading
import warnings
from typing import Optional

from repro.core.engine import CompressDB

_LENGTH = struct.Struct("<I")


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class APIError(Exception):
    """Raised by the client when the server reports a failure."""


class DirectAPI:
    """In-process facade over the pushdown operations of one engine.

    Deprecated for *new* code in favour of :func:`repro.api.connect`;
    internal callers (the databases' pushdown path, the socket server)
    construct it with ``_warn=False`` and stay silent.
    """

    def __init__(self, engine: CompressDB, _warn: bool = True) -> None:
        if _warn:
            _deprecated("repro.core.api.DirectAPI", "repro.api.connect()")
        self._engine = engine

    def insert(self, path: str, offset: int, data: bytes) -> None:
        self._engine.ops.insert(path, offset, data)

    def delete(self, path: str, offset: int, length: int) -> None:
        self._engine.ops.delete(path, offset, length)

    def replace(self, path: str, offset: int, data: bytes) -> None:
        self._engine.ops.replace(path, offset, data)

    def append(self, path: str, data: bytes) -> None:
        self._engine.ops.append(path, data)

    def extract(self, path: str, offset: int, size: int) -> bytes:
        return self._engine.ops.extract(path, offset, size)

    def search(self, path: str, pattern: bytes) -> list[int]:
        return self._engine.ops.search(path, pattern)

    def count(self, path: str, pattern: bytes) -> int:
        return self._engine.ops.count(path, pattern)

    def word_count(self, path: str) -> dict[bytes, int]:
        return dict(self._engine.ops.word_count(path))


def _send_message(conn: socket.socket, payload: dict) -> None:
    raw = json.dumps(payload).encode("utf-8")
    conn.sendall(_LENGTH.pack(len(raw)) + raw)


def _recv_exact(conn: socket.socket, size: int) -> bytes:
    chunks = []
    remaining = size
    while remaining > 0:
        chunk = conn.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed connection mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_message(conn: socket.socket) -> dict:
    (length,) = _LENGTH.unpack(_recv_exact(conn, _LENGTH.size))
    return json.loads(_recv_exact(conn, length).decode("utf-8"))


class SocketServer:
    """Serves one engine's pushdown operations on a unix socket."""

    def __init__(self, engine: CompressDB, socket_path: str) -> None:
        _deprecated(
            "repro.core.api.SocketServer",
            "repro.serving.Server with the framed protocol",
        )
        self._api = DirectAPI(engine, _warn=False)
        self.socket_path = socket_path
        self._sock: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._running = False
        # The engine is single-writer: one lock serialises operations
        # from concurrent client connections.
        self._engine_lock = threading.Lock()
        self._workers: list[threading.Thread] = []

    def start(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(self.socket_path)
        self._sock.listen(8)
        self._sock.settimeout(0.2)
        self._running = True
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=5)
        for worker in self._workers:
            worker.join(timeout=5)
        if self._sock is not None:
            self._sock.close()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    def __enter__(self) -> "SocketServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _serve(self) -> None:
        assert self._sock is not None
        while self._running:
            try:
                conn, __ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:  # pragma: no cover - socket torn down mid-accept
                break
            worker = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            self._workers.append(worker)
            worker.start()
            self._workers = [w for w in self._workers if w.is_alive()]

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            conn.settimeout(0.5)
            try:
                while self._running:
                    try:
                        request = _recv_message(conn)
                    except socket.timeout:
                        continue
                    with self._engine_lock:
                        response = self._handle(request)
                    _send_message(conn, response)
            except (ConnectionError, json.JSONDecodeError, OSError):
                return

    def _handle(self, request: dict) -> dict:
        try:
            op = request["op"]
            path = request.get("path", "")
            if op == "insert":
                self._api.insert(path, request["offset"], bytes.fromhex(request["data"]))
                result: object = None
            elif op == "delete":
                self._api.delete(path, request["offset"], request["length"])
                result = None
            elif op == "replace":
                self._api.replace(path, request["offset"], bytes.fromhex(request["data"]))
                result = None
            elif op == "append":
                self._api.append(path, bytes.fromhex(request["data"]))
                result = None
            elif op == "extract":
                result = self._api.extract(path, request["offset"], request["size"]).hex()
            elif op == "search":
                result = self._api.search(path, bytes.fromhex(request["pattern"]))
            elif op == "count":
                result = self._api.count(path, bytes.fromhex(request["pattern"]))
            elif op == "word_count":
                result = {
                    word.hex(): count
                    for word, count in self._api.word_count(path).items()
                }
            else:
                raise APIError(f"unknown operation {op!r}")
        except Exception as exc:  # surface every failure to the client
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        return {"ok": True, "result": result}


class SocketClient:
    """Client for :class:`SocketServer`'s length-prefixed JSON protocol."""

    def __init__(self, socket_path: str) -> None:
        _deprecated(
            "repro.core.api.SocketClient",
            "repro.api.connect() over a repro.serving.Server",
        )
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.connect(socket_path)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _call(self, request: dict) -> object:
        _send_message(self._sock, request)
        response = _recv_message(self._sock)
        if not response["ok"]:
            raise APIError(response["error"])
        return response["result"]

    def insert(self, path: str, offset: int, data: bytes) -> None:
        self._call({"op": "insert", "path": path, "offset": offset, "data": data.hex()})

    def delete(self, path: str, offset: int, length: int) -> None:
        self._call({"op": "delete", "path": path, "offset": offset, "length": length})

    def replace(self, path: str, offset: int, data: bytes) -> None:
        self._call({"op": "replace", "path": path, "offset": offset, "data": data.hex()})

    def append(self, path: str, data: bytes) -> None:
        self._call({"op": "append", "path": path, "data": data.hex()})

    def extract(self, path: str, offset: int, size: int) -> bytes:
        result = self._call({"op": "extract", "path": path, "offset": offset, "size": size})
        assert isinstance(result, str)
        return bytes.fromhex(result)

    def search(self, path: str, pattern: bytes) -> list[int]:
        result = self._call({"op": "search", "path": path, "pattern": pattern.hex()})
        assert isinstance(result, list)
        return result

    def count(self, path: str, pattern: bytes) -> int:
        result = self._call({"op": "count", "path": path, "pattern": pattern.hex()})
        assert isinstance(result, int)
        return result

    def word_count(self, path: str) -> dict[bytes, int]:
        result = self._call({"op": "word_count", "path": path})
        assert isinstance(result, dict)
        return {bytes.fromhex(word): count for word, count in result.items()}

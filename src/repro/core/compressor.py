"""Real-time compression module: Algorithm 1 from the paper.

Every modification of a data block goes through :meth:`Compressor.commit`,
which is the paper's block-``release`` hook (Section 4.3): the modified
content arrives in a temporary buffer, a duplicate block is searched via
blockHashTable, and either the pointer is redirected to the duplicate,
the block is updated in place (refcount 1), or a copy-on-write block is
allocated (refcount > 1).  New data (append/insert) goes through
:meth:`store`, which performs the same duplicate-or-allocate decision.

Blocks are always hashed over their full, zero-padded content so that a
block carrying a hole is "regarded as a regular block" (Section 4.4,
influence of insert on the other operations) and can still be shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.hashtable import BlockHashTable
from repro.core.refcount import BlockRefCount
from repro.obs.compat import install_legacy_fields
from repro.obs.metrics import MetricsRegistry
from repro.storage.block_device import BlockDevice
from repro.storage.inode import Inode, Slot
from repro.storage.journal import require_transaction

#: Algorithm 1 outcome counters, registered as ``engine.compressor.*``.
COMPRESSOR_FIELDS = (
    "commits",
    "stores",
    "dedup_hits",
    "in_place_updates",
    "cow_allocations",
    "fresh_allocations",
    "releases",
    "blocks_freed",
)


class CompressorStats:
    """Counters describing the compressor's behaviour (registry-backed).

    Mutation goes through :meth:`record`; the legacy attribute surface
    (``stats.dedup_hits``) survives as deprecated property shims.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "engine.compressor",
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.prefix = prefix
        self._counters = {
            name: self.registry.counter(f"{prefix}.{name}")
            for name in COMPRESSOR_FIELDS
        }

    def record(self, field_name: str, n: int = 1) -> None:
        self._counters[field_name].inc(n)

    def snapshot(self) -> dict[str, int]:
        return {name: c.value for name, c in self._counters.items()}

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.force(0)  # reprolint: disable=OBS001 -- reset() is the sanctioned zeroing path; force() keeps the shared instrument object while discarding its history


install_legacy_fields(CompressorStats, "CompressorStats", COMPRESSOR_FIELDS)


@dataclass
class Compressor:
    """Implements Algorithm 1 over a device, hash table, and refcounts."""

    device: BlockDevice
    hashtable: BlockHashTable
    refcount: BlockRefCount
    dedup: bool = True
    stats: CompressorStats = field(default_factory=CompressorStats)

    def _pad(self, content: bytes) -> bytes:
        block_size = self.device.block_size
        if len(content) > block_size:
            raise ValueError(
                f"content of {len(content)} bytes exceeds block size {block_size}"
            )
        if len(content) < block_size:
            content = content + b"\x00" * (block_size - len(content))
        return content

    # -- new data ------------------------------------------------------------
    def store(self, content: bytes, used: int) -> Slot:
        """Store new data, reusing an identical live block when possible.

        Returns a slot referencing either an existing block (refcount
        incremented) or a freshly allocated one.
        """
        require_transaction(self.device)
        return self.store_many([(content, used)])[0]

    def store_many(self, pieces: Sequence[tuple[bytes, int]]) -> list[Slot]:
        """Store a run of new blocks, committing them as one batched write.

        The per-block decision is identical to :meth:`store` — dedup hit
        or fresh allocation — but the device writes for every fresh
        block are submitted together through
        :meth:`~repro.storage.block_device.BlockDevice.write_blocks`.

        Fresh blocks are not visible through blockHashTable until their
        bytes are on the device (the table verifies candidates by
        reading block contents, so registering early would let a lookup
        observe stale zeroes); duplicates *within* the batch are caught
        by a pending-content map instead, preserving full dedup.
        """
        require_transaction(self.device)
        slots: list[Slot] = []
        pending: dict[bytes, int] = {}
        to_write: list[tuple[int, bytes]] = []
        for content, used in pieces:  # reprolint: disable=RC001 -- each iteration publishes its reference into `slots` same-iteration, so completed items stay individually consistent; references orphaned by a mid-batch failure are repaired by fsck
            self.stats.record("stores")
            padded = self._pad(content)
            if self.dedup:
                dup = pending.get(padded)
                if dup is None:
                    dup = self.hashtable.find_duplicate(padded)
                if dup is not None:
                    self.stats.record("dedup_hits")
                    self.refcount.incref(dup)
                    slots.append(Slot(block_no=dup, used=used))
                    continue
            block_no = self.device.allocate()
            to_write.append((block_no, padded))
            if self.dedup:
                pending[padded] = block_no
            self.refcount.set(block_no, 1)
            self.stats.record("fresh_allocations")
            slots.append(Slot(block_no=block_no, used=used))
        if to_write:
            with self.device.obs.tracer.span(
                "compressor.store_many", blocks=len(to_write)
            ):
                self.device.write_blocks(to_write)
            if self.dedup:
                for block_no, padded in to_write:
                    self.hashtable.add_record(block_no, padded)
        return slots

    # -- Algorithm 1: modification of an existing block ------------------------
    def commit(self, inode: Inode, slot_index: int, content: bytes, used: int) -> None:
        """Apply a modification of slot ``slot_index`` to ``content``.

        ``content`` plays the role of Algorithm 1's temporary block
        ``tmp``; the slot is the pointer ``ptr``; the block it currently
        references is ``curr``.
        """
        require_transaction(self.device)
        self.commit_many(inode, [(slot_index, content, used)])

    def commit_many(
        self, inode: Inode, items: Sequence[tuple[int, bytes, int]]
    ) -> None:
        """Apply a run of block modifications as one batched device write.

        ``items`` is a sequence of ``(slot_index, content, used)``
        triples, each carrying Algorithm 1's temporary block for one
        slot.  Semantics are exactly a loop of :meth:`commit` — dedup
        hit, in-place update, or copy-on-write decided per block — but
        the device writes of every in-place update and CoW allocation
        in the run are submitted together via
        :meth:`~repro.storage.block_device.BlockDevice.write_blocks`.

        As in :meth:`store_many`, blockHashTable records for deferred
        writes are registered only after the bytes reach the device;
        until then a pending-content map answers intra-batch duplicate
        lookups, so two slots modified to identical content within one
        batch still share a single block.

        Items must reference distinct slot indexes: one batch is one
        pass over a slot run, not a replay log.
        """
        require_transaction(self.device)
        pending: dict[bytes, int] = {}
        to_write: list[tuple[int, bytes]] = []
        for slot_index, content, used in items:  # reprolint: disable=RC001 -- each iteration transfers its reference into the inode slot same-iteration; in-place updates cannot be rolled back, so a mid-batch failure is left to fsck rather than half-undone
            self.stats.record("commits")
            padded = self._pad(content)
            curr = inode.slot_at(slot_index)
            dup: Optional[int] = None
            if self.dedup:
                dup = pending.get(padded)
                if dup is None:
                    dup = self.hashtable.find_duplicate(padded)
            if dup is not None:
                if dup == curr.block_no:
                    # Content unchanged; only the hole boundary may move.
                    if used != curr.used:
                        inode.set_used(slot_index, used)
                    continue
                # Duplicate block found: redirect the pointer to it.
                self.stats.record("dedup_hits")
                if self.refcount.get(curr.block_no) == 1:
                    self.hashtable.delete_record(curr.block_no)
                    self.refcount.decref(curr.block_no)
                    self.device.free(curr.block_no)
                    self.stats.record("blocks_freed")
                else:
                    self.refcount.decref(curr.block_no)
                self.refcount.incref(dup)
                inode.replace_slot(slot_index, Slot(block_no=dup, used=used))
                continue
            if self.refcount.get(curr.block_no) == 1 and self.device.can_overwrite_in_place(
                curr.block_no
            ):
                # Sole reference: update the block in place, renew its record.
                if self.dedup:
                    self.hashtable.delete_record(curr.block_no)
                    pending[padded] = curr.block_no
                to_write.append((curr.block_no, padded))
                if used != curr.used:
                    inode.set_used(slot_index, used)
                self.stats.record("in_place_updates")
                continue
            if self.refcount.get(curr.block_no) == 1:
                # Sole reference, but the block is part of the committed
                # image: rewriting it in place would force the old bytes
                # through the journal.  Shadow it instead — write a fresh
                # block (direct, crash-safe) and defer freeing the old
                # one to commit, so the previous image stays intact.
                if self.dedup:
                    self.hashtable.delete_record(curr.block_no)
                self.refcount.decref(curr.block_no)
                block_no = self.device.allocate()
                to_write.append((block_no, padded))
                if self.dedup:
                    pending[padded] = block_no
                self.refcount.set(block_no, 1)
                inode.replace_slot(slot_index, Slot(block_no=block_no, used=used))
                self.device.free(curr.block_no)
                self.stats.record("blocks_freed")
                self.stats.record("cow_allocations")
                continue
            # Shared block: copy on write.
            self.refcount.decref(curr.block_no)
            block_no = self.device.allocate()
            to_write.append((block_no, padded))
            if self.dedup:
                pending[padded] = block_no
            self.refcount.set(block_no, 1)
            inode.replace_slot(slot_index, Slot(block_no=block_no, used=used))
            self.stats.record("cow_allocations")
        if to_write:
            with self.device.obs.tracer.span(
                "compressor.commit_many", blocks=len(to_write)
            ):
                self.device.write_blocks(to_write)
            if self.dedup:
                for block_no, padded in to_write:
                    self.hashtable.add_record(block_no, padded)

    # -- release -----------------------------------------------------------------
    def release(self, slot: Slot) -> None:
        """Drop one reference to the slot's block, freeing it at zero."""
        require_transaction(self.device)
        self.stats.record("releases")
        remaining = self.refcount.decref(slot.block_no)
        if remaining == 0:
            if self.dedup and slot.block_no in self.hashtable:
                self.hashtable.delete_record(slot.block_no)
            self.device.free(slot.block_no)
            self.stats.record("blocks_freed")

    # -- index (re)construction ---------------------------------------------------
    def rebuild_hashtable(self, inodes: Iterable[Inode]) -> int:
        """Rebuild blockHashTable by scanning every live block.

        Used after a simulated remount (the table is memory-only) and by
        the index-construction benchmark (Section 6.5).  Returns the
        number of blocks scanned.
        """
        self.hashtable.clear()
        seen: set[int] = set()
        order: list[int] = []
        for inode in inodes:
            for slot in inode.iter_slots():
                if slot.block_no in seen:
                    continue
                seen.add(slot.block_no)
                order.append(slot.block_no)
        # The scan is one scatter-gather sweep over the unique blocks.
        for content, block_no in zip(self.device.read_blocks(order), order):
            self.hashtable.add_record(block_no, content)  # reprolint: disable=TXN001 -- blockHashTable is memory-only (rebuilt from the live blocks on every mount); reconstructing it mutates nothing durable, so no transaction is needed
        return len(order)

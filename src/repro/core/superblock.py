"""On-device persistence: superblock and chained metadata log.

The paper persists ``blockRefCount`` in a disk partition so compressed
data survives a remount (Section 4.2); the file-system metadata itself
(inodes) is persisted by the host file system.  This module completes
the picture for the standalone engine so a whole CompressDB instance
can be remounted from a :class:`~repro.storage.block_device.FileBlockDevice`
in a different process:

* **block 0** is the superblock — magic, version, and the head of the
  metadata chain;
* the **metadata chain** is a linked list of blocks carrying one byte
  stream: the refcount-partition block list plus the serialised inode
  table (paths, slot lists, hole boundaries);
* the device **free list** is not stored — it is reconstructed on
  mount from the set of referenced blocks.

The volatile ``blockHashTable`` is rebuilt by scanning unique blocks,
exactly as after the paper's remount.
"""

from __future__ import annotations

import struct
from typing import NamedTuple

from repro.storage.block_device import BlockDevice
from repro.storage.inode import Inode, Slot

_MAGIC = 0x434F4D5052444200  # "COMPRDB\0"
_VERSION = 4
# v4: magic, version, block size, meta chain head, journal start,
# journal length, snapshot chain head.  The block size is recorded so an
# image can never be re-opened (and silently reformatted) under a
# different geometry than it was written with; the journal region is
# fixed at format time so recovery can find it before any other
# structure is trusted; the snapshot chain head (new in v4) registers
# the serialised snapshot table of :mod:`repro.snap`.
_SUPERBLOCK = struct.Struct("<QIIQIIQ")
# v3 lacked the snapshot head; still readable (snap head = NO_BLOCK),
# and the first metadata publish rewrites the superblock as v4.
_SUPERBLOCK_V3 = struct.Struct("<QIIQII")
_READABLE_VERSIONS = (3, _VERSION)
_CHAIN_HEADER = struct.Struct("<QI")  # next block (NO_BLOCK = end), payload bytes
NO_BLOCK = 0xFFFFFFFFFFFFFFFF

SUPERBLOCK_NO = 0


class Layout(NamedTuple):
    """Decoded superblock geometry."""

    meta_head: int
    journal_start: int
    journal_len: int
    snap_head: int


class PersistenceError(Exception):
    """The device does not carry a valid CompressDB image."""


# -- varints (local to keep the storage layer self-contained) -----------------

def _write_varint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


# -- metadata chain ------------------------------------------------------------

def write_chain(device: BlockDevice, payload: bytes) -> int:
    """Write a byte stream across chained blocks; returns the head."""
    chunk_size = device.block_size - _CHAIN_HEADER.size
    if chunk_size <= 0:
        raise PersistenceError("block size too small for a metadata chain")
    chunks = [payload[i : i + chunk_size] for i in range(0, len(payload), chunk_size)]
    if not chunks:
        chunks = [b""]
    blocks = [device.allocate() for __ in chunks]
    writes: list[tuple[int, bytes]] = []
    for index, chunk in enumerate(chunks):
        next_block = blocks[index + 1] if index + 1 < len(blocks) else NO_BLOCK
        writes.append(
            (blocks[index], _CHAIN_HEADER.pack(next_block, len(chunk)) + chunk)
        )
    device.write_blocks(writes)
    return blocks[0]


def read_chain(device: BlockDevice, head: int) -> tuple[bytes, list[int]]:
    """Read a chained byte stream; returns (payload, chain block list)."""
    parts: list[bytes] = []
    blocks: list[int] = []
    current = head
    while current != NO_BLOCK:
        blocks.append(current)
        raw = device.read_block(current)  # reprolint: disable=IO001 -- pointer chase: each next-block number lives inside the previous block, so the reads are sequentially dependent and cannot be batched
        next_block, length = _CHAIN_HEADER.unpack_from(raw, 0)
        parts.append(raw[_CHAIN_HEADER.size : _CHAIN_HEADER.size + length])
        current = next_block
        if len(blocks) > device.total_blocks:
            raise PersistenceError("metadata chain cycle detected")
    return b"".join(parts), blocks


# -- image serialisation ----------------------------------------------------------

def serialize_metadata(
    inodes: dict[str, Inode], partition_blocks: list[int]
) -> bytes:
    """Pack the namespace, slot tables, and refcount-partition pointers."""
    out = bytearray()
    _write_varint(out, len(partition_blocks))
    for block_no in partition_blocks:
        _write_varint(out, block_no)
    _write_varint(out, len(inodes))
    for path in sorted(inodes):
        raw_path = path.encode("utf-8")
        _write_varint(out, len(raw_path))
        out += raw_path
        inode = inodes[path]
        _write_varint(out, inode.num_slots)
        for slot in inode.iter_slots():
            _write_varint(out, slot.block_no)
            _write_varint(out, slot.used)
    return bytes(out)


def deserialize_metadata(
    payload: bytes,
    block_size: int,
    page_capacity: int,
    device: BlockDevice,
) -> tuple[dict[str, Inode], list[int]]:
    """Invert :func:`serialize_metadata`."""
    offset = 0
    count, offset = _read_varint(payload, offset)
    partition_blocks = []
    for __ in range(count):
        block_no, offset = _read_varint(payload, offset)
        partition_blocks.append(block_no)
    file_count, offset = _read_varint(payload, offset)
    inodes: dict[str, Inode] = {}
    for __ in range(file_count):
        path_len, offset = _read_varint(payload, offset)
        path = payload[offset : offset + path_len].decode("utf-8")
        offset += path_len
        slot_count, offset = _read_varint(payload, offset)
        inode = Inode(block_size=block_size, page_capacity=page_capacity, device=device)
        for __slot in range(slot_count):
            block_no, offset = _read_varint(payload, offset)
            used, offset = _read_varint(payload, offset)
            inode.append_slot(Slot(block_no=block_no, used=used))  # reprolint: disable=TXN001 -- deserialisation builds fresh in-memory inodes from an already-durable image at mount time; nothing on the device changes, so there is no transaction to be in
        inodes[path] = inode
    return inodes, partition_blocks


# -- superblock ------------------------------------------------------------------------

def format_device(device: BlockDevice, journal_blocks: int = 0) -> None:
    """Initialise a fresh device: claim block 0 plus the journal region.

    ``journal_blocks`` contiguous blocks immediately after the
    superblock are reserved for the write-ahead journal; 0 formats an
    unjournaled image (the pre-v3 behaviour).
    """
    block_no = device.allocate()
    if block_no != SUPERBLOCK_NO:
        raise PersistenceError(
            f"superblock must be block 0, device handed out {block_no}"
        )
    journal_start = SUPERBLOCK_NO + 1
    for index in range(journal_blocks):
        claimed = device.allocate()
        if claimed != journal_start + index:
            raise PersistenceError(
                f"journal region must be contiguous after the superblock, "
                f"device handed out {claimed}"
            )
    device.write_block(
        SUPERBLOCK_NO,
        _SUPERBLOCK.pack(
            _MAGIC,
            _VERSION,
            device.block_size,
            NO_BLOCK,
            journal_start if journal_blocks else 0,
            journal_blocks,
            NO_BLOCK,
        ),
    )


def is_formatted(device: BlockDevice) -> bool:
    if device.total_blocks == 0:
        return False
    try:
        magic, version, __, __, __, __ = _SUPERBLOCK_V3.unpack_from(
            device.read_block(SUPERBLOCK_NO), 0
        )
    except struct.error:  # pragma: no cover - blocks are fixed-size
        return False
    return magic == _MAGIC and version in _READABLE_VERSIONS


def read_layout(device: BlockDevice) -> Layout:
    """Validate the superblock; returns the decoded :class:`Layout`."""
    if not is_formatted(device):
        raise PersistenceError("device carries no CompressDB superblock")
    raw = device.read_block(SUPERBLOCK_NO)
    __, version, __, __, __, __ = _SUPERBLOCK_V3.unpack_from(raw, 0)
    if version == _VERSION:
        (
            __,
            __,
            block_size,
            head,
            journal_start,
            journal_len,
            snap_head,
        ) = _SUPERBLOCK.unpack_from(raw, 0)
    else:
        # v3 image: no snapshot table exists yet.
        __, __, block_size, head, journal_start, journal_len = (
            _SUPERBLOCK_V3.unpack_from(raw, 0)
        )
        snap_head = NO_BLOCK
    if block_size != device.block_size:
        raise PersistenceError(
            f"image was written with {block_size}-byte blocks but the "
            f"device is using {device.block_size}-byte blocks"
        )
    return Layout(head, journal_start, journal_len, snap_head)


def read_superblock(device: BlockDevice) -> int:
    """Validate the superblock; returns the metadata chain head."""
    return read_layout(device).meta_head


def update_superblock(
    device: BlockDevice, meta_head: int, snap_head: int | None = None
) -> None:
    # Re-read the current superblock so the journal geometry fixed at
    # format time survives every metadata publish.  ``snap_head=None``
    # preserves the recorded snapshot chain; the write is always the v4
    # layout, which is how a v3 image migrates on its first publish.
    layout = read_layout(device)
    device.write_block(
        SUPERBLOCK_NO,
        _SUPERBLOCK.pack(
            _MAGIC,
            _VERSION,
            device.block_size,
            meta_head,
            layout.journal_start,
            layout.journal_len,
            layout.snap_head if snap_head is None else snap_head,
        ),
    )


def probe_block_size(path: str) -> int | None:
    """Read the block size recorded in an image file's superblock.

    Returns ``None`` when the file does not start with a valid
    CompressDB superblock (fresh file, foreign data, older layout).
    Works on the raw file, so callers can learn the right geometry
    *before* constructing a block device.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read(_SUPERBLOCK.size)
    except OSError:
        return None
    if len(raw) < _SUPERBLOCK_V3.size:
        return None
    magic, version, block_size, __, __, __ = _SUPERBLOCK_V3.unpack_from(raw, 0)
    if magic != _MAGIC or version not in _READABLE_VERSIONS or block_size <= 0:
        return None
    return block_size

"""blockHashTable: content hash -> block number, with chained buckets.

Section 4.2/4.3 of the paper: the key is (the hash of) a block's
content, the value is its block number.  A 64-bit hash is reduced
modulo the table length to pick a bucket; buckets are linked lists, and
on lookup the candidate blocks' contents are compared byte-for-byte so
the system is resilient to hash collisions.

The table additionally keeps a reverse map ``block -> hash`` so a
block's record can be deleted when its content changes (Algorithm 1,
lines 3 and 11).  Both maps count toward the memory figures reported in
Table 3.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Optional

#: Per-entry memory estimate (bytes) used for Table 3 reporting: one
#: 64-bit hash, one block number, and chain/bucket overhead.
ENTRY_MEMORY_BYTES = 36


def hash_block(content: bytes) -> int:
    """Stable 64-bit content hash (blake2b truncated to 8 bytes)."""
    digest = hashlib.blake2b(content, digest_size=8).digest()
    return int.from_bytes(digest, "little")


class BlockHashTable:
    """Chained hash table mapping block content to block numbers.

    ``reader`` fetches a block's current content by number; it is used
    to confirm candidate matches byte-for-byte.
    """

    def __init__(
        self,
        reader: Callable[[int], bytes],
        length: int = 1 << 16,
    ) -> None:
        if length <= 0:
            raise ValueError("table length must be positive")
        self._reader = reader
        self._length = length
        self._buckets: list[list[tuple[int, int]]] = [[] for __ in range(length)]
        self._block_hash: dict[int, int] = {}
        self._entries = 0
        self.probe_comparisons = 0

    def __len__(self) -> int:
        return self._entries

    def __contains__(self, block_no: int) -> bool:
        return block_no in self._block_hash

    def _bucket_for(self, hashed: int) -> list[tuple[int, int]]:
        return self._buckets[hashed % self._length]

    # -- paper operations -------------------------------------------------
    def find_duplicate(self, content: bytes) -> Optional[int]:
        """Return the block number of a live block with identical content.

        This is ``hash_find_duplicate`` from Algorithm 1.  Candidates
        with the same 64-bit hash are verified by comparing the actual
        block contents.
        """
        hashed = hash_block(content)
        for entry_hash, block_no in self._bucket_for(hashed):
            if entry_hash != hashed:
                continue
            self.probe_comparisons += 1
            if self._reader(block_no) == content:
                return block_no
        return None

    def add_record(self, block_no: int, content: bytes) -> None:
        """Register ``block_no`` as holding ``content``."""
        if block_no in self._block_hash:
            raise KeyError(f"block {block_no} already recorded")
        hashed = hash_block(content)
        self._bucket_for(hashed).append((hashed, block_no))
        self._block_hash[block_no] = hashed
        self._entries += 1

    def delete_record(self, block_no: int) -> None:
        """Remove the record for ``block_no`` (before its content changes)."""
        hashed = self._block_hash.pop(block_no, None)
        if hashed is None:
            raise KeyError(f"block {block_no} not recorded")
        bucket = self._bucket_for(hashed)
        for i, (entry_hash, entry_block) in enumerate(bucket):
            if entry_block == block_no and entry_hash == hashed:
                bucket.pop(i)
                self._entries -= 1
                return
        raise KeyError(f"block {block_no} missing from bucket")  # pragma: no cover

    # -- introspection ------------------------------------------------------
    def memory_bytes(self) -> int:
        """Estimated memory footprint, for Table 3."""
        return self._entries * ENTRY_MEMORY_BYTES

    def clear(self) -> None:
        """Drop every record (the table is not kept across a remount)."""
        self._buckets = [[] for __ in range(self._length)]
        self._block_hash.clear()
        self._entries = 0

    def load_factor(self) -> float:
        return self._entries / self._length

    def check_invariants(self) -> None:
        """Verify bucket membership matches the reverse map (for tests)."""
        seen = 0
        for bucket_no, bucket in enumerate(self._buckets):
            for entry_hash, block_no in bucket:
                if entry_hash % self._length != bucket_no:
                    raise AssertionError("entry in wrong bucket")
                if self._block_hash.get(block_no) != entry_hash:
                    raise AssertionError("reverse map out of sync")
                seen += 1
        if seen != self._entries:
            raise AssertionError(f"entry count mismatch: {seen} != {self._entries}")

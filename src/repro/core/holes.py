"""blockHole: metadata describing data holes created by insert/delete.

Section 4.2: file systems only support aligned writes, so unaligned
``insert``/``delete`` operations must pad the affected blocks with
*holes* to keep everything block-aligned without rewriting neighbours.
The blockHole structure records the offset and size of each hole; it is
small, so the paper keeps it both in memory and on disk.

In this reproduction the authoritative hole state lives in the inodes
(each slot's ``used`` count), which guarantees it can never drift from
the data.  :class:`HoleDirectory` is the explicit blockHole *view* of
that state: it enumerates holes per file, estimates the structure's
memory footprint for Table 3, and serialises the metadata for the
on-disk copy.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.storage.inode import Inode

#: Per-hole record: slot index (u32), hole offset in block (u32), size (u32).
_HOLE = struct.Struct("<III")

#: Memory estimate per tracked hole, for Table 3 reporting.
HOLE_MEMORY_BYTES = _HOLE.size + 8


@dataclass(frozen=True)
class Hole:
    """One hole: in slot ``slot_index``, valid data ends at ``offset``."""

    slot_index: int
    offset: int
    size: int


class HoleDirectory:
    """Enumerates and accounts for holes across a set of files."""

    def __init__(self, inodes: Mapping[str, Inode]) -> None:
        self._inodes = inodes

    def holes_for(self, path: str) -> Iterator[Hole]:
        """Yield every hole in the file at ``path``, in slot order."""
        inode = self._inodes[path]
        for index, slot in enumerate(inode.iter_slots()):
            hole = slot.hole_size(inode.block_size)
            if hole > 0:
                yield Hole(slot_index=index, offset=slot.used, size=hole)

    def hole_count(self, path: str) -> int:
        return self._inodes[path].hole_slots

    def hole_bytes(self, path: str) -> int:
        return self._inodes[path].hole_bytes

    def total_hole_count(self) -> int:
        return sum(inode.hole_slots for inode in self._inodes.values())

    def total_hole_bytes(self) -> int:
        return sum(inode.hole_bytes for inode in self._inodes.values())

    def memory_bytes(self) -> int:
        """Estimated in-memory blockHole footprint, for Table 3."""
        return self.total_hole_count() * HOLE_MEMORY_BYTES

    def check_consistency(self) -> int:
        """Count disagreements between the hole view and the inodes.

        Used by ``fsck``: re-enumerates every hole through
        :meth:`holes_for` and cross-checks the inodes' cached
        ``hole_slots``/``hole_bytes`` accounting plus each hole's
        geometry (``offset + size`` must equal the block size, sizes
        must be positive).  Returns the number of inconsistencies —
        0 on a healthy image.
        """
        bad = 0
        for path, inode in self._inodes.items():
            holes = list(self.holes_for(path))
            if len(holes) != inode.hole_slots:
                bad += 1
            if sum(hole.size for hole in holes) != inode.hole_bytes:
                bad += 1
            for hole in holes:
                if hole.size <= 0 or hole.offset + hole.size != inode.block_size:
                    bad += 1
        return bad

    def serialize(self, path: str) -> bytes:
        """Pack the file's hole metadata for the on-disk copy."""
        records = list(self.holes_for(path))
        payload = struct.pack("<I", len(records))
        for hole in records:
            payload += _HOLE.pack(hole.slot_index, hole.offset, hole.size)
        return payload

    @staticmethod
    def deserialize(payload: bytes) -> list[Hole]:
        """Unpack hole metadata produced by :meth:`serialize`."""
        (count,) = struct.unpack_from("<I", payload, 0)
        holes = []
        offset = 4
        for __ in range(count):
            slot_index, hole_offset, size = _HOLE.unpack_from(payload, offset)
            holes.append(Hole(slot_index, hole_offset, size))
            offset += _HOLE.size
        return holes

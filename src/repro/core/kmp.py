"""Knuth-Morris-Pratt string matching over bytes.

The paper's ``search`` operation (Section 4.4) uses KMP for both the
in-block phase and the cross-block sliding-window phase.  Occurrences
may overlap; all are reported.
"""

from __future__ import annotations

from typing import Iterator


def failure_function(pattern: bytes) -> list[int]:
    """Classic KMP prefix (failure) table for ``pattern``."""
    table = [0] * len(pattern)
    k = 0
    for i in range(1, len(pattern)):
        while k > 0 and pattern[i] != pattern[k]:
            k = table[k - 1]
        if pattern[i] == pattern[k]:
            k += 1
        table[i] = k
    return table


def iter_matches(text: bytes, pattern: bytes) -> Iterator[int]:
    """Yield every (possibly overlapping) match offset of pattern in text."""
    m = len(pattern)
    if m == 0 or m > len(text):
        return
    table = failure_function(pattern)
    k = 0
    for i, byte in enumerate(text):
        while k > 0 and byte != pattern[k]:
            k = table[k - 1]
        if byte == pattern[k]:
            k += 1
        if k == m:
            yield i - m + 1
            k = table[k - 1]


def find_all(text: bytes, pattern: bytes) -> list[int]:
    """All (possibly overlapping) match offsets of pattern in text."""
    return list(iter_matches(text, pattern))


def count_matches(text: bytes, pattern: bytes) -> int:
    """Number of (possibly overlapping) occurrences of pattern in text."""
    return sum(1 for _ in iter_matches(text, pattern))

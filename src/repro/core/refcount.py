"""blockRefCount: per-block reference counts with a persistent partition.

Section 4.2: *"the data structure blockRefCount is usually the largest
one ... we allocate a partition on disk to store all the reference
counts so that the compressed data will not be destroyed in practice
even after a remount (unmount and mount) or failure of file system."*

Counts live in a dict for fast access; :meth:`persist` serialises them
into blocks allocated from the device, and :meth:`restore` reloads them
after a simulated remount.  The compressed data (shared leaf blocks)
therefore survives the loss of the in-memory blockHashTable.
"""

from __future__ import annotations

import struct

from repro.storage.block_device import BlockDevice

#: On-disk entry layout: block number (u64) + count (u32).
_ENTRY = struct.Struct("<QI")
_HEADER = struct.Struct("<I")  # number of entries in this partition block


class RefcountUnderflowError(ValueError):
    """``decref`` of a block whose reference count is already zero.

    A dedicated type (raised identically whether the count lives in the
    cache dict or was just restored from the persisted partition) so
    callers can distinguish a genuine accounting bug from the generic
    argument errors ``ValueError`` also covers.  Subclasses
    ``ValueError`` for backward compatibility with existing handlers.
    """


class BlockRefCount:
    """Reference counts for data blocks, persistable to the device.

    Two layers share one ``get()`` surface:

    * **durable counts** — references held by inode slot tables and
      snapshots; serialised into the on-device partition by
      :meth:`persist`;
    * **pins** — transient references held by MVCC session snapshots
      (:mod:`repro.mvcc`).  Pins keep a block alive and force the
      copy-on-write path (``get() > 1``), but they are memory-only:
      :meth:`persist` deliberately excludes them, so a crash or remount
      — where every session dies — recovers to an image whose counts
      match exactly the durable references, and fsck stays clean.
    """

    def __init__(self, device: BlockDevice) -> None:
        self._device = device
        self._counts: dict[int, int] = {}
        self._pins: dict[int, int] = {}
        self._partition_blocks: list[int] = []

    # -- in-memory operations ---------------------------------------------
    def get(self, block_no: int) -> int:
        """Durable references plus transient pins — the liveness test."""
        return self._counts.get(block_no, 0) + self._pins.get(block_no, 0)

    def incref(self, block_no: int) -> int:
        count = self._counts.get(block_no, 0) + 1
        self._counts[block_no] = count
        return count + self._pins.get(block_no, 0)

    def decref(self, block_no: int) -> int:
        """Drop one durable reference; returns the combined remainder.

        Underflow is judged on the durable layer alone (pins are not
        droppable through ``decref``), but the return value includes
        pins so a pinned block never reads as free.
        """
        count = self._counts.get(block_no, 0)
        if count <= 0:
            raise RefcountUnderflowError(
                f"decref of unreferenced block {block_no}"
            )
        count -= 1
        if count == 0:
            del self._counts[block_no]
        else:
            self._counts[block_no] = count
        return count + self._pins.get(block_no, 0)

    # -- transient pins (MVCC snapshot references) --------------------------
    def pin(self, block_no: int) -> int:
        """Take one transient pin; returns the combined count."""
        pins = self._pins.get(block_no, 0) + 1
        self._pins[block_no] = pins
        return self._counts.get(block_no, 0) + pins

    def unpin(self, block_no: int) -> int:
        """Drop one transient pin; returns the combined remainder.

        A return of 0 means the block is now orphaned (no durable
        reference either) and the caller must free it.
        """
        pins = self._pins.get(block_no, 0)
        if pins <= 0:
            raise RefcountUnderflowError(
                f"unpin of unpinned block {block_no}"
            )
        pins -= 1
        if pins == 0:
            del self._pins[block_no]
        else:
            self._pins[block_no] = pins
        return self._counts.get(block_no, 0) + pins

    def pinned_counts(self) -> dict[int, int]:
        """block_no -> transient pin count (fsck accounting)."""
        return dict(self._pins)

    def total_pins(self) -> int:
        return sum(self._pins.values())

    def set(self, block_no: int, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            self._counts.pop(block_no, None)
        else:
            self._counts[block_no] = count

    def live_blocks(self) -> list[int]:
        """Block numbers with a positive reference count."""
        return list(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, block_no: int) -> bool:
        return block_no in self._counts

    def total_references(self) -> int:
        return sum(self._counts.values())

    def memory_bytes(self) -> int:
        """Estimated in-memory footprint (dict entries), for reporting."""
        return len(self._counts) * (_ENTRY.size + 16)

    # -- persistence ---------------------------------------------------------
    def persist(self) -> int:
        """Write all counts into a partition on the device.

        Returns the number of partition blocks used.  Previously used
        partition blocks are recycled first.
        """
        entries_per_block = (self._device.block_size - _HEADER.size) // _ENTRY.size
        if entries_per_block <= 0:
            raise ValueError("block size too small for refcount partition")
        items = sorted(self._counts.items())
        needed = max(1, -(-len(items) // entries_per_block))
        if not all(
            self._device.can_overwrite_in_place(block_no)
            for block_no in self._partition_blocks
        ):
            # The partition is part of a committed image on a journaled
            # device: shadow it — fresh blocks take the new counts with
            # direct writes, the old blocks are freed (deferred until
            # the epoch commits), and the superblock's metadata image
            # flips to the new list atomically.
            old = self._partition_blocks
            self._partition_blocks = [self._device.allocate() for __ in range(needed)]
            for block_no in old:
                self._device.free(block_no)
        while len(self._partition_blocks) < needed:
            self._partition_blocks.append(self._device.allocate())
        while len(self._partition_blocks) > needed:
            self._device.free(self._partition_blocks.pop())
        writes: list[tuple[int, bytes]] = []
        for i in range(needed):
            chunk = items[i * entries_per_block : (i + 1) * entries_per_block]
            payload = _HEADER.pack(len(chunk)) + b"".join(
                _ENTRY.pack(block_no, count) for block_no, count in chunk
            )
            writes.append((self._partition_blocks[i], payload))
        self._device.write_blocks(writes)
        return needed

    def restore(self) -> None:
        """Reload counts from the partition after a simulated remount."""
        counts: dict[int, int] = {}
        for payload in self._device.read_blocks(self._partition_blocks):
            (n_entries,) = _HEADER.unpack_from(payload, 0)
            offset = _HEADER.size
            for __ in range(n_entries):
                entry_block, count = _ENTRY.unpack_from(payload, offset)
                counts[entry_block] = count
                offset += _ENTRY.size
        self._counts = counts

    @property
    def partition_block_count(self) -> int:
        return len(self._partition_blocks)

    @property
    def partition_blocks(self) -> list[int]:
        """The device blocks currently holding the persisted counts."""
        return list(self._partition_blocks)

    def adopt_partition(self, blocks: list[int]) -> None:
        """Point at an existing partition (used when remounting a device)."""
        self._partition_blocks = list(blocks)

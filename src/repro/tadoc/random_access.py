"""Random access over TADOC grammars: word2rule and rule2location.

Section 2.1 ("Random access"): Zhang et al. built indexes on word
granularity — ``word2rule`` locates the rules containing a word, and
``rule2location`` maps a rule to the absolute offsets at which its
expansion appears in the original token stream.  Together they answer
"where does word w occur?" and support extracting an arbitrary token
range without expanding the whole grammar.
"""

from __future__ import annotations

from typing import Optional

from repro.tadoc.dag import topological_order
from repro.tadoc.sequitur import Grammar, RuleRef, Token


def rule_lengths(grammar: Grammar) -> dict[int, int]:
    """Expanded token length of every rule (children before parents)."""
    lengths: dict[int, int] = {}
    for rule_id in topological_order(grammar):
        total = 0
        for element in grammar.rules[rule_id]:
            if isinstance(element, RuleRef):
                total += lengths[element.rule_id]
            else:
                total += 1
        lengths[rule_id] = total
    return lengths


def word2rule(grammar: Grammar) -> dict[Token, set[int]]:
    """Map each word to the set of rules whose body contains it directly."""
    index: dict[Token, set[int]] = {}
    for rule_id, body in grammar.rules.items():
        for element in body:
            if not isinstance(element, RuleRef):
                index.setdefault(element, set()).add(rule_id)
    return index


def rule2location(grammar: Grammar) -> dict[int, list[int]]:
    """Absolute token offsets at which each rule's expansion begins.

    Computed top-down: the root starts at offset 0; every reference in
    a body starts at each of its parent's locations plus the prefix
    length before the reference.
    """
    lengths = rule_lengths(grammar)
    locations: dict[int, list[int]] = {rule_id: [] for rule_id in grammar.rules}
    locations[grammar.root] = [0]
    for rule_id in reversed(topological_order(grammar)):
        starts = locations[rule_id]
        prefix = 0
        for element in grammar.rules[rule_id]:
            if isinstance(element, RuleRef):
                child = locations[element.rule_id]
                child.extend(start + prefix for start in starts)
                prefix += lengths[element.rule_id]
            else:
                prefix += 1
    for rule_id in locations:
        locations[rule_id].sort()
    return locations


def locate_word(grammar: Grammar, word: Token) -> list[int]:
    """Absolute token offsets of every occurrence of ``word``.

    Uses word2rule to restrict attention to the rules containing the
    word directly, and rule2location to translate the in-rule offsets
    to absolute positions.
    """
    lengths = rule_lengths(grammar)
    containing = word2rule(grammar).get(word)
    if not containing:
        return []
    locations = rule2location(grammar)
    offsets: list[int] = []
    for rule_id in containing:
        prefix = 0
        local: list[int] = []
        for element in grammar.rules[rule_id]:
            if isinstance(element, RuleRef):
                prefix += lengths[element.rule_id]
            else:
                if element == word:
                    local.append(prefix)
                prefix += 1
        for start in locations[rule_id]:
            offsets.extend(start + position for position in local)
    return sorted(offsets)


def extract(grammar: Grammar, offset: int, length: int) -> list[Token]:
    """Extract ``length`` tokens starting at token ``offset``.

    Descends the grammar using rule lengths, expanding only the rules
    that intersect the requested range.
    """
    if offset < 0 or length < 0:
        raise ValueError("offset and length must be non-negative")
    lengths = rule_lengths(grammar)
    total = lengths[grammar.root]
    if offset >= total or length == 0:
        return []
    length = min(length, total - offset)
    out: list[Token] = []
    # Stack of (rule_id, skip) pieces still to emit; skip applies to the
    # front of the rule's expansion.
    stack: list[tuple[str, object, int]] = [("rule", grammar.root, offset)]
    remaining = length
    while stack and remaining > 0:
        kind, value, skip = stack.pop()
        if kind == "tok":
            out.append(value)
            remaining -= 1
            continue
        assert isinstance(value, int)
        pending: list[tuple[str, object, int]] = []
        emitted_budget = remaining
        for element in grammar.rules[value]:
            if emitted_budget <= 0:
                break
            size = lengths[element.rule_id] if isinstance(element, RuleRef) else 1
            if skip >= size:
                skip -= size
                continue
            if isinstance(element, RuleRef):
                take = min(size - skip, emitted_budget)
                pending.append(("rule", element.rule_id, skip))
                emitted_budget -= take
                skip = 0
            else:
                pending.append(("tok", element, 0))
                emitted_budget -= 1
                skip = 0
        stack.extend(reversed(pending))
    return out


class RandomAccessIndex:
    """Bundled indexes for repeated random-access queries on one grammar."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.lengths = rule_lengths(grammar)
        self.word_index = word2rule(grammar)
        self._locations: Optional[dict[int, list[int]]] = None

    @property
    def locations(self) -> dict[int, list[int]]:
        if self._locations is None:
            self._locations = rule2location(self.grammar)
        return self._locations

    @property
    def total_tokens(self) -> int:
        return self.lengths[self.grammar.root]

    def extract(self, offset: int, length: int) -> list[Token]:
        return extract(self.grammar, offset, length)

    def locate(self, word: Token) -> list[int]:
        return locate_word(self.grammar, word)

    def contains(self, word: Token) -> bool:
        return word in self.word_index

"""Sequitur grammar inference (Nevill-Manning & Witten, 1997).

TADOC's compression comes from Sequitur (paper Section 2.1/3): the
input token sequence is rewritten into a context-free grammar in which
every repeated digram is replaced by a rule.  Two invariants are
maintained online:

* **digram uniqueness** — no pair of adjacent symbols appears more than
  once in the grammar;
* **rule utility** — every rule is referenced at least twice.

The structure follows the reference implementation distributed by the
authors (``sequitur_simple.cc``): rules are circular doubly-linked
symbol lists behind a guard node, and a global digram index maps each
adjacent pair to its canonical occurrence.

The output :class:`Grammar` is the hierarchical representation whose
DAG properties (notably its *depth*) motivate CompressDB's
bounded-depth redesign.  Tokens may be any hashable values;
:func:`tokenize` splits text into words, the granularity TADOC uses.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence

Token = Hashable


class _Rule:
    """A grammar rule: circular doubly-linked symbol list with a guard."""

    __slots__ = ("id", "count", "guard")

    def __init__(self, rule_id: int) -> None:
        self.id = rule_id
        self.count = 0  # number of references to this rule
        self.guard = _Symbol(None, owner=self)
        self.guard.next = self.guard
        self.guard.prev = self.guard

    def first(self) -> "_Symbol":
        return self.guard.next

    def last(self) -> "_Symbol":
        return self.guard.prev

    def symbols(self) -> Iterable["_Symbol"]:
        symbol = self.first()
        while not symbol.is_guard:
            yield symbol
            symbol = symbol.next


class _Symbol:
    """A terminal token, a rule reference, or a rule's guard node."""

    __slots__ = ("terminal", "rule", "owner", "prev", "next")

    def __init__(
        self,
        terminal: Optional[Token] = None,
        rule: Optional[_Rule] = None,
        owner: Optional[_Rule] = None,
    ) -> None:
        self.terminal = terminal
        self.rule = rule
        self.owner = owner  # set only on guard nodes
        if rule is not None:
            rule.count += 1
        self.prev: "_Symbol" = self
        self.next: "_Symbol" = self

    @classmethod
    def copy_of(cls, other: "_Symbol") -> "_Symbol":
        if other.rule is not None:
            return cls(rule=other.rule)
        return cls(terminal=other.terminal)

    @property
    def is_guard(self) -> bool:
        return self.owner is not None

    @property
    def is_nonterminal(self) -> bool:
        return self.rule is not None

    def value_key(self):
        if self.rule is not None:
            return ("r", self.rule.id)
        return ("t", self.terminal)

    def digram_key(self):
        return (self.value_key(), self.next.value_key())


class Sequitur:
    """Online Sequitur compressor.  Feed tokens, then take the grammar."""

    def __init__(self) -> None:
        self._next_rule_id = 0
        self.root = self._new_rule()
        self._digrams: dict[tuple, _Symbol] = {}

    def _new_rule(self) -> _Rule:
        rule = _Rule(self._next_rule_id)
        self._next_rule_id += 1
        return rule

    # -- digram index ----------------------------------------------------------
    def _delete_digram(self, symbol: _Symbol) -> None:
        """Drop the index entry for the digram starting at ``symbol``.

        In a run of identical symbols ("x x x") the overlapping digrams
        share one index key; when the indexed occurrence disappears the
        surviving overlap must take over the slot, or a later duplicate
        of the same digram would go undetected.
        """
        if symbol.is_guard or symbol.next.is_guard:
            return
        key = symbol.digram_key()
        if self._digrams.get(key) is not symbol:
            return
        del self._digrams[key]
        same = symbol.value_key()
        if key != (same, same):
            return
        prev = symbol.prev
        if not prev.is_guard and prev.value_key() == same:
            self._digrams[key] = prev
            return
        nxt = symbol.next
        if not nxt.next.is_guard and nxt.next.value_key() == same:
            self._digrams[key] = nxt

    # -- linked-list plumbing -----------------------------------------------------
    def _join(self, left: _Symbol, right: _Symbol) -> None:
        self._delete_digram(left)
        left.next = right
        right.prev = left

    def _insert_after(self, position: _Symbol, symbol: _Symbol) -> None:
        self._join(symbol, position.next)
        self._join(position, symbol)

    def _remove(self, symbol: _Symbol) -> None:
        """Unlink a non-guard symbol, maintaining counts and digrams."""
        self._join(symbol.prev, symbol.next)
        self._delete_digram(symbol)
        if symbol.rule is not None:
            symbol.rule.count -= 1

    # -- the algorithm ----------------------------------------------------------------
    def feed(self, token: Token) -> None:
        """Append one terminal to the root rule and restore the invariants."""
        symbol = _Symbol(terminal=token)
        self._insert_after(self.root.last(), symbol)
        if not symbol.prev.is_guard:
            self._check(symbol.prev)

    def feed_many(self, tokens: Iterable[Token]) -> None:
        for token in tokens:
            self.feed(token)

    def _check(self, first: _Symbol) -> bool:
        """Enforce digram uniqueness for the digram at ``first``."""
        if first.is_guard or first.next.is_guard:
            return False
        key = first.digram_key()
        match = self._digrams.get(key)
        if match is None:
            self._digrams[key] = first
            return False
        if match.next is not first and first.next is not match:
            self._match(first, match)
        return True

    def _match(self, new: _Symbol, old: _Symbol) -> None:
        """Rewrite two occurrences of the same digram into a rule."""
        if old.prev.is_guard and old.next.next.is_guard:
            # The old occurrence is exactly a rule body: reuse that rule.
            rule = old.prev.owner
            assert rule is not None
            self._substitute(new, rule)
        else:
            rule = self._new_rule()
            self._insert_after(rule.guard, _Symbol.copy_of(new))
            self._insert_after(rule.first(), _Symbol.copy_of(new.next))
            self._substitute(old, rule)
            self._substitute(new, rule)
            self._digrams[rule.first().digram_key()] = rule.first()
        # Rule utility: expand a now-single-use rule inside the rule body.
        for end in (rule.first(), rule.last()):
            if end.is_nonterminal and end.rule is not None and end.rule.count == 1:
                self._expand(end)

    def _substitute(self, first: _Symbol, rule: _Rule) -> None:
        """Replace the digram starting at ``first`` with a rule reference."""
        position = first.prev
        self._remove(position.next)
        self._remove(position.next)
        self._insert_after(position, _Symbol(rule=rule))
        if not self._check(position):
            self._check(position.next)

    def _expand(self, reference: _Symbol) -> None:
        """Inline the sole remaining reference to a rule (rule utility)."""
        rule = reference.rule
        assert rule is not None and rule.count == 1
        left = reference.prev
        right = reference.next
        first = rule.first()
        last = rule.last()
        if first.is_guard:  # empty rule body; just drop the reference
            self._remove(reference)
            return
        self._delete_digram(reference)
        self._delete_digram(reference.prev)
        left.next = first
        first.prev = left
        last.next = right
        right.prev = last
        rule.count -= 1
        # Re-validate the two seam digrams.  Using _check (instead of
        # blindly indexing) keeps overlapping digrams like "0 0 0" from
        # stealing the index slot of their earlier occurrence.
        self._check(last)
        if left.next is first and not left.is_guard:
            # Left seam still intact after the right-seam check.
            self._check(left)

    # -- output ---------------------------------------------------------------------------
    def grammar(self) -> "Grammar":
        """Snapshot the current grammar (the root rule id is 0)."""
        rules: dict[int, list] = {}
        stack = [self.root]
        while stack:
            rule = stack.pop()
            if rule.id in rules:
                continue
            body: list = []
            for symbol in rule.symbols():
                if symbol.is_nonterminal:
                    assert symbol.rule is not None
                    body.append(RuleRef(symbol.rule.id))
                    stack.append(symbol.rule)
                else:
                    body.append(symbol.terminal)
            rules[rule.id] = body
        return Grammar(rules=rules, root=self.root.id)


class RuleRef:
    """Reference to a rule inside a grammar body."""

    __slots__ = ("rule_id",)

    def __init__(self, rule_id: int) -> None:
        self.rule_id = rule_id

    def __eq__(self, other) -> bool:
        return isinstance(other, RuleRef) and other.rule_id == self.rule_id

    def __hash__(self) -> int:
        return hash(("ruleref", self.rule_id))

    def __repr__(self) -> str:
        return f"R{self.rule_id}"


class Grammar:
    """An immutable grammar snapshot produced by :class:`Sequitur`."""

    def __init__(self, rules: dict[int, list], root: int) -> None:
        self.rules = rules
        self.root = root

    def expand(self, rule_id: Optional[int] = None) -> list[Token]:
        """Fully expand a rule (the root by default) back into tokens."""
        if rule_id is None:
            rule_id = self.root
        out: list[Token] = []
        stack: list = [("rule", rule_id)]
        while stack:
            kind, value = stack.pop()
            if kind == "tok":
                out.append(value)
                continue
            for element in reversed(self.rules[value]):
                if isinstance(element, RuleRef):
                    stack.append(("rule", element.rule_id))
                else:
                    stack.append(("tok", element))
        return out

    def rule_count(self) -> int:
        return len(self.rules)

    def total_symbols(self) -> int:
        """Symbols across all rule bodies: the compressed-size metric."""
        return sum(len(body) for body in self.rules.values())

    def reference_counts(self) -> dict[int, int]:
        """How many times each rule is referenced."""
        counts = {rule_id: 0 for rule_id in self.rules}
        for body in self.rules.values():
            for element in body:
                if isinstance(element, RuleRef):
                    counts[element.rule_id] += 1
        return counts

    def check_invariants(self) -> None:
        """Digram uniqueness + rule utility, verified offline."""
        digrams: set[tuple] = set()
        for body in self.rules.values():
            pairs = list(zip(body, body[1:]))
            for i, (a, b) in enumerate(pairs):
                key = (
                    ("r", a.rule_id) if isinstance(a, RuleRef) else ("t", a),
                    ("r", b.rule_id) if isinstance(b, RuleRef) else ("t", b),
                )
                if key in digrams:
                    # Overlapping identical digrams ("a a a") are allowed.
                    if i > 0 and pairs[i - 1] == (a, b) and key[0] == key[1]:
                        continue
                    raise AssertionError(f"repeated digram {key}")
                digrams.add(key)
        for rule_id, count in self.reference_counts().items():
            if rule_id == self.root:
                continue
            if count < 2:
                raise AssertionError(f"rule {rule_id} referenced {count} time(s)")


def tokenize(text: str) -> list[str]:
    """Split text into words — TADOC's processing granularity."""
    return text.split()


def compress(tokens: Sequence[Token]) -> Grammar:
    """Run Sequitur over a token sequence and return the grammar."""
    seq = Sequitur()
    seq.feed_many(tokens)
    return seq.grammar()


def compress_files(files: Sequence[Sequence[Token]]) -> Grammar:
    """Compress several files together with ``spt`` boundary markers.

    Each boundary is a unique sentinel token ``("spt", i)`` inserted in
    the root (Figure 1b), so redundancy between files is exploited
    while the boundaries stay identifiable.
    """
    seq = Sequitur()
    for i, tokens in enumerate(files):
        if i > 0:
            seq.feed(("spt", i))
        seq.feed_many(tokens)
    return seq.grammar()


def split_files(grammar: Grammar) -> list[list[Token]]:
    """Invert :func:`compress_files`: expand and split at spt markers."""
    tokens = grammar.expand()
    files: list[list[Token]] = [[]]
    for token in tokens:
        if isinstance(token, tuple) and len(token) == 2 and token[0] == "spt":
            files.append([])
        else:
            files[-1].append(token)
    return files

"""TADOC: the rule-based compression baseline CompressDB builds on."""

from repro.tadoc.analytics import (
    count_word,
    file_word_counts,
    inverted_index,
    rule_usage,
    unique_words,
    word_count,
)
from repro.tadoc.dag import DagStats, compute_stats, dag_depth, topological_order
from repro.tadoc.random_access import (
    RandomAccessIndex,
    extract,
    locate_word,
    rule2location,
    rule_lengths,
    word2rule,
)
from repro.tadoc.sequitur import (
    Grammar,
    RuleRef,
    Sequitur,
    compress,
    compress_files,
    split_files,
    tokenize,
)

__all__ = [
    "DagStats",
    "Grammar",
    "RandomAccessIndex",
    "RuleRef",
    "Sequitur",
    "compress",
    "compress_files",
    "compute_stats",
    "count_word",
    "dag_depth",
    "extract",
    "file_word_counts",
    "inverted_index",
    "locate_word",
    "rule2location",
    "rule_lengths",
    "rule_usage",
    "split_files",
    "tokenize",
    "topological_order",
    "unique_words",
    "word2rule",
    "word_count",
]

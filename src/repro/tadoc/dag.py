"""DAG-level analysis of TADOC grammars.

Section 2.2 of the paper motivates CompressDB with properties of the
Sequitur rule DAG: its *depth* can reach hundreds of levels and nodes
can have many parents, which makes a random update — a recursive rule
split along every parent chain — cost O(n^d).  This module computes
those properties so the motivation experiment
(``benchmarks/bench_tadoc_motivation.py``) can reproduce the argument,
and contrasts them with CompressDB's constant-depth organisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.tadoc.sequitur import Grammar, RuleRef


@dataclass(frozen=True)
class DagStats:
    """Structural summary of a grammar's rule DAG."""

    rules: int
    edges: int
    depth: int
    max_parents: int
    avg_parents: float
    terminals: int

    def update_cost_unbounded(self) -> float:
        """Paper's O(n^d) estimate of a recursive rule split.

        ``n`` is the average parent count and ``d`` the DAG depth; the
        value is clamped to a float so deep grammars don't overflow.
        """
        if self.depth <= 0:
            return 1.0
        try:
            return float(max(self.avg_parents, 1.0) ** self.depth)
        except OverflowError:  # pragma: no cover - astronomically deep DAGs
            return float("inf")

    def update_cost_bounded(self, bounded_depth: int = 2) -> float:
        """CompressDB's O(d) cost with its constant pointer-tree depth."""
        return float(bounded_depth)


def children(grammar: Grammar, rule_id: int) -> list[int]:
    """Distinct rule ids referenced by ``rule_id``'s body."""
    seen: list[int] = []
    seen_set: set[int] = set()
    for element in grammar.rules[rule_id]:
        if isinstance(element, RuleRef) and element.rule_id not in seen_set:
            seen_set.add(element.rule_id)
            seen.append(element.rule_id)
    return seen


def topological_order(grammar: Grammar) -> list[int]:
    """Rule ids ordered children-before-parents (iterative DFS)."""
    order: list[int] = []
    state: dict[int, int] = {}  # 0 = visiting, 1 = done
    stack: list[tuple[int, bool]] = [(grammar.root, False)]
    while stack:
        rule_id, processed = stack.pop()
        if processed:
            state[rule_id] = 1
            order.append(rule_id)
            continue
        if rule_id in state:
            if state[rule_id] == 0:
                raise ValueError("cycle detected in grammar DAG")
            continue
        state[rule_id] = 0
        stack.append((rule_id, True))
        for child in children(grammar, rule_id):
            if state.get(child) != 1:
                stack.append((child, False))
    return order


def dag_depth(grammar: Grammar) -> int:
    """Longest root-to-leaf path length (the paper's depth metric)."""
    depth: dict[int, int] = {}
    for rule_id in topological_order(grammar):
        kids = children(grammar, rule_id)
        depth[rule_id] = 1 + max((depth[k] for k in kids), default=0)
    return depth[grammar.root]


def compute_stats(
    grammar: Grammar, registry: Optional[MetricsRegistry] = None
) -> DagStats:
    """Full structural summary of the grammar DAG.

    When ``registry`` is given, the summary is also published as
    ``tadoc.dag.*`` gauges so grammar structure shows up next to the
    engine metrics in one snapshot.
    """
    parents: dict[int, int] = {rule_id: 0 for rule_id in grammar.rules}
    edges = 0
    terminals = 0
    for body in grammar.rules.values():
        for element in body:
            if isinstance(element, RuleRef):
                parents[element.rule_id] += 1
                edges += 1
            else:
                terminals += 1
    non_root = [count for rule_id, count in parents.items() if rule_id != grammar.root]
    max_parents = max(non_root, default=0)
    avg_parents = sum(non_root) / len(non_root) if non_root else 0.0
    stats = DagStats(
        rules=len(grammar.rules),
        edges=edges,
        depth=dag_depth(grammar),
        max_parents=max_parents,
        avg_parents=avg_parents,
        terminals=terminals,
    )
    if registry is not None:
        registry.gauge("tadoc.dag.rules").set(stats.rules)
        registry.gauge("tadoc.dag.edges").set(stats.edges)
        registry.gauge("tadoc.dag.depth").set(stats.depth)
        registry.gauge("tadoc.dag.max_parents").set(stats.max_parents)
        registry.gauge("tadoc.dag.avg_parents").set(stats.avg_parents)
        registry.gauge("tadoc.dag.terminals").set(stats.terminals)
    return stats


def to_networkx(grammar: Grammar):
    """Export the rule DAG as a ``networkx.DiGraph`` (optional helper)."""
    import networkx as nx

    graph = nx.DiGraph()
    for rule_id in grammar.rules:
        graph.add_node(rule_id)
    for rule_id, body in grammar.rules.items():
        for element in body:
            if isinstance(element, RuleRef):
                graph.add_edge(rule_id, element.rule_id)
    return graph

"""Data analytics directly on TADOC-compressed grammars.

Section 2.1 (Figure 1c): analytics become DAG traversals with rule
interpretation — each rule computes a local result once, and parents
combine children's results weighted by how often they reference them.
Word count is the canonical example; the same bottom-up scheme powers
the per-file variants used for multi-file archives.
"""

from __future__ import annotations

from collections import Counter

from repro.tadoc.dag import topological_order
from repro.tadoc.sequitur import Grammar, RuleRef, Token


def _is_boundary(token: Token) -> bool:
    return isinstance(token, tuple) and len(token) == 2 and token[0] == "spt"


def rule_usage(grammar: Grammar) -> dict[int, int]:
    """How many times each rule's expansion appears in the original data.

    The root appears once; every other rule appears once per reference,
    weighted by its parent's own usage.
    """
    usage = {rule_id: 0 for rule_id in grammar.rules}
    usage[grammar.root] = 1
    # Parents before children: reverse topological order.
    for rule_id in reversed(topological_order(grammar)):
        weight = usage[rule_id]
        for element in grammar.rules[rule_id]:
            if isinstance(element, RuleRef):
                usage[element.rule_id] += weight
    return usage


def local_counts(grammar: Grammar) -> dict[int, Counter]:
    """Terminal counts of each rule body (direct terminals only)."""
    counts: dict[int, Counter] = {}
    for rule_id, body in grammar.rules.items():
        counter: Counter = Counter()
        for element in body:
            if not isinstance(element, RuleRef) and not _is_boundary(element):
                counter[element] += 1
        counts[rule_id] = counter
    return counts


def word_count(grammar: Grammar) -> Counter:
    """Global word count without decompression (Figure 1c traversal)."""
    usage = rule_usage(grammar)
    total: Counter = Counter()
    for rule_id, counter in local_counts(grammar).items():
        weight = usage[rule_id]
        if weight == 0:
            continue
        for token, count in counter.items():
            total[token] += count * weight
    return total


def count_word(grammar: Grammar, word: Token) -> int:
    """Occurrences of one word, computed bottom-up per rule."""
    per_rule: dict[int, int] = {}
    for rule_id in topological_order(grammar):
        count = 0
        for element in grammar.rules[rule_id]:
            if isinstance(element, RuleRef):
                count += per_rule[element.rule_id]
            elif element == word:
                count += 1
        per_rule[rule_id] = count
    return per_rule[grammar.root]


def unique_words(grammar: Grammar) -> set:
    """The vocabulary, without expanding the grammar."""
    vocabulary: set = set()
    for body in grammar.rules.values():
        for element in body:
            if not isinstance(element, RuleRef) and not _is_boundary(element):
                vocabulary.add(element)
    return vocabulary


def inverted_index(grammar: Grammar) -> dict[Token, set[int]]:
    """Word -> file numbers, computed without decompression.

    This is TADOC's *inverted index* task (Zhang et al., VLDB'18): each
    rule computes its word set once; the root combines children per
    file segment (``spt`` boundaries split segments).  A rule shared by
    many files contributes its set to each, without re-expansion.
    """
    word_sets: dict[int, set] = {}
    for rule_id in topological_order(grammar):
        words: set = set()
        for element in grammar.rules[rule_id]:
            if isinstance(element, RuleRef):
                words |= word_sets[element.rule_id]
            elif not _is_boundary(element):
                words.add(element)
        word_sets[rule_id] = words
    index: dict[Token, set[int]] = {}
    file_no = 0
    for element in grammar.rules[grammar.root]:
        if _is_boundary(element):
            file_no += 1
            continue
        if isinstance(element, RuleRef):
            for word in word_sets[element.rule_id]:
                index.setdefault(word, set()).add(file_no)
        else:
            index.setdefault(element, set()).add(file_no)
    return index


def file_word_counts(grammar: Grammar) -> list[Counter]:
    """Per-file word counts for a multi-file grammar.

    File boundaries (``spt`` sentinels) are unique tokens, so they can
    only ever appear in the root rule; each root segment between
    boundaries is counted using the rules' precomputed total counters.
    """
    totals: dict[int, Counter] = {}
    for rule_id in topological_order(grammar):
        counter: Counter = Counter()
        for element in grammar.rules[rule_id]:
            if isinstance(element, RuleRef):
                counter += totals[element.rule_id]
            elif not _is_boundary(element):
                counter[element] += 1
        totals[rule_id] = counter
    files: list[Counter] = [Counter()]
    for element in grammar.rules[grammar.root]:
        if isinstance(element, RuleRef):
            files[-1] += totals[element.rule_id]
        elif _is_boundary(element):
            files.append(Counter())
        else:
            files[-1][element] += 1
    return files

"""SessionFS: a whole filesystem view bound to one MVCC session.

The databases in :mod:`repro.databases` are written against the
:class:`~repro.fs.vfs.FileSystem` surface and know nothing about
sessions.  ``SessionFS`` wraps an existing (CompressFS-backed) file
system so that *every* operation — namespace checks, descriptor I/O,
whole-file helpers — routes through one session: queries see the
session's stable snapshot, updates buffer for its first-committer-wins
commit.  Constructing ``MiniSQL(fs, session=s)`` is exactly
``MiniSQL(SessionFS(fs, s))``.

Durability is deliberately deferred: ``fsync``/``close`` are no-ops
here because nothing the session wrote is publishable before its
commit; the journal group-commit acks durability per session.

The facade keeps its own descriptor table, and registers a session
cleanup that reclaims every still-open descriptor when the session
finishes — including a conflict abort, so failed commits leak neither
fd slots nor pinned snapshot images.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import FileExistsInEngine, FileNotFoundInEngine
from repro.fs import fd as fdmod
from repro.fs.errors import FileExists, FileNotFound, InvalidArgument
from repro.fs.vfs import FileSystem


class SessionFS(FileSystem):
    """A :class:`FileSystem` whose every operation runs in one session."""

    def __init__(self, base: FileSystem, session) -> None:
        super().__init__(device=base.device)
        self.base = base
        self.session = session
        # Conflict aborts unwind through the manager, not this facade:
        # the registered cleanup guarantees the descriptor slots die
        # with the session either way.
        session.add_cleanup(self._release_all_fds, key=f"sessionfs:{id(self)}")

    def _release_all_fds(self) -> None:
        for fd in self._fds.open_fds():
            self._fds.release(fd)

    # -- storage primitives, routed through the session ----------------------
    def _create(self, path: str) -> None:
        try:
            self.session.create(path)
        except FileExistsInEngine:
            raise FileExists(path) from None

    def _unlink(self, path: str) -> None:
        try:
            self.session.unlink(path)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _exists(self, path: str) -> bool:
        return self.session.exists(path)

    def _size(self, path: str) -> int:
        try:
            return self.session.file_size(path)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _pread(self, path: str, offset: int, size: int) -> bytes:
        if offset < 0 or size < 0:
            raise InvalidArgument("offset and size must be non-negative")
        try:
            return self.session.read(path, offset, size)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _pwrite(self, path: str, offset: int, data: bytes) -> int:
        if offset < 0:
            raise InvalidArgument("offset must be non-negative")
        try:
            return self.session.write(path, offset, data)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _truncate(self, path: str, size: int) -> None:
        if size < 0:
            raise InvalidArgument("size must be non-negative")
        try:
            self.session.truncate(path, size)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _sync(self, path: str) -> None:
        """No-op: durability happens at the session's group commit."""

    def _list(self) -> list[str]:
        return self.session.list_files()

    # -- overrides ------------------------------------------------------------
    def open(
        self,
        path: str,
        flags: int = fdmod.O_RDONLY,
        snapshot: Optional[str] = None,
        session: Optional[object] = None,
    ) -> int:
        if snapshot is not None:
            raise InvalidArgument(
                "SessionFS serves one session's snapshot; use the base "
                "file system for named snapshot reads"
            )
        if session is not None and session is not self.session:
            raise InvalidArgument("SessionFS is already bound to a session")
        return super().open(path, flags)

    def rename(self, old: str, new: str) -> None:
        try:
            self.session.rename(old, new)
        except FileNotFoundInEngine:
            raise FileNotFound(old) from None
        except FileExistsInEngine:
            raise FileExists(new) from None

    # -- accounting -----------------------------------------------------------
    def physical_bytes(self) -> int:
        return self.base.physical_bytes()

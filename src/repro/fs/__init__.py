"""File-system layer: VFS interface, baseline FS, and CompressFS."""

from repro.fs.compressfs import CompressFS
from repro.fs.errors import (
    BadFileDescriptor,
    FSError,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsBusy,
    PermissionDenied,
)
from repro.fs.fd import (
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from repro.fs.posix_ops import PosixOperations, PushdownOperations
from repro.fs.vfs import FileStat, FileSystem, PassthroughFS

__all__ = [
    "BadFileDescriptor",
    "CompressFS",
    "FSError",
    "FileExists",
    "FileNotFound",
    "FileStat",
    "FileSystem",
    "InvalidArgument",
    "IsBusy",
    "O_APPEND",
    "O_CREAT",
    "O_EXCL",
    "O_RDONLY",
    "O_RDWR",
    "O_TRUNC",
    "O_WRONLY",
    "PassthroughFS",
    "PermissionDenied",
    "PosixOperations",
    "PushdownOperations",
    "SEEK_CUR",
    "SEEK_END",
    "SEEK_SET",
]

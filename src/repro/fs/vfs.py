"""The VFS interface and the baseline (non-compressing) file system.

:class:`FileSystem` is the POSIX-like surface every database in this
repo is written against — the equivalent of the system-call boundary a
FUSE mount intercepts.  The descriptor plumbing (open flags, positions,
append mode) is implemented once here; concrete file systems provide
five storage primitives.

:class:`PassthroughFS` is the *baseline* of the evaluation: it stores
file bytes on a block device one private block at a time, with no
dedup, no holes, and no pushdown — "the original FUSE" of Section 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fs import fd as fdmod
from repro.fs.errors import (
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsBusy,
    PermissionDenied,
)
from repro.obs import Observability
from repro.obs.metrics import MetricsSnapshot
from repro.storage.block_device import BlockDevice, MemoryBlockDevice


@dataclass(frozen=True)
class FileStat:
    """Subset of ``struct stat`` the databases need."""

    path: str
    size: int
    blocks: int


class FileSystem:
    """Abstract POSIX-like file system with descriptor semantics."""

    def __init__(self, device: Optional[BlockDevice] = None, block_size: int = 1024) -> None:
        self.device = device if device is not None else MemoryBlockDevice(block_size=block_size)
        # Share the device's observability bundle: VFS spans nest over
        # engine and device spans in one trace.
        obs = getattr(self.device, "obs", None)
        self.obs = obs if obs is not None else Observability()
        self._fds = fdmod.FDTable()

    @property
    def block_size(self) -> int:
        return self.device.block_size

    def metrics(self) -> MetricsSnapshot:
        """Snapshot of every metric reported beneath this file system."""
        return self.obs.registry.snapshot()

    # -- storage primitives (implemented by subclasses) ----------------------
    def _create(self, path: str) -> None:
        raise NotImplementedError

    def _unlink(self, path: str) -> None:
        raise NotImplementedError

    def _exists(self, path: str) -> bool:
        raise NotImplementedError

    def _size(self, path: str) -> int:
        raise NotImplementedError

    def _pread(self, path: str, offset: int, size: int) -> bytes:
        raise NotImplementedError

    def _pwrite(self, path: str, offset: int, data: bytes) -> int:
        raise NotImplementedError

    def _preadv(self, path: str, spans: list[tuple[int, int]]) -> list[bytes]:
        """Vectored positional read: one result per ``(offset, size)`` span.

        The default is a loop of :meth:`_pread`; file systems with a
        scatter-gather fast path override this to serve the whole span
        list in one batched device transaction.
        """
        return [self._pread(path, offset, size) for offset, size in spans]

    def _pwritev(self, path: str, spans: list[tuple[int, bytes]]) -> int:
        """Vectored positional write of ``(offset, data)`` spans.

        Returns the total byte count written.  The default is a loop of
        :meth:`_pwrite`; subclasses may coalesce the spans.
        """
        return sum(self._pwrite(path, offset, data) for offset, data in spans)

    def _truncate(self, path: str, size: int) -> None:
        raise NotImplementedError

    def _sync(self, path: str) -> None:
        """Make the file's completed writes durable on the device.

        The default is a no-op: the in-process devices used by the
        baseline file systems are always durable.  Journaled file
        systems override this to commit the open transaction and issue
        the write barrier.
        """

    def _list(self) -> list[str]:
        raise NotImplementedError

    # -- session primitives (MVCC-capable subclasses override) ---------------
    def _session_pread(
        self, session: object, path: str, offset: int, size: int
    ) -> bytes:
        raise InvalidArgument("this file system does not support sessions")

    def _session_pwrite(
        self, session: object, path: str, offset: int, data: bytes
    ) -> int:
        raise InvalidArgument("this file system does not support sessions")

    def _session_truncate(self, session: object, path: str, size: int) -> None:
        raise InvalidArgument("this file system does not support sessions")

    def _session_size(self, session: object, path: str) -> int:
        raise InvalidArgument("this file system does not support sessions")

    # -- descriptor routing --------------------------------------------------
    # A descriptor bound to an MVCC session reads the session's snapshot
    # and buffers writes for its commit; an unbound descriptor hits the
    # storage primitives directly.
    def _route_pread(self, state: fdmod.OpenFile, offset: int, size: int) -> bytes:
        if state.session is not None:
            return self._session_pread(state.session, state.path, offset, size)
        return self._pread(state.path, offset, size)

    def _route_pwrite(self, state: fdmod.OpenFile, offset: int, data: bytes) -> int:
        if state.session is not None:
            return self._session_pwrite(state.session, state.path, offset, data)
        return self._pwrite(state.path, offset, data)

    def _route_truncate(self, state: fdmod.OpenFile, size: int) -> None:
        if state.session is not None:
            self._session_truncate(state.session, state.path, size)
        else:
            self._truncate(state.path, size)

    def _route_size(self, state: fdmod.OpenFile) -> int:
        if state.session is not None:
            return self._session_size(state.session, state.path)
        return self._size(state.path)

    # -- namespace ---------------------------------------------------------
    def exists(self, path: str) -> bool:
        return self._exists(path)

    def unlink(self, path: str) -> None:
        if not self._exists(path):
            raise FileNotFound(path)
        if self._fds.open_count(path):
            # Simpler than POSIX's deferred reclamation: an open file
            # cannot be unlinked (EBUSY), like FAT-ish semantics.
            raise IsBusy(path)
        self._unlink(path)

    def listdir(self, prefix: str = "") -> list[str]:
        return sorted(p for p in self._list() if p.startswith(prefix))

    def stat(self, path: str) -> FileStat:
        if not self._exists(path):
            raise FileNotFound(path)
        size = self._size(path)
        blocks = -(-size // self.block_size) if size else 0
        return FileStat(path=path, size=size, blocks=blocks)

    def rename(self, old: str, new: str) -> None:
        """Default rename: copy + unlink (subclasses may override)."""
        data = self.read_file(old)
        if self._exists(new):
            self._unlink(new)
        self._create(new)
        if data:
            self._pwrite(new, 0, data)
        self._unlink(old)

    # -- descriptor API ----------------------------------------------------------
    def open(
        self,
        path: str,
        flags: int = fdmod.O_RDONLY,
        snapshot: Optional[str] = None,
        session: Optional[object] = None,
    ) -> int:
        """Open ``path``; ``snapshot`` requests a time-travel view.

        Passing ``snapshot`` opens the file exactly as it was when that
        snapshot was taken (read-only).  Passing ``session`` binds the
        descriptor to an MVCC session: reads come from its snapshot,
        writes buffer for its commit.  Only capable file systems
        support either; the base implementation rejects both.
        """
        if snapshot is not None:
            raise InvalidArgument(
                "this file system does not support snapshot reads"
            )
        if session is not None:
            raise InvalidArgument(
                "this file system does not support sessions"
            )
        exists = self._exists(path)
        if not exists:
            if not flags & fdmod.O_CREAT:
                raise FileNotFound(path)
            self._create(path)
        elif flags & fdmod.O_CREAT and flags & fdmod.O_EXCL:
            raise FileExists(path)
        fd = self._fds.allocate(path, flags)
        if flags & fdmod.O_TRUNC and self._fds.lookup(fd).writable:
            self._truncate(path, 0)
        return fd

    def close(self, fd: int) -> None:
        state = self._fds.lookup(fd)
        try:
            # POSIX does not promise durability on close, but every
            # database in this repo treats close-after-write as a commit
            # point (as ext4's auto_da_alloc heuristic does), so map it
            # to a sync.  Session descriptors defer durability to the
            # session's commit instead.
            if state.session is None:
                with self.obs.tracer.span("vfs.close", path=state.path):
                    self._sync(state.path)
        finally:
            # The slot is reclaimed even when the sync fails: a close
            # that raises must not leak the descriptor.
            self._fds.release(fd)

    def lseek(self, fd: int, offset: int, whence: int = fdmod.SEEK_SET) -> int:
        state = self._fds.lookup(fd)
        return self._fds.seek(fd, offset, whence, self._route_size(state))

    def read(self, fd: int, size: int) -> bytes:
        state = self._fds.lookup(fd)
        if not state.readable:
            raise PermissionDenied(f"fd {fd} not open for reading")
        with self.obs.tracer.span("vfs.read", path=state.path, size=size):
            data = self._route_pread(state, state.position, size)
        state.position += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        state = self._fds.lookup(fd)
        if not state.writable:
            raise PermissionDenied(f"fd {fd} not open for writing")
        if state.append_mode:
            state.position = self._route_size(state)
        with self.obs.tracer.span("vfs.write", path=state.path, nbytes=len(data)):
            written = self._route_pwrite(state, state.position, data)
        state.position += written
        return written

    def pread(self, fd: int, size: int, offset: int) -> bytes:
        state = self._fds.lookup(fd)
        if not state.readable:
            raise PermissionDenied(f"fd {fd} not open for reading")
        with self.obs.tracer.span("vfs.pread", path=state.path, size=size):
            return self._route_pread(state, offset, size)

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        state = self._fds.lookup(fd)
        if not state.writable:
            raise PermissionDenied(f"fd {fd} not open for writing")
        with self.obs.tracer.span("vfs.pwrite", path=state.path, nbytes=len(data)):
            return self._route_pwrite(state, offset, data)

    def preadv(self, fd: int, spans: list[tuple[int, int]]) -> list[bytes]:
        """``preadv``: read every ``(offset, size)`` span in one request."""
        state = self._fds.lookup(fd)
        if not state.readable:
            raise PermissionDenied(f"fd {fd} not open for reading")
        with self.obs.tracer.span("vfs.preadv", path=state.path, spans=len(spans)):
            if state.session is not None:
                return [
                    self._session_pread(state.session, state.path, offset, size)
                    for offset, size in spans
                ]
            return self._preadv(state.path, spans)

    def pwritev(self, fd: int, spans: list[tuple[int, bytes]]) -> int:
        """``pwritev``: write every ``(offset, data)`` span in one request."""
        state = self._fds.lookup(fd)
        if not state.writable:
            raise PermissionDenied(f"fd {fd} not open for writing")
        with self.obs.tracer.span("vfs.pwritev", path=state.path, spans=len(spans)):
            if state.session is not None:
                return sum(
                    self._session_pwrite(state.session, state.path, offset, data)
                    for offset, data in spans
                )
            return self._pwritev(state.path, spans)

    def ftruncate(self, fd: int, size: int) -> None:
        state = self._fds.lookup(fd)
        if not state.writable:
            raise PermissionDenied(f"fd {fd} not open for writing")
        self._route_truncate(state, size)

    def truncate(self, path: str, size: int) -> None:
        if not self._exists(path):
            raise FileNotFound(path)
        self._truncate(path, size)

    def fsync(self, fd: int) -> None:
        """Make the file's completed writes durable (commit + barrier)."""
        state = self._fds.lookup(fd)
        with self.obs.tracer.span("vfs.fsync", path=state.path):
            self._sync(state.path)

    # -- whole-file convenience -----------------------------------------------------
    def read_file(self, path: str) -> bytes:
        if not self._exists(path):
            raise FileNotFound(path)
        return self._pread(path, 0, self._size(path))

    def write_file(self, path: str, data: bytes) -> None:
        if self._exists(path):
            self._truncate(path, 0)
        else:
            self._create(path)
        if data:
            self._pwrite(path, 0, data)

    def append_file(self, path: str, data: bytes) -> None:
        if not self._exists(path):
            self._create(path)
        self._pwrite(path, self._size(path), data)

    # -- space accounting --------------------------------------------------------------
    def logical_bytes(self) -> int:
        return sum(self._size(path) for path in self._list())

    def physical_bytes(self) -> int:
        """Bytes of device blocks holding live data."""
        raise NotImplementedError

    def compression_ratio(self) -> float:
        physical = self.physical_bytes()
        if physical == 0:
            return 1.0
        return self.logical_bytes() / physical


class _PlainFile:
    """Baseline file: a private block list plus a byte size."""

    __slots__ = ("blocks", "size")

    def __init__(self) -> None:
        self.blocks: list[int] = []
        self.size = 0


class PassthroughFS(FileSystem):
    """Baseline file system: raw blocks, no dedup, no holes, no pushdown."""

    def __init__(self, device: Optional[BlockDevice] = None, block_size: int = 1024) -> None:
        super().__init__(device=device, block_size=block_size)
        self._files: dict[str, _PlainFile] = {}

    # -- primitives ------------------------------------------------------------
    def _create(self, path: str) -> None:
        if path in self._files:
            raise FileExists(path)
        self._files[path] = _PlainFile()

    def _unlink(self, path: str) -> None:
        plain = self._files.pop(path)
        for block_no in plain.blocks:
            self.device.free(block_no)

    def _exists(self, path: str) -> bool:
        return path in self._files

    def _size(self, path: str) -> int:
        return self._file(path).size

    def _list(self) -> list[str]:
        return list(self._files)

    def _file(self, path: str) -> _PlainFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def _pread(self, path: str, offset: int, size: int) -> bytes:
        plain = self._file(path)
        if offset < 0 or size < 0:
            raise InvalidArgument("offset and size must be non-negative")
        if offset >= plain.size or size == 0:
            return b""
        size = min(size, plain.size - offset)
        block_size = self.block_size
        first = offset // block_size
        last = (offset + size - 1) // block_size
        chunks = [self.device.read_block(plain.blocks[i]) for i in range(first, last + 1)]  # reprolint: disable=IO001 -- baseline cost model: PassthroughFS deliberately pays per-block device costs so the CompressDB comparison includes a conventional per-block write path
        raw = b"".join(chunks)
        start = offset - first * block_size
        return raw[start : start + size]

    def _pwrite(self, path: str, offset: int, data: bytes) -> int:
        plain = self._file(path)
        if offset < 0:
            raise InvalidArgument("offset must be non-negative")
        if not data:
            return 0  # POSIX: a zero-length write changes nothing
        end = offset + len(data)
        block_size = self.block_size
        # Grow the block list to cover the write (zero-filled gap).
        needed_blocks = -(-max(end, plain.size) // block_size)
        while len(plain.blocks) < needed_blocks:
            plain.blocks.append(self.device.allocate())
        first = offset // block_size
        last = (end - 1) // block_size if end > offset else first
        consumed = 0
        for index in range(first, last + 1):
            block_start = index * block_size
            within = max(0, offset - block_start)
            take = min(block_size - within, len(data) - consumed)
            if within == 0 and take == block_size:
                self.device.write_block(plain.blocks[index], data[consumed : consumed + take])  # reprolint: disable=IO001 -- baseline cost model: PassthroughFS deliberately pays per-block device costs so the CompressDB comparison includes a conventional per-block write path
            else:
                # Partial block: read-modify-write, as a real FS must.
                old = self.device.read_block(plain.blocks[index])  # reprolint: disable=IO001 -- baseline cost model: PassthroughFS deliberately pays per-block device costs so the CompressDB comparison includes a conventional per-block write path
                new = old[:within] + data[consumed : consumed + take] + old[within + take :]
                self.device.write_block(plain.blocks[index], new)  # reprolint: disable=IO001 -- baseline cost model: PassthroughFS deliberately pays per-block device costs so the CompressDB comparison includes a conventional per-block write path
            consumed += take
        plain.size = max(plain.size, end)
        return len(data)

    def _truncate(self, path: str, size: int) -> None:
        plain = self._file(path)
        if size < 0:
            raise InvalidArgument("size must be non-negative")
        if size > plain.size:
            # Zero-fill growth.
            self._pwrite(path, plain.size, b"\x00" * (size - plain.size))
            return
        block_size = self.block_size
        keep = -(-size // block_size)
        for block_no in plain.blocks[keep:]:
            self.device.free(block_no)
        del plain.blocks[keep:]
        plain.size = size
        # Zero the tail of the last kept block so re-growth reads zeros.
        if size % block_size and plain.blocks:
            last = plain.blocks[-1]
            old = self.device.read_block(last)
            boundary = size % block_size
            self.device.write_block(last, old[:boundary] + b"\x00" * (block_size - boundary))

    # -- accounting --------------------------------------------------------------
    def physical_bytes(self) -> int:
        return sum(len(plain.blocks) for plain in self._files.values()) * self.block_size

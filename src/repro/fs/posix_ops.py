"""The seven operations implemented over plain POSIX calls.

This is the *baseline* side of the Figure 10/11 comparison: without
operation pushdown, ``insert`` and ``delete`` must shift the whole file
tail through read/write (Figure 4b), and ``search``/``count`` must scan
every byte with no block reuse.  The class works against any
:class:`~repro.fs.vfs.FileSystem`, including CompressFS — running it on
CompressFS quantifies how much of CompressDB's win comes from pushdown
rather than from compression alone.

:class:`PushdownOperations` adapts a CompressFS mount's engine to the
same protocol so benchmark code can treat both sides uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import kmp
from repro.fs.compressfs import CompressFS
from repro.fs.vfs import FileSystem


@dataclass
class PosixOperations:
    """extract/replace/insert/delete/append/search/count via read+write.

    ``io_chunk`` bounds the buffer used when shifting file tails, so
    the I/O pattern (many block-granularity reads and writes) matches a
    real implementation instead of one giant memory copy.
    """

    fs: FileSystem
    io_chunk: int = 64 * 1024

    def extract(self, path: str, offset: int, size: int) -> bytes:
        return self.fs._pread(path, offset, size)

    def replace(self, path: str, offset: int, data: bytes) -> None:
        self.fs._pwrite(path, offset, data)

    def append(self, path: str, data: bytes) -> None:
        self.fs.append_file(path, data)

    def insert(self, path: str, offset: int, data: bytes) -> None:
        """Figure 4(b): read everything after ``offset``, rewrite shifted."""
        size = self.fs.stat(path).size
        tail = self.fs._pread(path, offset, size - offset)
        buffer = data + tail
        written = 0
        while written < len(buffer):
            chunk = buffer[written : written + self.io_chunk]
            self.fs._pwrite(path, offset + written, chunk)
            written += len(chunk)

    def delete(self, path: str, offset: int, length: int) -> None:
        """Shift the tail left over the deleted range, then truncate."""
        size = self.fs.stat(path).size
        tail = self.fs._pread(path, offset + length, size - offset - length)
        written = 0
        while written < len(tail):
            chunk = tail[written : written + self.io_chunk]
            self.fs._pwrite(path, offset + written, chunk)
            written += len(chunk)
        self.fs.truncate(path, size - length)

    def search(self, path: str, pattern: bytes) -> list[int]:
        """Streaming linear scan with an overlap window; no block reuse."""
        m = len(pattern)
        if m == 0:
            return []
        size = self.fs.stat(path).size
        matches: list[int] = []
        position = 0
        carry = b""
        while position < size:
            chunk = self.fs._pread(path, position, self.io_chunk)
            window = carry + chunk
            base = position - len(carry)
            for local in kmp.iter_matches(window, pattern):
                offset = base + local
                # The carry region was already scanned in the previous
                # window except for matches that spill into this chunk.
                if offset + m > position:
                    matches.append(offset)
            carry = window[-(m - 1) :] if m > 1 else b""
            position += len(chunk)
            if not chunk:
                break
        return matches

    def count(self, path: str, pattern: bytes) -> int:
        return len(self.search(path, pattern))


@dataclass
class PushdownOperations:
    """The engine's pushed-down operations behind the same protocol."""

    fs: CompressFS

    def extract(self, path: str, offset: int, size: int) -> bytes:
        return self.fs.ops.extract(path, offset, size)

    def replace(self, path: str, offset: int, data: bytes) -> None:
        self.fs.ops.replace(path, offset, data)

    def append(self, path: str, data: bytes) -> None:
        self.fs.ops.append(path, data)

    def insert(self, path: str, offset: int, data: bytes) -> None:
        self.fs.ops.insert(path, offset, data)

    def delete(self, path: str, offset: int, length: int) -> None:
        self.fs.ops.delete(path, offset, length)

    def search(self, path: str, pattern: bytes) -> list[int]:
        return self.fs.ops.search(path, pattern)

    def count(self, path: str, pattern: bytes) -> int:
        return self.fs.ops.count(path, pattern)

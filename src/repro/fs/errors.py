"""Errno-style exception hierarchy for the file-system layer.

Besides the exception classes, this module owns the **wire code
table** (:data:`WIRE_CODES`): the stable errno-style integers the
serving layer's protocol v1 uses to report failures to remote clients.
Every exception that may cross the client boundary — VFS errors, MVCC
conflicts, database statement failures, quota and admission-control
rejections, protocol violations — maps to exactly one code.

The table is part of the wire format: codes are literal integers (NOT
``errno`` module lookups, whose values differ across platforms) and a
golden test pins the serialized table byte-for-byte so protocol v1
stays compatible.  Exceptions defined in higher layers (for example
:class:`repro.mvcc.session.WriteConflict`) are matched *by class name*
along the MRO, which keeps this module importable from anywhere
without inverting the layer cake.
"""

from __future__ import annotations

import errno


class FSError(Exception):
    """Base class: carries an errno like a real FUSE implementation."""

    errno_code = errno.EIO

    def __init__(self, message: str = "") -> None:
        super().__init__(message or self.__class__.__doc__)


class FileNotFound(FSError):
    """No such file or directory (ENOENT)."""

    errno_code = errno.ENOENT


class FileExists(FSError):
    """File exists (EEXIST)."""

    errno_code = errno.EEXIST


class BadFileDescriptor(FSError):
    """Bad file descriptor (EBADF)."""

    errno_code = errno.EBADF


class InvalidArgument(FSError):
    """Invalid argument (EINVAL)."""

    errno_code = errno.EINVAL


class PermissionDenied(FSError):
    """Operation not permitted on this descriptor (EPERM)."""

    errno_code = errno.EPERM


class IsBusy(FSError):
    """Resource busy: file still has open descriptors (EBUSY)."""

    errno_code = errno.EBUSY


class TryAgain(FSError):
    """Resource temporarily unavailable — retry later (EAGAIN).

    The admission controller's shed signal: the request was *not*
    executed and may be retried after ``retry_after_ms`` milliseconds.
    Carrying the hint in the exception keeps overload behaviour
    graceful — clients back off instead of hammering a full queue.
    """

    errno_code = errno.EAGAIN

    def __init__(self, message: str = "", retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class QuotaExceeded(FSError):
    """Tenant quota exhausted: bytes, inodes, or descriptors (EDQUOT)."""

    errno_code = getattr(errno, "EDQUOT", 122)


# ---------------------------------------------------------------------------
# Protocol v1 wire codes
# ---------------------------------------------------------------------------

#: Wire protocol revision the code table below belongs to.  Bump only
#: with a new protocol version; existing codes may never be renumbered.
WIRE_PROTOCOL_VERSION = 1

#: Exception class name -> stable wire code (errno-flavoured literals;
#: values are frozen by ``tests/goldens/wire_codes.json``).  ``mro``
#: matching means subclasses inherit their nearest listed ancestor's
#: code: ``TableError`` -> ``DatabaseError``, ``BadMagic`` ->
#: ``ProtocolError``, and so on.
WIRE_CODES: dict[str, int] = {
    "OK": 0,
    "PermissionDenied": 1,
    "FileNotFound": 2,
    "FSError": 5,
    "BadFileDescriptor": 9,
    "TryAgain": 11,
    "IsBusy": 16,
    "FileExists": 17,
    "InvalidArgument": 22,
    "WriteConflict": 35,
    "UnknownOpcode": 38,
    "DatabaseError": 52,
    "ProtocolError": 71,
    "ChecksumError": 74,
    "SessionClosed": 116,
    "QuotaExceeded": 122,
}

#: Reverse view for clients turning codes back into exceptions.  The
#: table is injective (asserted by the golden test), so the round trip
#: is unambiguous.
WIRE_CODE_NAMES: dict[int, str] = {code: name for name, code in WIRE_CODES.items()}


def wire_code(exc: BaseException) -> int:
    """The stable wire code for ``exc``.

    Walks the exception's MRO and returns the code of the first class
    whose *name* appears in :data:`WIRE_CODES`; unknown exceptions
    degrade to the generic ``FSError`` (EIO) code so nothing crossing
    the boundary is ever unclassifiable.
    """
    for klass in type(exc).__mro__:
        code = WIRE_CODES.get(klass.__name__)
        if code is not None:
            return code
    return WIRE_CODES["FSError"]


def wire_error_payload(exc: BaseException) -> dict:
    """The error body shipped in an error response frame."""
    payload: dict = {
        "code": wire_code(exc),
        "error": WIRE_CODE_NAMES[wire_code(exc)],
        "message": str(exc),
    }
    retry_after = getattr(exc, "retry_after_ms", None)
    if retry_after is not None:
        payload["retry_after_ms"] = float(retry_after)
    # A NotLeader redirect (replicated metadata plane) names the replica
    # to retry against; the subclass crosses the wire as its TryAgain
    # base code plus this hint.
    leader_hint = getattr(exc, "leader_hint", None)
    if leader_hint is not None:
        payload["leader_hint"] = str(leader_hint)
    return payload

"""Errno-style exception hierarchy for the file-system layer."""

from __future__ import annotations

import errno


class FSError(Exception):
    """Base class: carries an errno like a real FUSE implementation."""

    errno_code = errno.EIO

    def __init__(self, message: str = "") -> None:
        super().__init__(message or self.__class__.__doc__)


class FileNotFound(FSError):
    """No such file or directory (ENOENT)."""

    errno_code = errno.ENOENT


class FileExists(FSError):
    """File exists (EEXIST)."""

    errno_code = errno.EEXIST


class BadFileDescriptor(FSError):
    """Bad file descriptor (EBADF)."""

    errno_code = errno.EBADF


class InvalidArgument(FSError):
    """Invalid argument (EINVAL)."""

    errno_code = errno.EINVAL


class PermissionDenied(FSError):
    """Operation not permitted on this descriptor (EPERM)."""

    errno_code = errno.EPERM


class IsBusy(FSError):
    """Resource busy: file still has open descriptors (EBUSY)."""

    errno_code = errno.EBUSY

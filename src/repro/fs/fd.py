"""File-descriptor table with POSIX open-flag semantics.

The databases in :mod:`repro.databases` interact with the file systems
exclusively through descriptors, the way a real process talks to a
FUSE mount.  This module implements the descriptor bookkeeping shared
by every :class:`~repro.fs.vfs.FileSystem` implementation: flag
validation, per-descriptor positions, append mode, and close tracking.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.fs.errors import BadFileDescriptor, InvalidArgument

#: Flags understood by the VFS layer.
O_RDONLY = os.O_RDONLY
O_WRONLY = os.O_WRONLY
O_RDWR = os.O_RDWR
O_CREAT = os.O_CREAT
O_TRUNC = os.O_TRUNC
O_APPEND = os.O_APPEND
O_EXCL = os.O_EXCL

_ACCESS_MASK = os.O_RDONLY | os.O_WRONLY | os.O_RDWR

SEEK_SET = os.SEEK_SET
SEEK_CUR = os.SEEK_CUR
SEEK_END = os.SEEK_END


@dataclass
class OpenFile:
    """State of one open descriptor."""

    path: str
    flags: int
    position: int = 0
    #: MVCC session the descriptor is bound to (None = direct I/O).
    #: Session descriptors read the session's snapshot and buffer
    #: writes for its commit; they all close when the session finishes.
    session: Optional[object] = None

    @property
    def readable(self) -> bool:
        access = self.flags & _ACCESS_MASK
        return access in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        access = self.flags & _ACCESS_MASK
        return access in (O_WRONLY, O_RDWR)

    @property
    def append_mode(self) -> bool:
        return bool(self.flags & O_APPEND)


class FDTable:
    """Allocates descriptors and tracks open files."""

    def __init__(self) -> None:
        self._open: dict[int, OpenFile] = {}
        self._next_fd = 3  # skip stdin/stdout/stderr, like a real process
        self._free: list[int] = []

    def allocate(
        self, path: str, flags: int, session: Optional[object] = None
    ) -> int:
        fd = self._free.pop() if self._free else self._next_fd
        if fd == self._next_fd:
            self._next_fd += 1
        self._open[fd] = OpenFile(path=path, flags=flags, session=session)
        return fd

    def lookup(self, fd: int) -> OpenFile:
        try:
            return self._open[fd]
        except KeyError:
            raise BadFileDescriptor(f"fd {fd} is not open") from None

    def release(self, fd: int) -> OpenFile:
        state = self.lookup(fd)
        del self._open[fd]
        self._free.append(fd)
        return state

    def release_session(self, session: object) -> list[int]:
        """Force-close every descriptor bound to ``session``.

        Runs when the session finishes (commit, conflict abort, or
        explicit abort) so an aborted transaction cannot leak open
        slots.  Every matching fd is removed and recycled even if the
        caller's surrounding teardown is mid-failure — the loop itself
        performs no fallible work.  Returns the released fds.
        """
        released = [
            fd for fd, state in self._open.items() if state.session is session
        ]
        for fd in released:
            del self._open[fd]
            self._free.append(fd)
        return sorted(released)

    def open_count(self, path: str) -> int:
        """Number of descriptors currently open on ``path``."""
        return sum(1 for state in self._open.values() if state.path == path)

    def open_fds(self) -> list[int]:
        return sorted(self._open)

    def seek(self, fd: int, offset: int, whence: int, file_size: int) -> int:
        """Apply ``lseek`` semantics; returns the new absolute position."""
        state = self.lookup(fd)
        if whence == SEEK_SET:
            new_position = offset
        elif whence == SEEK_CUR:
            new_position = state.position + offset
        elif whence == SEEK_END:
            new_position = file_size + offset
        else:
            raise InvalidArgument(f"bad whence {whence}")
        if new_position < 0:
            raise InvalidArgument(f"seek to negative offset {new_position}")
        state.position = new_position
        return new_position

"""A general-purpose-compression overlay file system.

Implements the evaluation's "(LZ4)" variants: files are stored as
LZ4-compressed segments inside container files on a *backing* file
system.  Layered over :class:`~repro.fs.vfs.PassthroughFS` it is
"baseline (LZ4)"; over :class:`~repro.fs.compressfs.CompressFS` it is
"CompressDB (LZ4)" — the stacking the paper evaluates in Table 2.

The cost model this captures is the one the paper argues about:
*applications must decompress data before using it*, and any write
must read-modify-recompress a whole segment.  Containers are
log-structured — rewritten segments are appended and the old bytes
become garbage until compaction — which is how real compressed stores
avoid in-place rewrites of variable-length data.

Metadata (segment tables) lives in memory for the lifetime of the
mount, like any FUSE daemon's runtime state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.compression.lz import Codec, LZ4Codec
from repro.fs.errors import FileExists, FileNotFound, InvalidArgument
from repro.fs.vfs import FileSystem


@dataclass
class _Segment:
    """One stored segment: where its compressed bytes live."""

    offset: int
    length: int
    raw_length: int


@dataclass
class _Container:
    """Runtime state of one overlay file."""

    logical_size: int = 0
    segments: list[Optional[_Segment]] = field(default_factory=list)
    append_cursor: int = 0
    garbage: int = 0


class CompressedOverlayFS(FileSystem):
    """Segment-compressed files over a backing file system."""

    def __init__(
        self,
        backing: FileSystem,
        segment_bytes: int = 4096,
        codec: Optional[Codec] = None,
        compaction_threshold: float = 0.5,
    ) -> None:
        if segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        # Share the backing device so simulated time accumulates in one place.
        super().__init__(device=backing.device)
        self.backing = backing
        self.segment_bytes = segment_bytes
        self.codec = codec if codec is not None else LZ4Codec()
        self.compaction_threshold = compaction_threshold
        self._containers: dict[str, _Container] = {}
        self.compactions = 0

    # -- segment plumbing ------------------------------------------------------
    def _segment_raw(self, container: _Container, path: str, index: int) -> bytes:
        """Decompressed content of segment ``index`` (zero-filled if absent)."""
        if index >= len(container.segments) or container.segments[index] is None:
            return b""
        segment = container.segments[index]
        assert segment is not None
        payload = self.backing._pread(path, segment.offset, segment.length)
        return self.codec.decompress(payload)

    def _store_segment(self, container: _Container, path: str, index: int, raw: bytes) -> None:
        """Compress and append a segment version, retiring the old one."""
        while len(container.segments) <= index:
            container.segments.append(None)
        old = container.segments[index]
        if old is not None:
            container.garbage += old.length
        payload = self.codec.compress(raw)
        offset = container.append_cursor
        self.backing._pwrite(path, offset, payload)
        container.append_cursor += len(payload)
        container.segments[index] = _Segment(
            offset=offset, length=len(payload), raw_length=len(raw)
        )
        if (
            container.append_cursor > 0
            and container.garbage / container.append_cursor > self.compaction_threshold
        ):
            self._compact(container, path)

    def _compact(self, container: _Container, path: str) -> None:
        """Rewrite the container with only the live segment versions."""
        self.compactions += 1
        live = [
            (index, self._segment_raw(container, path, index))
            for index in range(len(container.segments))
            if container.segments[index] is not None
        ]
        self.backing.truncate(path, 0)
        container.append_cursor = 0
        container.garbage = 0
        container.segments = [None] * len(container.segments)
        for index, raw in live:
            self._store_segment(container, path, index, raw)

    # -- storage primitives -----------------------------------------------------
    def _container(self, path: str) -> _Container:
        try:
            return self._containers[path]
        except KeyError:
            raise FileNotFound(path) from None

    def _create(self, path: str) -> None:
        if path in self._containers:
            raise FileExists(path)
        self.backing.write_file(path, b"")
        self._containers[path] = _Container()

    def _unlink(self, path: str) -> None:
        del self._containers[path]
        self.backing.unlink(path)

    def _exists(self, path: str) -> bool:
        return path in self._containers

    def _size(self, path: str) -> int:
        return self._container(path).logical_size

    def _list(self) -> list[str]:
        return list(self._containers)

    def _pread(self, path: str, offset: int, size: int) -> bytes:
        container = self._container(path)
        if offset < 0 or size < 0:
            raise InvalidArgument("offset and size must be non-negative")
        if offset >= container.logical_size or size == 0:
            return b""
        size = min(size, container.logical_size - offset)
        first = offset // self.segment_bytes
        last = (offset + size - 1) // self.segment_bytes
        parts = []
        for index in range(first, last + 1):
            raw = self._segment_raw(container, path, index)
            if len(raw) < self.segment_bytes:
                raw = raw + b"\x00" * (self.segment_bytes - len(raw))
            parts.append(raw)
        blob = b"".join(parts)
        start = offset - first * self.segment_bytes
        return blob[start : start + size]

    def _pwrite(self, path: str, offset: int, data: bytes) -> int:
        container = self._container(path)
        if offset < 0:
            raise InvalidArgument("offset must be non-negative")
        if not data:
            return 0
        end = offset + len(data)
        first = offset // self.segment_bytes
        last = (end - 1) // self.segment_bytes
        consumed = 0
        for index in range(first, last + 1):
            segment_start = index * self.segment_bytes
            within = max(0, offset - segment_start)
            take = min(self.segment_bytes - within, len(data) - consumed)
            raw = self._segment_raw(container, path, index)
            if len(raw) < within:
                raw = raw + b"\x00" * (within - len(raw))
            new_raw = raw[:within] + data[consumed : consumed + take] + raw[within + take :]
            # Trim segments to the logical end of file later; store full.
            self._store_segment(container, path, index, new_raw)
            consumed += take
        container.logical_size = max(container.logical_size, end)
        return len(data)

    def _truncate(self, path: str, size: int) -> None:
        container = self._container(path)
        if size < 0:
            raise InvalidArgument("size must be non-negative")
        if size > container.logical_size:
            gap = size - container.logical_size
            self._pwrite(path, container.logical_size, b"\x00" * gap)
            return
        keep_segments = -(-size // self.segment_bytes) if size else 0
        for index in range(keep_segments, len(container.segments)):
            segment = container.segments[index]
            if segment is not None:
                container.garbage += segment.length
                container.segments[index] = None
        del container.segments[keep_segments:]
        if size % self.segment_bytes and container.segments:
            # Zero the tail of the last kept segment.
            index = keep_segments - 1
            raw = self._segment_raw(container, path, index)
            boundary = size % self.segment_bytes
            self._store_segment(container, path, index, raw[:boundary])
        container.logical_size = size

    # -- accounting --------------------------------------------------------------------
    def physical_bytes(self) -> int:
        return self.backing.physical_bytes()

    def live_compressed_bytes(self) -> int:
        """Compressed bytes of live segments (excludes log garbage)."""
        return sum(
            segment.length
            for container in self._containers.values()
            for segment in container.segments
            if segment is not None
        )

"""CompressFS: the CompressDB engine exposed through the VFS interface.

This is the integration of Section 4.1/5: databases "set the system
directory" to a CompressDB mount and their ``read``/``write`` system
calls are handled by the engine, gaining compressed-data direct
processing transparently.  The extra non-POSIX operations are available
through :attr:`CompressFS.ops` (in-process) or the unix-socket API of
:mod:`repro.core.api`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import CompressDB, FileExistsInEngine, FileNotFoundInEngine
from repro.core.operations import OperationModule
from repro.fs import fd as fdmod
from repro.fs.errors import (
    FileExists,
    FileNotFound,
    InvalidArgument,
    PermissionDenied,
)
from repro.fs.vfs import FileSystem
from repro.storage.block_device import BlockDevice

#: Virtual subtree exposing snapshots: ``/.snap/<name>/<path>`` is a
#: read-only view of ``<path>`` as of snapshot ``<name>``.
SNAP_ROOT = "/.snap"

_WRITE_FLAGS = (
    fdmod.O_WRONLY | fdmod.O_RDWR | fdmod.O_CREAT | fdmod.O_TRUNC | fdmod.O_APPEND
)


class CompressFS(FileSystem):
    """A file system whose storage engine is CompressDB."""

    def __init__(
        self,
        device: Optional[BlockDevice] = None,
        block_size: int = 1024,
        engine: Optional[CompressDB] = None,
        **engine_kwargs,
    ) -> None:
        if engine is not None:
            self.engine = engine
        else:
            self.engine = CompressDB(device=device, block_size=block_size, **engine_kwargs)
        super().__init__(device=self.engine.device)

    @property
    def ops(self) -> OperationModule:
        """The pushed-down operation module (insert/delete/search/...)."""
        return self.engine.ops

    # -- snapshot subtree ------------------------------------------------------
    @staticmethod
    def _snapshot_target(path: str) -> Optional[tuple[str, str]]:
        """Decode ``/.snap/<name>/<path>``; None for ordinary paths."""
        if not path.startswith(SNAP_ROOT + "/"):
            return None
        rest = path[len(SNAP_ROOT) + 1 :]
        name, sep, tail = rest.partition("/")
        if not name or not sep or not tail:
            return None
        return name, "/" + tail

    def _frozen(self, path: str):
        """The FrozenInode behind a virtual path, or None."""
        target = self._snapshot_target(path)
        if target is None:
            return None
        name, original = target
        if name not in self.engine.snapshots:
            return None
        return self.engine.snapshots.lookup(name, original)

    def open(
        self,
        path: str,
        flags: int = fdmod.O_RDONLY,
        snapshot: Optional[str] = None,
        session: Optional[object] = None,
    ) -> int:
        """Open a live file — or, with ``snapshot``, its frozen image.

        ``open(path, snapshot="monday")`` is sugar for opening the
        virtual path ``/.snap/monday/<path>``; either spelling yields a
        read-only descriptor backed by the frozen inode table.

        ``open(path, flags, session=s)`` binds the descriptor to an
        MVCC session: reads resolve against the session's snapshot,
        writes buffer for its commit, and the descriptor is force-
        closed when the session finishes (so a conflict abort cannot
        leak fd slots or pinned snapshot images).
        """
        if snapshot is not None:
            if session is not None:
                raise InvalidArgument(
                    "snapshot and session views cannot be combined"
                )
            if flags & _WRITE_FLAGS:
                raise PermissionDenied(
                    f"snapshot {snapshot!r} is read-only: open with O_RDONLY"
                )
            path = f"{SNAP_ROOT}/{snapshot}" + (
                path if path.startswith("/") else "/" + path
            )
        if session is not None:
            return self._open_with_session(path, flags, session)
        return super().open(path, flags)

    def _open_with_session(self, path: str, flags: int, session) -> int:
        if path.startswith(SNAP_ROOT + "/") or path == SNAP_ROOT:
            raise PermissionDenied(f"{SNAP_ROOT} is a read-only snapshot view")
        try:
            exists = session.exists(path)
            if not exists:
                if not flags & fdmod.O_CREAT:
                    raise FileNotFound(path)
                session.create(path)
            elif flags & fdmod.O_CREAT and flags & fdmod.O_EXCL:
                raise FileExists(path)
            fd = self._fds.allocate(path, flags, session=session)
            if flags & fdmod.O_TRUNC and self._fds.lookup(fd).writable:
                session.truncate(path, 0)
        except FileExistsInEngine:
            raise FileExists(path) from None
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None
        # One cleanup per (fs, session): when the session finishes —
        # commit, abort, or conflict — every descriptor it still holds
        # in this table is reclaimed.
        session.add_cleanup(
            lambda: self._fds.release_session(session),
            key=f"fds:{id(self)}",
        )
        return fd

    # -- primitives -----------------------------------------------------------
    def _create(self, path: str) -> None:
        if path.startswith(SNAP_ROOT + "/") or path == SNAP_ROOT:
            raise PermissionDenied(f"{SNAP_ROOT} is a read-only snapshot view")
        try:
            self.engine.create(path)
        except FileExistsInEngine:
            raise FileExists(path) from None

    def _unlink(self, path: str) -> None:
        if self._snapshot_target(path) is not None:
            raise PermissionDenied(f"{path}: snapshots are read-only")
        try:
            self.engine.unlink(path)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _exists(self, path: str) -> bool:
        if self._snapshot_target(path) is not None:
            return self._frozen(path) is not None
        return self.engine.exists(path)

    def _size(self, path: str) -> int:
        frozen = self._frozen(path)
        if frozen is not None:
            return frozen.size
        if self._snapshot_target(path) is not None:
            raise FileNotFound(path)
        try:
            return self.engine.file_size(path)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _list(self) -> list[str]:
        # Virtual .snap entries are deliberately absent: they carry no
        # logical bytes of their own and must not leak into database
        # directory scans.  ``listdir("/.snap...")`` surfaces them.
        return self.engine.list_files()

    def listdir(self, prefix: str = "") -> list[str]:
        if prefix.startswith(SNAP_ROOT):
            entries = []
            for name in self.engine.snapshots.names():
                for path in self.engine.snapshots.get(name).files:
                    virtual = f"{SNAP_ROOT}/{name}" + (
                        path if path.startswith("/") else "/" + path
                    )
                    if virtual.startswith(prefix):
                        entries.append(virtual)
            return sorted(entries)
        return super().listdir(prefix)

    def _pread(self, path: str, offset: int, size: int) -> bytes:
        if offset < 0 or size < 0:
            raise InvalidArgument("offset and size must be non-negative")
        frozen = self._frozen(path)
        if frozen is not None:
            return frozen.read(self.engine.device, offset, size)
        if self._snapshot_target(path) is not None:
            raise FileNotFound(path)
        try:
            return self.engine.read(path, offset, size)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _pwrite(self, path: str, offset: int, data: bytes) -> int:
        if self._snapshot_target(path) is not None:
            raise PermissionDenied(f"{path}: snapshots are read-only")
        if offset < 0:
            raise InvalidArgument("offset must be non-negative")
        try:
            return self.engine.write(path, offset, data)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _preadv(self, path: str, spans: list[tuple[int, int]]) -> list[bytes]:
        """Serve every span from one scatter-gather engine read."""
        for offset, size in spans:
            if offset < 0 or size < 0:
                raise InvalidArgument("offset and size must be non-negative")
        frozen = self._frozen(path)
        if frozen is not None:
            device = self.engine.device
            return [frozen.read(device, offset, size) for offset, size in spans]
        if self._snapshot_target(path) is not None:
            raise FileNotFound(path)
        try:
            return self.engine.readv(path, spans)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _pwritev(self, path: str, spans: list[tuple[int, bytes]]) -> int:
        """Vectored write; sequential spans coalesce in the engine buffer."""
        if self._snapshot_target(path) is not None:
            raise PermissionDenied(f"{path}: snapshots are read-only")
        for offset, _ in spans:
            if offset < 0:
                raise InvalidArgument("offset must be non-negative")
        try:
            return sum(self.engine.write(path, offset, data) for offset, data in spans)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _truncate(self, path: str, size: int) -> None:
        if self._snapshot_target(path) is not None:
            raise PermissionDenied(f"{path}: snapshots are read-only")
        if size < 0:
            raise InvalidArgument("size must be non-negative")
        try:
            self.engine.truncate(path, size)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    # -- session primitives ---------------------------------------------------
    def _session_pread(self, session, path: str, offset: int, size: int) -> bytes:
        if offset < 0 or size < 0:
            raise InvalidArgument("offset and size must be non-negative")
        try:
            return session.read(path, offset, size)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _session_pwrite(self, session, path: str, offset: int, data: bytes) -> int:
        if offset < 0:
            raise InvalidArgument("offset must be non-negative")
        try:
            return session.write(path, offset, data)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _session_truncate(self, session, path: str, size: int) -> None:
        if size < 0:
            raise InvalidArgument("size must be non-negative")
        try:
            session.truncate(path, size)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _session_size(self, session, path: str) -> int:
        try:
            return session.file_size(path)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _sync(self, path: str) -> None:
        """``fsync``/``close`` durability: reach the device, not a buffer.

        On a mounted (formatted) engine this publishes the metadata
        image and commits the journal epoch with its write barrier; on
        a plain in-memory engine it degrades to flushing the coalescing
        buffer.  Frozen ``.snap`` views have nothing to make durable.
        """
        if self._snapshot_target(path) is not None:
            return
        self.engine.fsync(path)

    def write_file(self, path: str, data: bytes) -> None:
        """Whole-file writes commit immediately as one batched store."""
        super().write_file(path, data)
        self.engine.sync(path)

    def rename(self, old: str, new: str) -> None:
        """Metadata-only rename (no data copy, unlike the baseline)."""
        try:
            self.engine.rename(old, new)
        except FileNotFoundInEngine:
            raise FileNotFound(old) from None
        except FileExistsInEngine:
            raise FileExists(new) from None

    # -- accounting ---------------------------------------------------------------
    def metrics(self):
        """Engine snapshot: refreshes space/memory gauges before reading."""
        return self.engine.metrics()

    def physical_bytes(self) -> int:
        return self.engine.physical_bytes()

    def compression_ratio(self) -> float:
        return self.engine.compression_ratio()

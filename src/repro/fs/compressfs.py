"""CompressFS: the CompressDB engine exposed through the VFS interface.

This is the integration of Section 4.1/5: databases "set the system
directory" to a CompressDB mount and their ``read``/``write`` system
calls are handled by the engine, gaining compressed-data direct
processing transparently.  The extra non-POSIX operations are available
through :attr:`CompressFS.ops` (in-process) or the unix-socket API of
:mod:`repro.core.api`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import CompressDB, FileExistsInEngine, FileNotFoundInEngine
from repro.core.operations import OperationModule
from repro.fs.errors import FileExists, FileNotFound, InvalidArgument
from repro.fs.vfs import FileSystem
from repro.storage.block_device import BlockDevice


class CompressFS(FileSystem):
    """A file system whose storage engine is CompressDB."""

    def __init__(
        self,
        device: Optional[BlockDevice] = None,
        block_size: int = 1024,
        engine: Optional[CompressDB] = None,
        **engine_kwargs,
    ) -> None:
        if engine is not None:
            self.engine = engine
        else:
            self.engine = CompressDB(device=device, block_size=block_size, **engine_kwargs)
        super().__init__(device=self.engine.device)

    @property
    def ops(self) -> OperationModule:
        """The pushed-down operation module (insert/delete/search/...)."""
        return self.engine.ops

    # -- primitives -----------------------------------------------------------
    def _create(self, path: str) -> None:
        try:
            self.engine.create(path)
        except FileExistsInEngine:
            raise FileExists(path) from None

    def _unlink(self, path: str) -> None:
        try:
            self.engine.unlink(path)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _exists(self, path: str) -> bool:
        return self.engine.exists(path)

    def _size(self, path: str) -> int:
        try:
            return self.engine.file_size(path)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _list(self) -> list[str]:
        return self.engine.list_files()

    def _pread(self, path: str, offset: int, size: int) -> bytes:
        if offset < 0 or size < 0:
            raise InvalidArgument("offset and size must be non-negative")
        try:
            return self.engine.read(path, offset, size)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _pwrite(self, path: str, offset: int, data: bytes) -> int:
        if offset < 0:
            raise InvalidArgument("offset must be non-negative")
        try:
            return self.engine.write(path, offset, data)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _preadv(self, path: str, spans: list[tuple[int, int]]) -> list[bytes]:
        """Serve every span from one scatter-gather engine read."""
        for offset, size in spans:
            if offset < 0 or size < 0:
                raise InvalidArgument("offset and size must be non-negative")
        try:
            return self.engine.readv(path, spans)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _pwritev(self, path: str, spans: list[tuple[int, bytes]]) -> int:
        """Vectored write; sequential spans coalesce in the engine buffer."""
        for offset, _ in spans:
            if offset < 0:
                raise InvalidArgument("offset must be non-negative")
        try:
            return sum(self.engine.write(path, offset, data) for offset, data in spans)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _truncate(self, path: str, size: int) -> None:
        if size < 0:
            raise InvalidArgument("size must be non-negative")
        try:
            self.engine.truncate(path, size)
        except FileNotFoundInEngine:
            raise FileNotFound(path) from None

    def _sync(self, path: str) -> None:
        """``fsync``/``close`` durability: reach the device, not a buffer.

        On a mounted (formatted) engine this publishes the metadata
        image and commits the journal epoch with its write barrier; on
        a plain in-memory engine it degrades to flushing the coalescing
        buffer.
        """
        self.engine.fsync(path)

    def write_file(self, path: str, data: bytes) -> None:
        """Whole-file writes commit immediately as one batched store."""
        super().write_file(path, data)
        self.engine.sync(path)

    def rename(self, old: str, new: str) -> None:
        """Metadata-only rename (no data copy, unlike the baseline)."""
        try:
            self.engine.rename(old, new)
        except FileNotFoundInEngine:
            raise FileNotFound(old) from None
        except FileExistsInEngine:
            raise FileExists(new) from None

    # -- accounting ---------------------------------------------------------------
    def metrics(self):
        """Engine snapshot: refreshes space/memory gauges before reading."""
        return self.engine.metrics()

    def physical_bytes(self) -> int:
        return self.engine.physical_bytes()

    def compression_ratio(self) -> float:
        return self.engine.compression_ratio()

"""A simplified Raft node over the persistent log and a SimClock.

The shape follows the Raft paper (Ongaro & Ousterhout, §5) with the
simplifications a deterministic single-process simulation affords:

* **RPCs are synchronous** — a call into :class:`RaftTransport`
  delivers to the peer's handler and returns its reply, charging the
  simulated network for both directions.  There is no message loss,
  only node crashes (an unreachable peer raises :class:`NodeCrashed`).
* **Time is the SimClock.**  Election timeouts are randomized per node
  from a seeded :class:`random.Random`, so a "storm" of elections is
  exactly reproducible from its seed.
* **Safety is unchanged**: term/vote persist (through
  :class:`~repro.raft.log.RaftLog`) *before* any RPC reply, the vote
  rule compares log up-to-dateness, AppendEntries enforces the log
  matching property with conflict truncation, and the commit index
  only advances over entries of the current term (§5.4.2) — which is
  why a fresh leader appends a no-op barrier entry.
* **Leader leases** keep reads local: a leader that heard from a
  majority at time *t* owns the lease until ``t + lease_duration``
  (strictly below the minimum election timeout, so no rival can have
  been elected while the lease holds).

Crash injection for the failover test matrix: install a named crash
point (``before_append`` / ``after_append`` / ``before_commit`` /
``after_commit``) and the next :meth:`RaftNode.propose` dies exactly
there, raising :class:`NodeCrashed` to the proposer mid-operation.

Locking contract: every entry point that can *apply* committed
commands (propose, tick, the RPC handlers reached from them) must run
with the master-group lock held — the replicated state machine mutates
:class:`~repro.distributed.master.Master` state whose mutators declare
``require_held()``.  :class:`repro.distributed.replicated.MasterGroup`
is the enforcement point; nothing here takes locks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional

from repro.fs.errors import TryAgain
from repro.obs import Observability
from repro.raft.log import LogEntry, RaftLog
from repro.raft.statemachine import MetadataStateMachine, encode_command
from repro.storage.simclock import DATACENTER_LAN, NetworkProfile, SimClock

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"

#: Wire-size model of an AppendEntries entry header (term, index,
#: length) on top of its command bytes.
_ENTRY_OVERHEAD = 24


class NotLeaderError(TryAgain):
    """This replica cannot serve the request — redirect to the leader.

    Subclasses :class:`TryAgain` so the serving layer's frozen wire
    code table maps it to EAGAIN (code 11) with ``retry_after_ms``;
    ``leader_hint`` names the replica to redirect to, when known.
    """

    def __init__(
        self,
        message: str = "",
        leader_hint: Optional[str] = None,
        retry_after_ms: float = 0.0,
    ) -> None:
        super().__init__(message, retry_after_ms=retry_after_ms)
        self.leader_hint = leader_hint


class NodeCrashed(Exception):
    """The node is down (simulated crash), possibly mid-operation."""


@dataclass(frozen=True)
class RaftConfig:
    """Timing of the consensus round, in SimClock seconds."""

    election_timeout_min: float = 0.15
    election_timeout_max: float = 0.30
    heartbeat_interval: float = 0.05
    #: Leader lease per majority round trip; must stay strictly below
    #: ``election_timeout_min`` or a deposed leader could serve a
    #: linearizable read after a rival took over.
    lease_duration: float = 0.10
    #: Request/response envelope charged to the network per message.
    envelope_bytes: int = 64

    def __post_init__(self) -> None:
        if not 0 < self.lease_duration < self.election_timeout_min:
            raise ValueError(
                "lease_duration must be positive and below election_timeout_min"
            )
        if self.election_timeout_min > self.election_timeout_max:
            raise ValueError("election timeout range is inverted")


class RaftTransport:
    """Synchronous in-process RPC fabric between the group's nodes.

    Every message charges the shared SimClock for its modeled bytes,
    and the byte/message totals feed ``bench_failover``.  It also keeps
    the election ledger — ``(term, leader)`` pairs — that the storm
    test audits for the at-most-one-leader-per-term invariant.
    """

    def __init__(
        self,
        clock: SimClock,
        network: NetworkProfile = DATACENTER_LAN,
        envelope_bytes: int = RaftConfig.envelope_bytes,
    ) -> None:
        self.clock = clock
        self.network = network
        self.envelope_bytes = envelope_bytes
        self.nodes: dict[str, "RaftNode"] = {}
        self.bytes_sent = 0
        self.messages = 0
        #: Every leadership assumption ever, in order: (term, name).
        self.leader_ledger: list[tuple[int, str]] = []

    def register(self, node: "RaftNode") -> None:
        self.nodes[node.name] = node

    def note_leader(self, term: int, name: str) -> None:
        self.leader_ledger.append((term, name))

    def leaders_by_term(self) -> dict[int, set[str]]:
        by_term: dict[int, set[str]] = {}
        for term, name in self.leader_ledger:
            by_term.setdefault(term, set()).add(name)
        return by_term

    def _charge(self, nbytes: int) -> None:
        self.messages += 1
        self.bytes_sent += nbytes
        self.clock.charge_transfer(self.network, nbytes)

    def _deliver(self, dst: str) -> "RaftNode":
        node = self.nodes.get(dst)
        if node is None or node.crashed:
            raise NodeCrashed(dst)
        return node

    def request_vote(self, src: str, dst: str, args: dict) -> dict:
        self._charge(self.envelope_bytes)
        node = self._deliver(dst)
        reply = node.handle_request_vote(**args)
        self._charge(self.envelope_bytes)
        return reply

    def append_entries(self, src: str, dst: str, args: dict) -> dict:
        payload = sum(
            len(entry.command) + _ENTRY_OVERHEAD for entry in args["entries"]
        )
        self._charge(self.envelope_bytes + payload)
        node = self._deliver(dst)
        reply = node.handle_append_entries(**args)
        self._charge(self.envelope_bytes)
        return reply


class RaftNode:
    """One replica: persistent log + state machine + consensus role."""

    def __init__(
        self,
        name: str,
        peer_names: list[str],
        log: RaftLog,
        statemachine: MetadataStateMachine,
        clock: SimClock,
        transport: RaftTransport,
        config: RaftConfig = RaftConfig(),
        seed: int = 0,
        obs: Optional[Observability] = None,
    ) -> None:
        self.name = name
        self.peers = [peer for peer in peer_names if peer != name]
        self.log = log
        self.sm = statemachine
        self.clock = clock
        self.transport = transport
        self.config = config
        #: Seeded per node: the randomized election timeouts (and thus
        #: the whole election schedule) replay exactly from the seed.
        self.rng = random.Random(f"{seed}:{name}")
        self.role = FOLLOWER
        self.commit_index = 0
        self.leader_hint: Optional[str] = None
        self.crashed = False
        self.crash_points: set[str] = set()
        self.lease_until = 0.0
        self.next_index: dict[str, int] = {}
        self.match_index: dict[str, int] = {}
        self._results: dict[int, Any] = {}
        self._election_deadline = clock.now + self._random_timeout()
        self._next_heartbeat = 0.0
        obs = obs if obs is not None else Observability(clock=clock)
        self.obs = obs
        prefix = f"raft.{name}"
        self._g_term = obs.registry.gauge(f"{prefix}.term")
        self._g_commit_lag = obs.registry.gauge(f"{prefix}.commit_lag")
        self._c_elections = obs.registry.counter(f"{prefix}.elections")
        self._c_heartbeats = obs.registry.counter(f"{prefix}.heartbeats")
        transport.register(self)

    # -- crash simulation ---------------------------------------------------
    def install_crash_point(self, point: str) -> None:
        """Arm a one-shot crash at a named point of the propose path."""
        self.crash_points.add(point)

    def _maybe_crash(self, point: str) -> None:
        if point in self.crash_points:
            self.crash_points.discard(point)
            self.crashed = True
            raise NodeCrashed(f"{self.name} crashed at {point}")

    def crash(self) -> None:
        self.crashed = True

    def _ensure_alive(self) -> None:
        if self.crashed:
            raise NodeCrashed(self.name)

    # -- timing -------------------------------------------------------------
    def _random_timeout(self) -> float:
        return self.rng.uniform(
            self.config.election_timeout_min, self.config.election_timeout_max
        )

    def _reset_election_deadline(self) -> None:
        self._election_deadline = self.clock.now + self._random_timeout()

    def _majority(self) -> int:
        return (len(self.peers) + 1) // 2 + 1

    def has_lease(self) -> bool:
        """May this node serve a linearizable read locally, right now?"""
        return (
            not self.crashed
            and self.role == LEADER
            and self.clock.now < self.lease_until
        )

    # -- the periodic driver ------------------------------------------------
    def tick(self) -> None:
        """Advance the protocol at the current SimClock instant.

        Leaders heartbeat (renewing the lease and followers' commit
        index); followers and candidates start an election once their
        randomized deadline passes.  Must run under the group lock —
        committed entries may be applied from here.
        """
        if self.crashed:
            return
        now = self.clock.now
        if self.role == LEADER:
            if now >= self._next_heartbeat:
                self._next_heartbeat = now + self.config.heartbeat_interval
                self._c_heartbeats.inc()
                self._replicate_round()
                self._advance_commit_and_apply()
            self._update_gauges()
            return
        if now >= self._election_deadline:
            self._start_election()
        self._update_gauges()

    def _update_gauges(self) -> None:
        self._g_term.set(self.log.current_term)
        self._g_commit_lag.set(self.log.last_index - self.commit_index)

    # -- elections ----------------------------------------------------------
    def _start_election(self) -> None:
        self.role = CANDIDATE
        term = self.log.current_term + 1
        # Persist term+self-vote BEFORE soliciting: a crash after any
        # peer saw this term can never lead to a second vote in it.
        self.log.set_hard_state(term, self.name)
        self._c_elections.inc()
        self._reset_election_deadline()
        votes = 1
        for peer in self.peers:
            try:
                reply = self.transport.request_vote(
                    self.name,
                    peer,
                    dict(
                        term=term,
                        candidate=self.name,
                        last_log_index=self.log.last_index,
                        last_log_term=self.log.last_term,
                    ),
                )
            except NodeCrashed:
                continue
            if reply["term"] > self.log.current_term:
                self._step_down(reply["term"])
                return
            if reply["granted"]:
                votes += 1
        if (
            votes >= self._majority()
            and self.role == CANDIDATE
            and self.log.current_term == term
        ):
            self._become_leader()

    def _become_leader(self) -> None:
        self.role = LEADER
        self.leader_hint = self.name
        self.next_index = {peer: self.log.last_index + 1 for peer in self.peers}
        self.match_index = {peer: 0 for peer in self.peers}
        self._next_heartbeat = self.clock.now
        self.transport.note_leader(self.log.current_term, self.name)
        # §5.4.2 barrier: the leader may only count replicas for entries
        # of its own term, so an empty no-op pulls the whole inherited
        # prefix over the commit line on the first round.
        self.log.append(self.log.current_term, [encode_command("noop")])
        self._replicate_round()
        self._advance_commit_and_apply()

    def _step_down(self, term: int) -> None:
        if term > self.log.current_term:
            self.log.set_hard_state(term, None)
        self.role = FOLLOWER
        self.lease_until = 0.0
        self._reset_election_deadline()

    # -- RPC handlers (invoked via the transport) ----------------------------
    def handle_request_vote(
        self, term: int, candidate: str, last_log_index: int, last_log_term: int
    ) -> dict:
        self._ensure_alive()
        if term > self.log.current_term:
            self._step_down(term)
        granted = False
        if term == self.log.current_term:
            up_to_date = (last_log_term, last_log_index) >= (
                self.log.last_term,
                self.log.last_index,
            )
            if self.log.voted_for in (None, candidate) and up_to_date:
                granted = True
                if self.log.voted_for != candidate:
                    self.log.set_hard_state(term, candidate)
                self._reset_election_deadline()
        return {"term": self.log.current_term, "granted": granted}

    def handle_append_entries(
        self,
        term: int,
        leader: str,
        prev_index: int,
        prev_term: int,
        entries: list[LogEntry],
        leader_commit: int,
    ) -> dict:
        self._ensure_alive()
        if term < self.log.current_term:
            return {
                "term": self.log.current_term,
                "success": False,
                "next_hint": None,
            }
        if term > self.log.current_term or self.role != FOLLOWER:
            self._step_down(term)
        self.leader_hint = leader
        self._reset_election_deadline()
        if prev_index > self.log.last_index:
            return {
                "term": term,
                "success": False,
                "next_hint": self.log.last_index + 1,
            }
        if prev_index > 0 and self.log.term_at(prev_index) != prev_term:
            # Log matching conflict: our entry at prev_index belongs to
            # a divergent (uncommitted) suffix — drop it and ask the
            # leader to back up.
            self.log.truncate_from(prev_index)
            self.commit_index = min(self.commit_index, self.log.last_index)
            return {"term": term, "success": False, "next_hint": prev_index}
        fresh: list[LogEntry] = []
        for entry in entries:
            if entry.index <= self.log.last_index:
                if self.log.term_at(entry.index) != entry.term:
                    self.log.truncate_from(entry.index)
                    fresh.append(entry)
            else:
                fresh.append(entry)
        if fresh:
            self.log.append_entries(fresh)
        if leader_commit > self.commit_index:
            self.commit_index = min(leader_commit, self.log.last_index)
            self._apply_committed()
        self._update_gauges()
        return {"term": term, "success": True, "next_hint": self.log.last_index + 1}

    # -- leader replication ---------------------------------------------------
    def _replicate_round(self) -> None:
        """One AppendEntries round to every peer; renews the lease on a
        majority of successful (or at least reachable, same-term) acks."""
        start = self.clock.now
        acks = 1
        for peer in self.peers:
            if self._replicate_to(peer):
                acks += 1
            if self.role != LEADER:
                return  # a higher term surfaced mid-round
        if acks >= self._majority():
            self.lease_until = max(
                self.lease_until, start + self.config.lease_duration
            )

    def _replicate_to(self, peer: str) -> bool:
        next_index = self.next_index.get(peer, self.log.last_index + 1)
        for __ in range(self.log.last_index + 2):  # bounded backtracking
            prev_index = next_index - 1
            prev_term = self.log.term_at(prev_index) if prev_index else 0
            try:
                reply = self.transport.append_entries(
                    self.name,
                    peer,
                    dict(
                        term=self.log.current_term,
                        leader=self.name,
                        prev_index=prev_index,
                        prev_term=prev_term,
                        entries=self.log.entries_from(next_index),
                        leader_commit=self.commit_index,
                    ),
                )
            except NodeCrashed:
                return False
            if reply["term"] > self.log.current_term:
                self._step_down(reply["term"])
                return False
            if reply["success"]:
                self.match_index[peer] = self.log.last_index
                self.next_index[peer] = self.log.last_index + 1
                return True
            hint = reply["next_hint"]
            next_index = hint if hint else max(1, next_index - 1)
            self.next_index[peer] = next_index
        return False

    def _advance_commit_and_apply(self) -> None:
        for index in range(self.commit_index + 1, self.log.last_index + 1):
            if self.log.term_at(index) != self.log.current_term:
                continue  # §5.4.2: only current-term entries count directly
            votes = 1 + sum(
                1
                for peer in self.peers
                if self.match_index.get(peer, 0) >= index
            )
            if votes >= self._majority():
                self.commit_index = index
        self._apply_committed()
        self._update_gauges()

    def _apply_committed(self) -> None:
        while self.sm.applied_index < self.commit_index:
            entry = self.log.entry(self.sm.applied_index + 1)
            result = self.sm.apply(entry.index, entry.command)
            if self.role == LEADER:
                self._results[entry.index] = result

    # -- the client-facing write path ----------------------------------------
    def propose(self, command: bytes) -> Any:
        """Append a command, replicate it, commit it, apply it.

        Raises :class:`NotLeaderError` (with a redirect hint) on a
        non-leader, :class:`NodeCrashed` if an installed crash point
        fires mid-operation, and :class:`TryAgain` if the entry could
        not reach a majority (minority partition).
        """
        self._ensure_alive()
        if self.role != LEADER:
            raise NotLeaderError(
                f"{self.name} is a {self.role}",
                leader_hint=self.leader_hint,
                retry_after_ms=self.config.election_timeout_max * 1e3,
            )
        self._maybe_crash("before_append")
        (entry,) = self.log.append(self.log.current_term, [command])
        self._maybe_crash("after_append")
        self._replicate_round()
        self._maybe_crash("before_commit")
        self._advance_commit_and_apply()
        self._maybe_crash("after_commit")
        if self.commit_index < entry.index:
            raise TryAgain(
                f"entry {entry.index} did not reach a majority",
                retry_after_ms=self.config.heartbeat_interval * 1e3,
            )
        return self._results.pop(entry.index, None)

"""Deterministic metadata state machine replicated by the Raft log.

Every mutation of cluster metadata — namespace entries, chunk maps,
placements, server membership, leases — is a **command**: an opcode
plus arguments, canonically encoded (sorted keys, fixed separators) so
the same command produces identical bytes on every node.  Commands are
appended to the Raft log and applied, in log order, to a plain
:class:`~repro.distributed.master.Master` on each replica.  Raft's
guarantee (identical committed logs) plus determinism here (identical
apply results) is what makes the replicas interchangeable after a
leader crash.

Determinism rules for this module (enforced by reprolint DET001):

* no wall-clock reads — any time-dependent argument (lease deadlines)
  is computed by the *proposer* and carried inside the command;
* no module-level ``random`` — nondeterministic choices (placement)
  are likewise resolved at propose time, never during apply;
* no dict-iteration-order dependence — anything iterated is sorted.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Optional

from repro.distributed.master import ChunkInfo, FileEntry, Master


class CommandError(Exception):
    """A malformed or unknown replicated command."""


def encode_command(op: str, **args: Any) -> bytes:
    """Canonical command bytes: identical on every proposer."""
    return json.dumps(
        {"op": op, "args": args}, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def decode_command(raw: bytes) -> tuple[str, dict]:
    try:
        record = json.loads(raw.decode("utf-8"))
        return record["op"], record["args"]
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise CommandError(f"undecodable command: {raw[:64]!r}") from exc


class MetadataStateMachine:
    """Applies decoded commands to one replica's :class:`Master` state.

    ``apply`` must be called with committed entries only, in log
    order, exactly once per index — the Raft node guarantees all
    three.  Results are the live metadata objects of *this* replica
    (the leader's results flow back to the proposing client).
    """

    def __init__(self, master: Master) -> None:
        self.master = master
        #: Highest log index applied — the replica's apply cursor.
        self.applied_index = 0

    def apply(self, index: int, command: bytes) -> Any:
        if index != self.applied_index + 1:
            raise CommandError(
                f"apply out of order: index {index} after {self.applied_index}"
            )
        op, args = decode_command(command)
        handler = getattr(self, f"_apply_{op}", None)
        if handler is None:
            raise CommandError(f"unknown command op {op!r}")
        result = handler(**args)
        self.applied_index = index
        return result

    # -- handlers (alphabetical; each mirrors one Master mutator) ----------
    def _apply_alloc(
        self, path: str, servers: Optional[list[str]] = None
    ) -> ChunkInfo:
        """``servers=None`` runs the Master's deterministic placement
        rule — identical load state on every replica (it is itself
        command-built) means identical placement, no coordination."""
        return self.master.allocate_chunk(path, servers=servers)

    def _apply_create(self, path: str) -> FileEntry:
        return self.master.create(path)

    def _apply_drop(self, path: str, chunk_id: str) -> ChunkInfo:
        return self.master.drop_chunk(path, chunk_id)

    def _apply_extend(self, path: str, chunk_id: str, delta: int) -> int:
        return self.master.extend_chunk(path, chunk_id, delta)

    def _apply_lease(self, path: str, holder: str, until: float) -> dict:
        """Record a client lease; ``until`` is proposer-computed
        (SimClock seconds), never read from a clock here."""
        return self.master.grant_lease(path, holder, until)

    def _apply_noop(self) -> None:
        """Leader barrier entry: commits the preceding term's tail."""
        return None

    def _apply_place(self, path: str, chunk_id: str, servers: list[str]) -> ChunkInfo:
        return self.master.place_chunk(path, chunk_id, servers)

    def _apply_register_server(self, name: str, domain: str) -> int:
        return self.master.register_server(name, domain)

    def _apply_remove_server(self, name: str) -> int:
        return self.master.remove_server(name)

    def _apply_set_length(self, path: str, chunk_id: str, length: int) -> int:
        return self.master.set_chunk_length(path, chunk_id, length)

    def _apply_splice(
        self, path: str, index: int, servers: list[str]
    ) -> ChunkInfo:
        return self.master.insert_chunk_after_replicas(path, index, servers)

    def _apply_unlink(self, path: str) -> FileEntry:
        return self.master.unlink(path)


def snapshot_state(master: Master) -> dict:
    """Deterministic serialisation of a replica's metadata (divergence
    checks in tests; a future install-snapshot RPC would ship this)."""
    files = {}
    for path in master.list_files():
        entry = master.lookup(path)
        files[path] = [
            {"id": c.chunk_id, "servers": list(c.servers), "length": c.length}
            for c in entry.chunks
        ]
    return {
        "files": files,
        "servers": master.server_domains(),
        "placement_epoch": master.placement_epoch,
        "leases": master.leases(),
    }


def state_digest(master: Master) -> str:
    """Stable digest for replica-convergence assertions."""
    payload = json.dumps(
        snapshot_state(master), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


__all__ = [
    "CommandError",
    "MetadataStateMachine",
    "decode_command",
    "encode_command",
    "snapshot_state",
    "state_digest",
]

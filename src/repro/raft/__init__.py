"""Raft consensus for the replicated metadata plane.

Layer map (DESIGN.md §15): :mod:`repro.raft.log` persists terms, votes
and entries on the journal's batch format; :mod:`repro.raft.node` runs
elections, replication and commit; :mod:`repro.raft.statemachine`
turns committed commands into :class:`~repro.distributed.master.Master`
mutations.  :mod:`repro.distributed.replicated` assembles nodes into a
master group behind a ``Master``-compatible facade.
"""

from repro.raft.log import LogEntry, RaftLog, RaftLogError
from repro.raft.node import (
    CANDIDATE,
    FOLLOWER,
    LEADER,
    NodeCrashed,
    NotLeaderError,
    RaftConfig,
    RaftNode,
    RaftTransport,
)
from repro.raft.statemachine import (
    CommandError,
    MetadataStateMachine,
    decode_command,
    encode_command,
    snapshot_state,
    state_digest,
)

__all__ = [
    "CANDIDATE",
    "CommandError",
    "FOLLOWER",
    "LEADER",
    "LogEntry",
    "MetadataStateMachine",
    "NodeCrashed",
    "NotLeaderError",
    "RaftConfig",
    "RaftLog",
    "RaftLogError",
    "RaftNode",
    "RaftTransport",
    "decode_command",
    "encode_command",
    "snapshot_state",
    "state_digest",
]

"""The persistent Raft log, on the journal's LSN/CRC batch substrate.

Raft needs two durable structures per node (§5.1 of the Raft paper):

* the **hard state** — ``(current_term, voted_for)`` — persisted
  *before* answering any RPC, so a restarted node can never vote twice
  in one term;
* the **log** — ``(term, command)`` entries — whose committed prefix
  must survive any crash.

Both live on one block device.  Block 0 holds the hard state as a
single CRC-tagged record; blocks 1.. hold the log as a sequence of
batches in exactly the write-ahead journal's wire format
(:mod:`repro.storage.journal`): descriptor blocks carrying
``(magic, lsn, n_tags)`` plus per-entry CRC tags, one data block per
entry, and a checksummed commit record.  The LSN of a batch is the
Raft index of its first entry, so the journal's torn-tail rule
transfers verbatim: a crash mid-append leaves a batch without a valid
commit record, recovery stops at the previous batch boundary, and the
un-acked suffix vanishes — which Raft explicitly tolerates (an entry
is only *committed* once replicated on a majority).

Log truncation (the AppendEntries conflict rule) rewrites from the
first affected batch and stamps a zeroed terminator block so recovery
cannot run into stale batches from a longer, discarded suffix.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.storage.block_device import BlockDevice
from repro.storage.journal import (
    BATCH_CRC,
    BATCH_DESC,
    BATCH_TAG,
    COMMIT_MAGIC,
    DESC_MAGIC,
)

#: Hard-state record: magic, current_term, length of the voted_for name.
_HARD = struct.Struct("<QQI")
HARD_MAGIC = 0x4554415444524148  # "HARDTATE"

#: Per-entry payload header inside a data block: term, command length.
_ENTRY = struct.Struct("<QI")


class RaftLogError(Exception):
    """Structural misuse of the log (oversized command, bad index)."""


@dataclass(frozen=True)
class LogEntry:
    """One replicated command: the term it was proposed in, its 1-based
    index, and the opaque state-machine command bytes."""

    term: int
    index: int
    command: bytes


@dataclass
class _Batch:
    """Where one persisted append landed on the device."""

    start_block: int
    first_index: int
    count: int
    blocks: int


class RaftLog:
    """Append-only persistent log plus the node's hard state.

    The in-memory entry list is the read path; every mutation
    (append, truncate, term/vote update) is made durable through the
    device before the caller proceeds — the Raft safety argument
    depends on persistence *preceding* the RPC reply.
    """

    def __init__(self, device: BlockDevice) -> None:
        self.device = device
        self.block_size = device.block_size
        self._tags_per_desc = (self.block_size - BATCH_DESC.size) // BATCH_TAG.size
        if self._tags_per_desc < 1:
            raise RaftLogError(
                f"block size {self.block_size} too small for a log descriptor"
            )
        self.current_term = 0
        self.voted_for: str | None = None
        self._entries: list[LogEntry] = []
        self._batches: list[_Batch] = []
        self._next_block = 1  # block 0 is the hard state
        self._recover()

    # -- hard state ---------------------------------------------------------
    def _ensure_blocks(self, last_block: int) -> None:
        """Grow the device so ``last_block`` is addressable (the device
        rejects writes past its allocation high-water mark)."""
        while self.device.total_blocks <= last_block:
            self.device.allocate()

    def set_hard_state(self, term: int, voted_for: str | None) -> None:
        """Persist ``(current_term, voted_for)`` before replying to RPCs."""
        self.current_term = term
        self.voted_for = voted_for
        name = (voted_for or "").encode("utf-8")
        body = _HARD.pack(HARD_MAGIC, term, len(name)) + name
        record = body + BATCH_CRC.pack(zlib.crc32(body))
        if len(record) > self.block_size:
            raise RaftLogError("voted_for name does not fit the hard-state block")
        self._ensure_blocks(0)
        self.device.write_blocks([(0, record)])

    def _load_hard_state(self) -> None:
        raw = self._read_block(0)
        if raw is None:
            return
        try:
            magic, term, name_len = _HARD.unpack_from(raw, 0)
        except struct.error:
            return
        if magic != HARD_MAGIC or _HARD.size + name_len + BATCH_CRC.size > len(raw):
            return
        body = raw[: _HARD.size + name_len]
        (crc,) = BATCH_CRC.unpack_from(raw, _HARD.size + name_len)
        if crc != zlib.crc32(body):
            return  # torn hard-state write: fall back to term 0, no vote
        self.current_term = term
        name = raw[_HARD.size : _HARD.size + name_len].decode("utf-8")
        self.voted_for = name or None

    # -- log geometry -------------------------------------------------------
    @property
    def last_index(self) -> int:
        return len(self._entries)

    @property
    def last_term(self) -> int:
        return self._entries[-1].term if self._entries else 0

    def term_at(self, index: int) -> int:
        """Term of the entry at 1-based ``index`` (0 → the sentinel term)."""
        if index == 0:
            return 0
        if not 1 <= index <= len(self._entries):
            raise RaftLogError(f"no entry at index {index}")
        return self._entries[index - 1].term

    def entry(self, index: int) -> LogEntry:
        if not 1 <= index <= len(self._entries):
            raise RaftLogError(f"no entry at index {index}")
        return self._entries[index - 1]

    def entries_from(self, index: int) -> list[LogEntry]:
        """Entries with index ≥ ``index`` (for AppendEntries payloads)."""
        return list(self._entries[max(index, 1) - 1 :])

    # -- append / truncate --------------------------------------------------
    def append(self, term: int, commands: list[bytes]) -> list[LogEntry]:
        """Append fresh leader-proposed commands; one durable batch."""
        entries = [
            LogEntry(term=term, index=self.last_index + 1 + i, command=cmd)
            for i, cmd in enumerate(commands)
        ]
        self._persist_batch(entries)
        self._entries.extend(entries)
        return entries

    def append_entries(self, entries: list[LogEntry]) -> None:
        """Append replicated entries verbatim (follower path)."""
        if not entries:
            return
        if entries[0].index != self.last_index + 1:
            raise RaftLogError(
                f"append at index {entries[0].index} but log ends at "
                f"{self.last_index}"
            )
        self._persist_batch(entries)
        self._entries.extend(entries)

    def truncate_from(self, index: int) -> None:
        """Discard every entry with index ≥ ``index`` (conflict rule)."""
        if index > self.last_index:
            return
        if index < 1:
            raise RaftLogError("cannot truncate the sentinel")
        survivors_of_partial: list[LogEntry] = []
        kept: list[_Batch] = []
        rewrite_from = self._next_block
        for batch in self._batches:
            batch_end = batch.first_index + batch.count
            if batch_end <= index:
                kept.append(batch)
                continue
            rewrite_from = min(rewrite_from, batch.start_block)
            if batch.first_index < index:
                survivors_of_partial.extend(
                    self._entries[batch.first_index - 1 : index - 1]
                )
        self._entries = self._entries[: index - 1]
        self._batches = kept
        self._next_block = rewrite_from
        if survivors_of_partial:
            self._persist_batch(survivors_of_partial)
        else:
            self._stamp_terminator()

    def _persist_batch(self, entries: list[LogEntry]) -> None:
        if not entries:
            return
        blocks: list[tuple[int, bytes]] = []
        position = self._next_block
        payloads = []
        for entry in entries:
            payload = _ENTRY.pack(entry.term, len(entry.command)) + entry.command
            if len(payload) > self.block_size:
                raise RaftLogError(
                    f"command of {len(entry.command)} bytes does not fit a "
                    f"{self.block_size}-byte log block"
                )
            payloads.append(payload + b"\x00" * (self.block_size - len(payload)))
        lsn = entries[0].index
        remaining = list(zip(entries, payloads))
        while remaining:
            group = remaining[: self._tags_per_desc]
            remaining = remaining[self._tags_per_desc :]
            header = BATCH_DESC.pack(DESC_MAGIC, lsn, len(group)) + b"".join(
                BATCH_TAG.pack(entry.index, zlib.crc32(data))
                for entry, data in group
            )
            blocks.append((position, header))
            position += 1
            for __, data in group:
                blocks.append((position, data))
                position += 1
        commit = BATCH_DESC.pack(COMMIT_MAGIC, lsn, len(entries))
        blocks.append((position, commit + BATCH_CRC.pack(zlib.crc32(commit))))
        position += 1
        # Terminator: recovery must not run into a stale next batch.
        blocks.append((position, b"\x00" * self.block_size))
        self._ensure_blocks(position)
        self.device.write_blocks(blocks)
        self._batches.append(
            _Batch(
                start_block=self._next_block,
                first_index=lsn,
                count=len(entries),
                blocks=position - self._next_block,
            )
        )
        self._next_block = position

    def _stamp_terminator(self) -> None:
        self._ensure_blocks(self._next_block)
        self.device.write_blocks([(self._next_block, b"\x00" * self.block_size)])

    # -- recovery -----------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild entries and batch map by walking batches from block 1.

        Stops at the first structurally invalid batch — a torn append.
        Every batch before it was acked durable, so its entries are the
        authoritative log prefix.
        """
        self._load_hard_state()
        position = 1
        while True:
            parsed = self._recover_batch(position)
            if parsed is None:
                break
            entries, consumed = parsed
            if entries[0].index != self.last_index + 1:
                break  # stale batch from a truncated longer log
            self._batches.append(
                _Batch(
                    start_block=position,
                    first_index=entries[0].index,
                    count=len(entries),
                    blocks=consumed,
                )
            )
            self._entries.extend(entries)
            position += consumed

        self._next_block = position

    def _recover_batch(self, start: int) -> tuple[list[LogEntry], int] | None:
        position = start
        entries: list[LogEntry] = []
        lsn: int | None = None
        while True:
            raw = self._read_block(position)
            if raw is None:
                return None
            try:
                magic, record_lsn, count = BATCH_DESC.unpack_from(raw, 0)
            except struct.error:
                return None
            if magic == COMMIT_MAGIC:
                (crc,) = BATCH_CRC.unpack_from(raw, BATCH_DESC.size)
                header = BATCH_DESC.pack(COMMIT_MAGIC, record_lsn, count)
                if (
                    lsn is None
                    or record_lsn != lsn
                    or count != len(entries)
                    or crc != zlib.crc32(header)
                ):
                    return None
                return entries, position - start + 1
            if magic != DESC_MAGIC:
                return None
            if lsn is None:
                lsn = record_lsn
            elif record_lsn != lsn:
                return None
            if not 1 <= count <= self._tags_per_desc:
                return None
            offset = BATCH_DESC.size
            for tag_index in range(count):
                index, crc = BATCH_TAG.unpack_from(raw, offset)
                offset += BATCH_TAG.size
                data = self._read_block(position + 1 + tag_index)
                if data is None or zlib.crc32(data) != crc:
                    return None
                try:
                    term, cmd_len = _ENTRY.unpack_from(data, 0)
                except struct.error:
                    return None
                if _ENTRY.size + cmd_len > len(data):
                    return None
                entries.append(
                    LogEntry(
                        term=term,
                        index=index,
                        command=bytes(data[_ENTRY.size : _ENTRY.size + cmd_len]),
                    )
                )
            position += 1 + count

    def _read_block(self, block_no: int) -> bytes | None:
        try:
            return self.device.read_block(block_no)
        except Exception:
            return None

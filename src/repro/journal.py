"""Top-level alias for the write-ahead journal subsystem.

The implementation lives in :mod:`repro.storage.journal` (it is part of
the storage substrate: the engine, file systems, and cluster all build
on it).  This module re-exports the public names so the subsystem can
be imported as ``repro.journal``, matching the design documents.
"""

from repro.storage.journal import (
    COMMIT_MAGIC,
    DESC_MAGIC,
    Journal,
    JournalDevice,
    JournalError,
    Transaction,
    TransactionError,
    require_transaction,
    transactional,
)

__all__ = [
    "COMMIT_MAGIC",
    "DESC_MAGIC",
    "Journal",
    "JournalDevice",
    "JournalError",
    "Transaction",
    "TransactionError",
    "require_transaction",
    "transactional",
]

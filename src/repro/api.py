"""The unified client API: one interface, in-process or over the wire.

:func:`connect` is the single entry point::

    import repro.api

    # In-process: a private engine (or one you already built).
    client = repro.api.connect()
    client.fs.write_file("/notes.txt", b"hello")
    client.sql("CREATE TABLE t (id INT, v INT)")

    # Over the wire: a serving-layer tenant.
    server = repro.serving.Server()
    server.add_tenant("alice")
    client = repro.api.connect(server, tenant="alice")
    client.fs.write_file("/notes.txt", b"hello")   # same interface

Both deployments expose the same surface — ``client.fs`` (a
:class:`~repro.fs.vfs.FileSystem`), ``client.session()`` (a
snapshot-isolated MVCC transaction scope), ``client.sql`` /
``client.column`` / ``client.kv`` (the three database front ends), and
``client.search`` / ``client.count`` (compressed-domain pushdown) —
and raise the same exception types, because the wire protocol maps
every failure onto the stable code table in :mod:`repro.fs.errors`.

The legacy entry points (:class:`repro.core.api.DirectAPI` and the
socket pair) keep working but are deprecated in favour of this module.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from repro.core.engine import CompressDB
from repro.databases.minicolumn import MiniColumn
from repro.databases.minileveldb import MiniLevelDB
from repro.databases.minisql import MiniSQL
from repro.fs.compressfs import CompressFS
from repro.fs.errors import FileNotFound, InvalidArgument
from repro.fs.sessionfs import SessionFS
from repro.fs.vfs import FileSystem
from repro.serving.client import LoopbackTransport, RemoteFS, WireClient
from repro.serving.server import Server

__all__ = ["connect", "Client", "SessionScope", "KVHandle"]

#: Database directories shared by both deployments, so data written
#: in-process is served unchanged when a Server is pointed at the
#: same image (under the tenant root).
SQL_DIR = "/sql"
KV_DIR = "/kv"
COLUMN_DIR = "/col"


class KVHandle:
    """``client.kv``: the key-value front end."""

    def __init__(self, backend: "_Backend", session: Optional[int] = None) -> None:
        self._backend = backend
        self._session = session

    def put(self, key: bytes, value: bytes) -> None:
        self._backend.kv_put(key, value, self._session)

    def get(self, key: bytes) -> Optional[bytes]:
        return self._backend.kv_get(key, self._session)

    def delete(self, key: bytes) -> None:
        self._backend.kv_delete(key, self._session)

    def scan(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> Iterator[tuple[bytes, bytes]]:
        return self._backend.kv_scan(start, end, self._session)


class SessionScope:
    """One open transaction: the client surface bound to a snapshot.

    Yielded by :meth:`Client.session`; a clean ``with`` exit commits
    (:class:`repro.mvcc.session.WriteConflict` propagates if another
    transaction won first-committer-wins), an exception aborts.
    """

    def __init__(self, backend: "_Backend", handle: object) -> None:
        self._backend = backend
        self._handle = handle
        self.fs = backend.session_fs(handle)
        self.kv = KVHandle(backend, backend.session_id(handle))

    def sql(self, sql: str) -> list[dict]:
        return self._backend.sql(sql, self._backend.session_id(self._handle))

    def column(self, sql: str) -> list[dict]:
        return self._backend.column(sql, self._backend.session_id(self._handle))

    def commit(self) -> dict:
        return self._backend.session_commit(self._handle)

    def abort(self) -> None:
        self._backend.session_abort(self._handle)

    def __enter__(self) -> "SessionScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._backend.session_abort_quietly(self._handle)
        else:
            self.commit()


class Client:
    """The unified client; see the module docstring."""

    def __init__(self, backend: "_Backend") -> None:
        self._backend = backend
        self.fs: FileSystem = backend.fs
        self.kv = KVHandle(backend)

    def sql(self, sql: str) -> list[dict]:
        """Run one MiniSQL statement; SELECTs return rows."""
        return self._backend.sql(sql, None)

    def column(self, sql: str) -> list[dict]:
        """Run one MiniColumn statement (vectorized aggregates)."""
        return self._backend.column(sql, None)

    def search(self, path: str, pattern: bytes) -> list[int]:
        """Compressed-domain substring search; match offsets."""
        return self._backend.search(path, pattern)

    def count(self, path: str, pattern: bytes) -> int:
        """Compressed-domain occurrence count."""
        return self._backend.count(path, pattern)

    def session(self) -> SessionScope:
        """Open one snapshot-isolated MVCC transaction."""
        return SessionScope(self._backend, self._backend.session_begin())

    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Backend:
    """Interface both deployments implement (see subclasses)."""

    fs: FileSystem

    def sql(self, sql: str, session: Optional[int]) -> list[dict]:
        raise NotImplementedError

    def column(self, sql: str, session: Optional[int]) -> list[dict]:
        raise NotImplementedError

    def kv_put(self, key: bytes, value: bytes, session: Optional[int]) -> None:
        raise NotImplementedError

    def kv_get(self, key: bytes, session: Optional[int]) -> Optional[bytes]:
        raise NotImplementedError

    def kv_delete(self, key: bytes, session: Optional[int]) -> None:
        raise NotImplementedError

    def kv_scan(self, start, end, session) -> Iterator[tuple[bytes, bytes]]:
        raise NotImplementedError

    def search(self, path: str, pattern: bytes) -> list[int]:
        raise NotImplementedError

    def count(self, path: str, pattern: bytes) -> int:
        raise NotImplementedError

    def session_begin(self) -> object:
        raise NotImplementedError

    def session_id(self, handle: object) -> int:
        raise NotImplementedError

    def session_fs(self, handle: object) -> FileSystem:
        raise NotImplementedError

    def session_commit(self, handle: object) -> dict:
        raise NotImplementedError

    def session_abort(self, handle: object) -> None:
        raise NotImplementedError

    def session_abort_quietly(self, handle: object) -> None:
        try:
            self.session_abort(handle)
        except Exception:
            # Unwinding from an exception inside the scope: the abort
            # is best-effort (the session may already be finished).
            pass

    def close(self) -> None:
        raise NotImplementedError


class _DirectBackend(_Backend):
    """In-process deployment: engines linked into the caller."""

    def __init__(self, fs: CompressFS) -> None:
        self.fs = fs
        self.engine = fs.engine
        self._dbs: dict[str, object] = {}
        self._session_dbs: dict[int, dict[str, object]] = {}
        self._session_fs: dict[int, FileSystem] = {}

    def _db(self, kind: str, session: Optional[int]) -> object:
        cache = self._dbs if session is None else self._session_dbs[session]
        found = cache.get(kind)
        if found is None:
            fs = self.fs if session is None else self._session_fs[session]
            if kind == "sql":
                found = MiniSQL(fs, directory=SQL_DIR)
            elif kind == "kv":
                found = MiniLevelDB(fs, directory=KV_DIR)
            else:
                found = MiniColumn(fs, directory=COLUMN_DIR)
            cache[kind] = found
        return found

    def sql(self, sql: str, session: Optional[int]) -> list[dict]:
        return self._db("sql", session).execute(sql)

    def column(self, sql: str, session: Optional[int]) -> list[dict]:
        return self._db("column", session).execute(sql)

    def kv_put(self, key: bytes, value: bytes, session: Optional[int]) -> None:
        self._db("kv", session).put(key, value)

    def kv_get(self, key: bytes, session: Optional[int]) -> Optional[bytes]:
        return self._db("kv", session).get(key)

    def kv_delete(self, key: bytes, session: Optional[int]) -> None:
        self._db("kv", session).delete(key)

    def kv_scan(self, start, end, session) -> Iterator[tuple[bytes, bytes]]:
        return self._db("kv", session).scan(start, end)

    def search(self, path: str, pattern: bytes) -> list[int]:
        if not self.fs.exists(path):
            raise FileNotFound(path)
        return self.engine.ops.search(path, pattern)

    def count(self, path: str, pattern: bytes) -> int:
        if not self.fs.exists(path):
            raise FileNotFound(path)
        return self.engine.ops.count(path, pattern)

    def session_begin(self) -> object:
        session = self.engine.mvcc.begin()
        self._session_fs[session.session_id] = SessionFS(self.fs, session)
        self._session_dbs[session.session_id] = {}
        return session

    def session_id(self, handle: object) -> int:
        return handle.session_id

    def session_fs(self, handle: object) -> FileSystem:
        return self._session_fs[handle.session_id]

    def _forget(self, handle: object) -> None:
        self._session_fs.pop(handle.session_id, None)
        self._session_dbs.pop(handle.session_id, None)

    def session_commit(self, handle: object) -> dict:
        self._forget(handle)
        ticket = handle.commit()
        return {
            "csn": ticket.csn,
            "durable": ticket.durable,
            "read_only": ticket.read_only,
        }

    def session_abort(self, handle: object) -> None:
        self._forget(handle)
        if handle.active:
            self.engine.mvcc.abort(handle, "client abort")

    def close(self) -> None:
        self._dbs.clear()


class _WireBackend(_Backend):
    """Serving-layer deployment: one tenant's wire connection."""

    def __init__(self, wire: WireClient) -> None:
        self.wire = wire
        self.fs = RemoteFS(wire)

    def sql(self, sql: str, session: Optional[int]) -> list[dict]:
        return self.wire.sql(sql, session=session)

    def column(self, sql: str, session: Optional[int]) -> list[dict]:
        return self.wire.column(sql, session=session)

    def kv_put(self, key: bytes, value: bytes, session: Optional[int]) -> None:
        self.wire.kv_put(key, value, session=session)

    def kv_get(self, key: bytes, session: Optional[int]) -> Optional[bytes]:
        return self.wire.kv_get(key, session=session)

    def kv_delete(self, key: bytes, session: Optional[int]) -> None:
        self.wire.kv_delete(key, session=session)

    def kv_scan(self, start, end, session) -> Iterator[tuple[bytes, bytes]]:
        return self.wire.kv_scan(start, end, session=session)

    def search(self, path: str, pattern: bytes) -> list[int]:
        return self.wire.search(path, pattern)

    def count(self, path: str, pattern: bytes) -> int:
        return self.wire.count(path, pattern)

    def session_begin(self) -> object:
        return self.wire.session_begin()

    def session_id(self, handle: object) -> int:
        return handle

    def session_fs(self, handle: object) -> FileSystem:
        return RemoteFS(self.wire, session_id=handle)

    def session_commit(self, handle: object) -> dict:
        return self.wire.session_commit(handle)

    def session_abort(self, handle: object) -> None:
        self.wire.session_abort(handle)

    def close(self) -> None:
        self.wire.goodbye()


def connect(
    target: Union[Server, CompressFS, CompressDB, None] = None,
    *,
    tenant: Optional[str] = None,
    **engine_kwargs,
) -> Client:
    """Open a :class:`Client` against ``target``.

    * ``None`` — a fresh in-process engine (``engine_kwargs`` forwarded
      to :class:`~repro.core.engine.CompressDB`);
    * a :class:`~repro.core.engine.CompressDB` or
      :class:`~repro.fs.compressfs.CompressFS` — in-process over it;
    * a :class:`~repro.serving.server.Server` — over the wire, as
      ``tenant`` (which must be provisioned).
    """
    if isinstance(target, Server):
        if tenant is None:
            raise InvalidArgument("connecting to a Server requires tenant=...")
        wire = WireClient(LoopbackTransport(target, tenant))
        wire.hello()  # fail fast on unknown tenants
        return Client(_WireBackend(wire))
    if tenant is not None:
        raise InvalidArgument("tenant= only applies to Server targets")
    if isinstance(target, CompressFS):
        fs = target
    elif isinstance(target, CompressDB):
        fs = CompressFS(engine=target)
    elif target is None:
        fs = CompressFS(engine=CompressDB(**engine_kwargs))
    else:
        raise InvalidArgument(
            f"cannot connect to {type(target).__name__}: expected a Server, "
            "CompressFS, CompressDB, or None"
        )
    return Client(_DirectBackend(fs))
